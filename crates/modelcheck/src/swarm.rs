//! Swarm verification: many diversified searches in parallel.
//!
//! SPIN's swarm technique (Holzmann et al.) runs N independent verifications
//! with different seeds and strategies, optionally sharing nothing — the
//! paper plans to use it to explore larger state spaces in parallel (§7).
//! [`run_swarm`] runs one explorer per worker thread over systems produced
//! by a factory, with a shared stop flag so the first violation cancels the
//! fleet.
//!
//! Two visited-set modes exist. Classic swarm gives each worker a private
//! set: maximum diversification, but workers re-expand each other's states.
//! With [`SwarmConfig::shared_visited`] the fleet shares one
//! [`ShardedVisited`]: a state expanded by any worker is matched (pruned) by
//! every other, trading some diversity for no duplicated expansion work.
//!
//! A panicking worker does not abort the fleet: the panic is caught, the
//! worker's slot reports [`StopReason::WorkerPanic`], and the survivors run
//! to completion.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};

use crate::explore::{ExploreConfig, ExploreReport, ExploreStats, RandomWalk, StopReason};
use crate::system::ModelSystem;
use crate::visited::ShardedVisited;

/// Swarm configuration.
#[derive(Debug, Clone)]
pub struct SwarmConfig {
    /// Number of worker searches.
    pub workers: usize,
    /// Base exploration config; each worker gets `seed = base.seed + index`
    /// (classic swarm diversification).
    pub base: ExploreConfig,
    /// Share one sharded visited set across the fleet so workers skip
    /// states another worker already expanded, instead of duplicating work
    /// with private per-worker sets.
    pub shared_visited: bool,
}

/// Aggregated swarm outcome.
#[derive(Debug)]
pub struct SwarmReport<Op> {
    /// Per-worker reports, indexed by worker. A worker that panicked
    /// reports [`StopReason::WorkerPanic`] with zeroed stats.
    pub workers: Vec<ExploreReport<Op>>,
}

impl<Op> SwarmReport<Op> {
    /// Total operations executed across the swarm.
    pub fn total_ops(&self) -> u64 {
        self.workers.iter().map(|w| w.stats.ops_executed).sum()
    }

    /// Total distinct states across workers. With private visited sets
    /// workers may overlap (swarm trades duplicate work for parallelism and
    /// diversity); with a shared set this is the global distinct count.
    pub fn total_states(&self) -> u64 {
        self.workers.iter().map(|w| w.stats.states_new).sum()
    }

    /// Total visited-set matches across workers — with a shared set this
    /// includes states first expanded by *another* worker.
    pub fn total_matched(&self) -> u64 {
        self.workers.iter().map(|w| w.stats.states_matched).sum()
    }

    /// All violations found by any worker.
    pub fn violations(&self) -> impl Iterator<Item = &crate::system::Violation<Op>> {
        self.workers.iter().flat_map(|w| w.violations.iter())
    }

    /// Whether any worker found a violation.
    pub fn found_violation(&self) -> bool {
        self.workers.iter().any(|w| w.stop == StopReason::Violation)
    }

    /// The violation with the shortest reproduction trace across all
    /// workers, judging each by its minimized trace when the worker that
    /// found it minimized ([`crate::Violation::best_trace`]). Each worker
    /// minimizes its own finds; the swarm reports the overall shortest.
    pub fn shortest_violation(&self) -> Option<&crate::system::Violation<Op>> {
        self.violations().min_by_key(|v| v.best_trace().len())
    }

    /// Panic messages of workers that died, with their worker index.
    pub fn panics(&self) -> impl Iterator<Item = (usize, &str)> {
        self.workers
            .iter()
            .enumerate()
            .filter_map(|(i, w)| match &w.stop {
                StopReason::WorkerPanic(msg) => Some((i, msg.as_str())),
                _ => None,
            })
    }
}

/// Renders a panic payload for [`StopReason::WorkerPanic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Runs `cfg.workers` randomized searches in parallel over systems produced
/// by `factory` (one system per worker, seeded by worker index).
///
/// The first worker to find a violation raises the shared stop flag; other
/// workers notice it through their op budgets being re-checked each step —
/// here, by a wrapper system that reports no further operations. A worker
/// panic is contained to its slot (see [`SwarmReport::panics`]); the rest
/// of the fleet keeps searching.
pub fn run_swarm<S, F>(cfg: &SwarmConfig, factory: F) -> SwarmReport<S::Op>
where
    S: ModelSystem,
    S::Op: Send + 'static,
    F: Fn(usize) -> S + Sync,
{
    let stop = AtomicBool::new(false);
    // One shard per worker (rounded up to a power of two, min 8) keeps
    // same-shard collisions between workers rare.
    let shared = cfg
        .shared_visited
        .then(|| ShardedVisited::new(cfg.base.visited_capacity, cfg.workers.max(8)));
    let mut reports: Vec<Option<ExploreReport<S::Op>>> = (0..cfg.workers).map(|_| None).collect();

    std::thread::scope(|scope| {
        for (idx, slot) in reports.iter_mut().enumerate() {
            let stop = &stop;
            let factory = &factory;
            let shared = shared.clone();
            let base = cfg.base.clone();
            scope.spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let mut worker_cfg = base;
                    worker_cfg.seed = worker_cfg.seed.wrapping_add(idx as u64);
                    let mut sys = Stoppable {
                        inner: factory(idx),
                        stop,
                    };
                    let walk = RandomWalk::new(worker_cfg);
                    match shared {
                        Some(mut visited) => walk.run_resumable(&mut sys, &mut visited, |_| {}),
                        None => walk.run(&mut sys),
                    }
                }));
                *slot = Some(match result {
                    Ok(report) => {
                        if report.stop == StopReason::Violation {
                            stop.store(true, Ordering::SeqCst);
                        }
                        report
                    }
                    // Contain the panic: survivors keep searching, the dead
                    // worker's slot records why it stopped.
                    Err(payload) => ExploreReport {
                        stats: ExploreStats::default(),
                        violations: Vec::new(),
                        stop: StopReason::WorkerPanic(panic_message(payload)),
                    },
                });
            });
        }
    });

    SwarmReport {
        workers: reports
            .into_iter()
            .map(|r| r.expect("worker slot filled"))
            .collect(),
    }
}

/// Wrapper that reports no enabled operations once the shared stop flag is
/// raised, draining the remaining workers quickly.
struct Stoppable<'a, S> {
    inner: S,
    stop: &'a AtomicBool,
}

impl<S: ModelSystem> ModelSystem for Stoppable<'_, S> {
    type Op = S::Op;

    fn ops(&mut self) -> Vec<Self::Op> {
        if self.stop.load(Ordering::Relaxed) {
            // No ops and an empty restart set terminates the walk via its
            // op budget; force it sooner by returning nothing forever.
            return Vec::new();
        }
        self.inner.ops()
    }

    fn apply(&mut self, op: &Self::Op) -> crate::system::ApplyOutcome {
        self.inner.apply(op)
    }

    fn abstract_state(&mut self) -> u128 {
        self.inner.abstract_state()
    }

    fn checkpoint(&mut self, id: crate::system::StateId) -> Result<usize, String> {
        self.inner.checkpoint(id)
    }

    fn restore(&mut self, id: crate::system::StateId) -> Result<(), String> {
        self.inner.restore(id)
    }

    fn release(&mut self, id: crate::system::StateId) {
        self.inner.release(id)
    }

    fn pin(&mut self, id: crate::system::StateId) {
        self.inner.pin(id)
    }

    fn unpin(&mut self, id: crate::system::StateId) {
        self.inner.unpin(id)
    }

    fn checkpoint_store_stats(&self) -> Option<crate::system::CheckpointStoreStats> {
        self.inner.checkpoint_store_stats()
    }

    fn crash_stats(&self) -> Option<crate::system::CrashStats> {
        self.inner.crash_stats()
    }

    fn independent(&self, a: &Self::Op, b: &Self::Op) -> bool {
        self.inner.independent(a, b)
    }

    fn minimize(
        &mut self,
        trace: &[Self::Op],
        message: &str,
    ) -> Option<(Vec<Self::Op>, crate::ShrinkStats)> {
        self.inner.minimize(trace, message)
    }
}
