//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! small API surface the workspace's benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `finish`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. It measures mean wall-clock time per iteration
//! over a fixed number of samples and prints one line per benchmark; there
//! is no statistical analysis, HTML report, or baseline comparison.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding `value` (best-effort).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Mirrors `Criterion::configure_from_args`; CLI filters are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one("", name, 10, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints the mean per-iteration wall clock.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&self.name, name, self.sample_size, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    // Warm-up pass, untimed.
    f(&mut b);
    b.elapsed = Duration::ZERO;
    b.iters = 0;
    for _ in 0..samples {
        f(&mut b);
    }
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if b.iters == 0 {
        println!("bench {label:<40} (no iterations)");
    } else {
        let per_iter = b.elapsed.as_nanos() / b.iters as u128;
        println!(
            "bench {label:<40} {per_iter:>12} ns/iter ({} iters)",
            b.iters
        );
    }
}

/// Timing handle passed to the closure given to `bench_function`.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_add(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        group.finish();
    }

    criterion_group!(benches, bench_add);

    #[test]
    fn harness_runs() {
        benches();
    }
}
