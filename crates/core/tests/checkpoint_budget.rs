//! End-to-end checkpoint-budget behaviour: eviction under memory pressure,
//! the `ESTALE`/evicted-restore signal surfacing through the harness, and
//! the explorers' pin discipline keeping their backtrack spines restorable.

use mcfs::{CheckedTarget, CheckpointTarget, Mcfs, McfsConfig, PoolConfig, VfsCheckpointTarget};
use modelcheck::{
    is_evicted_error, DfsExplorer, ExploreConfig, ModelSystem, RandomWalk, StateId, StopReason,
};
use verifs::VeriFs;
use vfs::FileSystem;

fn ext_pair(budget: Option<usize>) -> Mcfs {
    let e2 = fs_ext::ext2_on_ram(256 * 1024).expect("format ext2");
    let e4 = fs_ext::ext4_on_ram(256 * 1024).expect("format ext4");
    let targets: Vec<Box<dyn CheckedTarget>> = vec![
        Box::new(VfsCheckpointTarget::new(e2)),
        Box::new(VfsCheckpointTarget::new(e4)),
    ];
    let cfg = McfsConfig {
        pool: PoolConfig::small(),
        checkpoint_budget_bytes: budget,
        ..McfsConfig::default()
    };
    Mcfs::new(targets, cfg).expect("harness")
}

#[test]
fn restoring_an_evicted_checkpoint_reports_the_marker() {
    // Each VFS-level snapshot of a 256 KiB device is ~288 KiB of logical
    // state, so a 300 KiB budget holds exactly one unpinned snapshot.
    let mut m = ext_pair(Some(300 * 1024));
    m.checkpoint(StateId(1)).expect("checkpoint 1");
    m.checkpoint(StateId(2)).expect("checkpoint 2"); // evicts 1
    let err = m.restore(StateId(1)).expect_err("1 must be gone");
    assert!(
        is_evicted_error(&err),
        "eviction must be distinguishable from plain failure: {err}"
    );
    // The survivor restores fine, and re-checkpointing a key clears its
    // eviction record.
    m.restore(StateId(2)).expect("2 survives");
    m.checkpoint(StateId(1)).expect("re-checkpoint 1");
    m.restore(StateId(2)).expect_err("2 evicted in turn");
    m.restore(StateId(1)).expect("1 is fresh again");
    let stats = m.checkpoint_store_stats().expect("targets keep stores");
    assert!(stats.evictions >= 2, "stats: {stats:?}");
}

#[test]
fn unbudgeted_harness_never_evicts() {
    let mut m = ext_pair(None);
    for key in 0..8 {
        m.checkpoint(StateId(key)).expect("checkpoint");
    }
    for key in 0..8 {
        m.restore(StateId(key)).expect("every snapshot resident");
    }
    let stats = m.checkpoint_store_stats().expect("stats");
    assert_eq!(stats.evictions, 0);
    assert_eq!(stats.snapshots, 16, "8 keys x 2 targets");
}

#[test]
fn dfs_pins_its_spine_and_survives_a_tight_budget() {
    // Budget fits ~2 snapshots per target; DFS needs its whole backtrack
    // spine. Pinning must protect the spine (overshooting the budget) so the
    // search still terminates normally instead of dying on a stale restore.
    let mut m = ext_pair(Some(600 * 1024));
    let report = DfsExplorer::new(ExploreConfig {
        max_depth: 3,
        max_ops: 400,
        ..ExploreConfig::default()
    })
    .run(&mut m);
    assert!(
        matches!(report.stop, StopReason::Exhausted | StopReason::OpBudget),
        "stop: {:?}",
        report.stop
    );
    let stats = report.stats.checkpoint_store.expect("store stats");
    assert_eq!(stats.evictions, 0, "the pinned spine must never be evicted");
}

#[test]
fn random_walk_falls_back_to_its_pinned_root_after_eviction() {
    // VeriFS checkpoints are cheap; use the VFS-level targets so each
    // snapshot is big enough that a small budget forces evictions mid-walk.
    let mut m = ext_pair(Some(600 * 1024));
    let report = RandomWalk::new(ExploreConfig {
        max_depth: 4,
        max_ops: 300,
        backtrack_on_match: true,
        restart_spread: 0.5,
        ..ExploreConfig::default()
    })
    .run(&mut m);
    // The walk must complete (restarting from the pinned root when a stored
    // restart point was evicted), never surface CheckpointEvicted or Fatal.
    assert!(
        matches!(
            report.stop,
            StopReason::Exhausted | StopReason::OpBudget | StopReason::StateBudget
        ),
        "stop: {:?}",
        report.stop
    );
}

#[test]
fn verifs_checkpoint_targets_report_cow_sharing() {
    // Two VeriFS v2 instances under the checkpoint API: snapshots share
    // structure with the live tree, so resident bytes must undercut the
    // logical total once a checkpoint exists.
    let mut v1 = VeriFs::v2();
    v1.mount().unwrap();
    let mut v2 = VeriFs::v2();
    v2.mount().unwrap();
    let targets: Vec<Box<dyn CheckedTarget>> = vec![
        Box::new(CheckpointTarget::new(v1)),
        Box::new(CheckpointTarget::new(v2)),
    ];
    let mut m = Mcfs::new(targets, McfsConfig::default()).expect("harness");
    for i in 0..20 {
        let op = mcfs::FsOp::Mkdir {
            path: format!("/d{i}"),
            mode: 0o755,
        };
        m.apply(&op);
    }
    m.checkpoint(StateId(1)).expect("checkpoint");
    m.checkpoint(StateId(2)).expect("checkpoint");
    let stats = m.checkpoint_store_stats().expect("stats");
    assert!(
        stats.resident_bytes < stats.total_bytes,
        "COW snapshots must share: resident {} vs logical {}",
        stats.resident_bytes,
        stats.total_bytes
    );
    assert!(stats.shared_bytes > 0);
}
