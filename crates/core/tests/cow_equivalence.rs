//! Property test: copy-on-write checkpoints are observably identical to
//! deep-clone checkpoints.
//!
//! Two backends are driven with randomized operation sequences (1000+
//! sequences total across the properties):
//!
//! * **VeriFS v2 through its checkpoint API** — a COW instance runs as-is; a
//!   twin "deep" instance calls [`VeriFs::materialize_cow`] after every
//!   mutation and checkpoint, reconstructing the pre-COW representation
//!   where every snapshot owns its allocations. Every syscall result, every
//!   checkpoint/restore/discard result (including nested and dangling
//!   keys), and the abstract state after every step must agree.
//! * **ext2 on a RAM disk through device snapshots** — the COW
//!   [`blockdev::DeviceSnapshot`] must restore the device to exactly the
//!   bytes a deep `to_vec()` copy recorded, across unmount/restore/remount.
//!
//! The VeriFS property also exercises the FingerprintCache interaction: a
//! [`mcfs::FingerprintCache`] rides along on the COW instance with per-op
//! invalidation, and its incremental hash must match a fresh full hash.

use mcfs::{abstract_state, abstract_state_cached, AbstractionConfig, FingerprintCache};
use proptest::prelude::*;
use vfs::{DeviceBacked, FileMode, FileSystem, FsCheckpoint, OpenFlags};

/// One randomized step against the file system under test.
#[derive(Debug, Clone)]
enum Step {
    Create(u8),
    Write(u8, u8, u8),
    Mkdir(u8),
    Rmdir(u8),
    Unlink(u8),
    Rename(u8, u8),
    Truncate(u8, u8),
    Checkpoint(u8),
    RestoreKeep(u8),
    Restore(u8),
    Discard(u8),
}

fn file_path(i: u8) -> String {
    // Half the files live inside directories so restores cross directory
    // structure, not just top-level entries.
    if i.is_multiple_of(2) {
        format!("/f{}", i % 6)
    } else {
        format!("/d{}/f{}", i % 4, i % 6)
    }
}

fn dir_path(i: u8) -> String {
    format!("/d{}", i % 4)
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (0u8..11, any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(kind, a, b, c)| match kind {
        0 => Step::Create(a),
        1 => Step::Write(a, b, c),
        2 => Step::Mkdir(a),
        3 => Step::Rmdir(a),
        4 => Step::Unlink(a),
        5 => Step::Rename(a, b),
        6 => Step::Truncate(a, b),
        7 => Step::Checkpoint(a),
        8 => Step::RestoreKeep(a),
        9 => Step::Restore(a),
        _ => Step::Discard(a),
    })
}

/// Applies one step, returning a comparable outcome code.
fn apply(fs: &mut verifs::VeriFs, step: &Step) -> Result<usize, vfs::Errno> {
    match step {
        Step::Create(i) => {
            let fd = fs.create(&file_path(*i), FileMode::REG_DEFAULT)?;
            fs.close(fd)?;
            Ok(0)
        }
        Step::Write(i, len, fill) => {
            let fd = fs.open(
                &file_path(*i),
                OpenFlags::write_only(),
                FileMode::REG_DEFAULT,
            )?;
            let n = fs.write(fd, &vec![*fill; 1 + *len as usize % 96])?;
            fs.close(fd)?;
            Ok(n)
        }
        Step::Mkdir(i) => fs.mkdir(&dir_path(*i), FileMode::DIR_DEFAULT).map(|()| 0),
        Step::Rmdir(i) => fs.rmdir(&dir_path(*i)).map(|()| 0),
        Step::Unlink(i) => fs.unlink(&file_path(*i)).map(|()| 0),
        Step::Rename(i, j) => fs.rename(&file_path(*i), &file_path(*j)).map(|()| 0),
        Step::Truncate(i, size) => fs.truncate(&file_path(*i), *size as u64 % 64).map(|()| 0),
        // Checkpoint keys deliberately collide (0..4): sequences nest,
        // overwrite, restore, and discard the same keys in random orders,
        // and restore dangling keys (both sides must agree on the ENOENT).
        Step::Checkpoint(k) => fs.checkpoint(u64::from(*k % 4)).map(|()| 0),
        Step::RestoreKeep(k) => fs.restore_keep(u64::from(*k % 4)).map(|()| 0),
        Step::Restore(k) => fs.restore(u64::from(*k % 4)).map(|()| 0),
        Step::Discard(k) => fs.discard(u64::from(*k % 4)).map(|()| 0),
    }
}

/// The paths a step can touch, for fingerprint invalidation. Restores and
/// discards invalidate everything (the whole tree may change).
fn touched(step: &Step) -> Option<Vec<String>> {
    match step {
        Step::Create(i) | Step::Write(i, _, _) | Step::Unlink(i) | Step::Truncate(i, _) => {
            Some(vec![file_path(*i)])
        }
        Step::Mkdir(i) | Step::Rmdir(i) => Some(vec![dir_path(*i)]),
        Step::Rename(i, j) => Some(vec![file_path(*i), file_path(*j)]),
        Step::Checkpoint(_) => Some(vec![]),
        Step::RestoreKeep(_) | Step::Restore(_) | Step::Discard(_) => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(600))]

    /// VeriFS v2: a COW instance and a forced-deep twin agree on every
    /// outcome and every abstract state, and the incremental fingerprint
    /// cache riding on the COW instance agrees with full rehashes.
    #[test]
    fn verifs_cow_matches_deep_clone(
        steps in prop::collection::vec(step_strategy(), 1..24)
    ) {
        let cfg = AbstractionConfig::default();
        let mut cow = verifs::VeriFs::v2();
        cow.mount().unwrap();
        let mut deep = verifs::VeriFs::v2();
        deep.mount().unwrap();
        let mut cache = FingerprintCache::new();
        let _ = abstract_state_cached(&mut cow, &cfg, &mut cache).unwrap();

        for step in &steps {
            match touched(step) {
                Some(paths) => {
                    let refs: Vec<&str> = paths.iter().map(String::as_str).collect();
                    cache.invalidate_op(&mut cow, &refs);
                }
                None => cache = FingerprintCache::new(),
            }
            let got = apply(&mut cow, step);
            let want = apply(&mut deep, step);
            // The deep twin re-severs all sharing after every step, so its
            // snapshots always own their allocations outright.
            deep.materialize_cow();
            prop_assert_eq!(got, want, "outcomes diverged on {:?}", step);

            let h_cow = abstract_state(&mut cow, &cfg).unwrap();
            let h_deep = abstract_state(&mut deep, &cfg).unwrap();
            prop_assert_eq!(h_cow, h_deep, "states diverged on {:?}", step);
            let h_incr = abstract_state_cached(&mut cow, &cfg, &mut cache).unwrap();
            prop_assert_eq!(h_incr, h_cow, "fingerprint cache diverged on {:?}", step);
            prop_assert_eq!(cow.snapshot_count(), deep.snapshot_count());
        }
        // Sharing must never cost correctness — and must actually share:
        // resident bytes can never exceed the logical total.
        prop_assert!(cow.snapshot_resident_bytes() <= cow.snapshot_bytes());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(450))]

    /// ext2 on a RAM disk: COW device snapshots restore the exact bytes a
    /// deep copy recorded, across unmount/restore/remount cycles.
    #[test]
    fn ext2_cow_device_snapshots_match_deep_copies(
        seq in prop::collection::vec((0u8..4, any::<u8>(), any::<u8>()), 1..12),
        restore_at in any::<u8>(),
    ) {
        let mut fs = fs_ext::ext2_on_ram(256 * 1024).unwrap();
        fs.mount().unwrap();
        let mut saved: Vec<(blockdev::DeviceSnapshot, Vec<u8>, u128)> = Vec::new();
        let cfg = AbstractionConfig::default();

        for (kind, a, b) in &seq {
            match kind {
                0 => {
                    if let Ok(fd) = fs.create(&format!("/f{}", a % 8), FileMode::REG_DEFAULT) {
                        let _ = fs.write(fd, &vec![*b; 1 + *a as usize % 512]);
                        fs.close(fd).unwrap();
                    }
                }
                1 => { let _ = fs.mkdir(&format!("/d{}", a % 4), FileMode::DIR_DEFAULT); }
                2 => { let _ = fs.unlink(&format!("/f{}", a % 8)); }
                _ => {
                    // Flush in-memory state first — an unsynced device
                    // snapshot is the paper's §3.2 incoherency, not a COW
                    // artifact.
                    fs.sync().unwrap();
                    let snap = fs.snapshot_device().unwrap();
                    let deep = snap.to_vec();
                    let digest = abstract_state(&mut fs, &cfg).unwrap().as_u128();
                    // The COW snapshot must already equal its deep copy.
                    prop_assert_eq!(snap.size_bytes(), deep.len());
                    saved.push((snap, deep, digest));
                }
            }
        }

        if !saved.is_empty() {
            let (snap, deep, digest) = &saved[restore_at as usize % saved.len()];
            fs.unmount().unwrap();
            fs.restore_device(snap).unwrap();
            // Device bytes match the deep copy exactly (read back before the
            // remount, which dirties mount counters in the superblock)...
            let now = fs.snapshot_device().unwrap();
            prop_assert_eq!(&now.to_vec(), deep);
            fs.mount().unwrap();
            // ...and the observable file-system state matches the one
            // recorded when the snapshot was taken.
            let h = abstract_state(&mut fs, &cfg).unwrap().as_u128();
            prop_assert_eq!(h, *digest);
        }
    }
}
