//! Budgeted checkpoint pool shared by every state-tracking strategy.
//!
//! Explorers store one checkpoint per discovered state, so a long run's
//! checkpoint store grows without bound — the host-memory pressure behind
//! the paper's swap-bound configurations. [`CheckpointPool`] bounds it: each
//! stored snapshot is charged against an optional byte budget, and when the
//! budget is exceeded the least-recently-used *unpinned* snapshot is
//! evicted. Explorers pin the checkpoints they are guaranteed to re-enter
//! (DFS pins its backtrack spine, BFS its frontier); everything else is a
//! cache that may be dropped and reported — restoring an evicted key fails
//! with `ESTALE`, which the harness surfaces as a budget-driven stop rather
//! than a fatal error.
//!
//! Byte accounting distinguishes *logical* size (what the modelled memory
//! model charges — a full state copy, as SPIN would hold) from *shared*
//! bytes (chunks a copy-on-write snapshot still shares with the live state
//! or with other snapshots, costing no host memory).
//!
//! With a spill tier attached ([`CheckpointPool::enable_spill`]), budget
//! pressure *demotes* demotable snapshots to disk instead of dropping them:
//! the snapshot is decomposed into content chunks
//! ([`SnapshotBytes::demote_chunks`]), each chunk is deduplicated by content
//! hash against everything already spilled, and only chunks the disk tier
//! has not seen are written. Because copy-on-write snapshots of nearby
//! states share most chunks, this is delta compression for free: demoting a
//! snapshot that differs from an already-spilled neighbour by one chunk
//! writes one page. [`CheckpointPool::get`] transparently promotes a demoted
//! snapshot back into RAM; only disk failure (or a non-demotable snapshot
//! under pressure) still surfaces as an eviction.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use modelcheck::{fnv128, CheckpointStoreStats, PageLoc, SpillStore};

/// Byte accounting a stored snapshot reports to the pool.
pub trait SnapshotBytes {
    /// Logical size in bytes: what a full copy of the state would occupy.
    fn total_bytes(&self) -> usize;

    /// Bytes structurally shared with the live state or other snapshots
    /// (copy-on-write chunks with more than one owner). Zero for snapshots
    /// without sharing, or whose sharing the pool cannot observe.
    fn shared_bytes(&self) -> usize {
        0
    }

    /// Decomposes the snapshot into rebuild metadata plus ordered content
    /// chunks so the pool can demote it to disk under budget pressure.
    /// `None` (the default) marks the snapshot non-demotable: it is evicted
    /// instead of spilled. Implementations must round-trip through
    /// [`promote_chunks`](SnapshotBytes::promote_chunks).
    fn demote_chunks(&self) -> Option<(Vec<u64>, Vec<Vec<u8>>)> {
        None
    }

    /// Rebuilds a snapshot from [`demote_chunks`](SnapshotBytes::demote_chunks)
    /// output reloaded from disk. `None` on malformed input.
    fn promote_chunks(_meta: &[u64], _chunks: Vec<Vec<u8>>) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }
}

impl SnapshotBytes for blockdev::DeviceSnapshot {
    fn total_bytes(&self) -> usize {
        self.size_bytes()
    }

    fn shared_bytes(&self) -> usize {
        self.shared_bytes()
    }

    fn demote_chunks(&self) -> Option<(Vec<u64>, Vec<Vec<u8>>)> {
        let meta = vec![self.block_size() as u64, self.chunk_size() as u64];
        Some((meta, self.chunks().map(<[u8]>::to_vec).collect()))
    }

    fn promote_chunks(meta: &[u64], chunks: Vec<Vec<u8>>) -> Option<Self> {
        let &[block_size, chunk_size] = meta else {
            return None;
        };
        blockdev::DeviceSnapshot::from_chunks(block_size as usize, chunk_size as usize, chunks)
    }
}

/// A pooled full file-system image (the VM, CRIU, and VFS-checkpoint
/// strategies clone the whole instance).
#[derive(Debug, Clone)]
pub struct FsImage<F> {
    /// The cloned instance.
    pub fs: F,
    /// Logical size charged against the budget.
    pub bytes: usize,
}

impl<F> SnapshotBytes for FsImage<F> {
    fn total_bytes(&self) -> usize {
        self.bytes
    }
}

/// A snapshot whose storage lives elsewhere — e.g. inside VeriFS's own
/// snapshot pool, reachable only by key. The pool tracks its size and
/// applies the eviction policy; the owner drops the real storage when
/// [`CheckpointPool::insert`] reports the key evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExternalSnap {
    /// Logical size charged against the budget.
    pub bytes: usize,
}

impl SnapshotBytes for ExternalSnap {
    fn total_bytes(&self) -> usize {
        self.bytes
    }
}

#[derive(Debug)]
struct Entry<S> {
    snap: S,
    pinned: bool,
    last_use: u64,
}

/// A spilled chunk's on-disk location and its reference count across
/// demoted snapshots (content-hash dedup: many snapshots, one page).
#[derive(Debug)]
struct ChunkRef {
    loc: PageLoc,
    len: u32,
    rc: u32,
}

/// A demoted snapshot: everything needed to rebuild it from the chunk map.
#[derive(Debug)]
struct Demoted {
    meta: Vec<u64>,
    hashes: Vec<u128>,
    total_bytes: usize,
    pinned: bool,
}

/// The disk tier demoted snapshots live in.
#[derive(Debug)]
struct SpillTier {
    store: Arc<SpillStore>,
    /// Content hash → spilled page (shared by every demoted snapshot that
    /// contains the chunk).
    chunks: HashMap<u128, ChunkRef>,
    demoted: HashMap<u64, Demoted>,
    /// Unique bytes currently held on disk (sum of live chunk lengths).
    spilled_bytes: u64,
    demotions: u64,
    promotions: u64,
}

impl SpillTier {
    fn bump(&mut self, h: u128) -> bool {
        if let Some(r) = self.chunks.get_mut(&h) {
            r.rc += 1;
            true
        } else {
            false
        }
    }

    fn release(&mut self, h: u128) {
        if let Some(r) = self.chunks.get_mut(&h) {
            r.rc -= 1;
            if r.rc == 0 {
                self.spilled_bytes -= u64::from(r.len);
                self.chunks.remove(&h);
            }
        }
    }
}

/// LRU-evicting, pin-aware snapshot store with an optional byte budget and
/// an optional disk spill tier (see the module docs).
#[derive(Debug)]
pub struct CheckpointPool<S> {
    entries: HashMap<u64, Entry<S>>,
    budget: Option<usize>,
    /// Logical-byte running total of resident entries.
    total_bytes: usize,
    /// Monotonic use counter backing the LRU order.
    tick: u64,
    /// Keys dropped by the budget (distinguishes `ESTALE` from `ENOENT`).
    evicted: HashSet<u64>,
    evictions: u64,
    inserts: u64,
    spill: Option<SpillTier>,
}

impl<S: SnapshotBytes> Default for CheckpointPool<S> {
    fn default() -> Self {
        CheckpointPool::new(None)
    }
}

impl<S: SnapshotBytes> CheckpointPool<S> {
    /// Creates a pool; `budget: None` never evicts.
    pub fn new(budget: Option<usize>) -> Self {
        CheckpointPool {
            entries: HashMap::new(),
            budget,
            total_bytes: 0,
            tick: 0,
            evicted: HashSet::new(),
            evictions: 0,
            inserts: 0,
            spill: None,
        }
    }

    /// Attaches a disk spill tier: from now on, budget pressure demotes
    /// demotable snapshots to `store` instead of evicting them. Typically
    /// the same store the visited set spills to, so one file carries all
    /// out-of-core traffic and one counter set describes it.
    pub fn enable_spill(&mut self, store: Arc<SpillStore>) {
        self.spill = Some(SpillTier {
            store,
            chunks: HashMap::new(),
            demoted: HashMap::new(),
            spilled_bytes: 0,
            demotions: 0,
            promotions: 0,
        });
    }

    /// Whether a spill tier is attached.
    pub fn spill_enabled(&self) -> bool {
        self.spill.is_some()
    }

    /// The current budget.
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Changes the budget. Tightening it does not evict immediately; the
    /// next insert enforces the new bound.
    pub fn set_budget(&mut self, budget: Option<usize>) {
        self.budget = budget;
    }

    /// Number of snapshots the pool can still produce (resident plus
    /// demoted-to-disk).
    pub fn len(&self) -> usize {
        self.entries.len() + self.spill.as_ref().map_or(0, |t| t.demoted.len())
    }

    /// Whether the pool holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical bytes of all resident snapshots.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Stores `snap` under `key` (replacing any previous snapshot there),
    /// then evicts LRU unpinned snapshots until the budget holds again.
    /// Returns the evicted keys so the owner can drop external storage and
    /// fingerprint snapshots for them. The just-inserted key is never
    /// evicted, and neither is any pinned key — the budget is allowed to
    /// overshoot when everything resident is pinned.
    pub fn insert(&mut self, key: u64, snap: S) -> Vec<u64> {
        self.tick += 1;
        self.inserts += 1;
        self.evicted.remove(&key);
        // A replacement supersedes any demoted copy of the key on disk.
        self.drop_demoted(key);
        self.total_bytes += snap.total_bytes();
        // A re-insert under an existing key must keep its pin: a DFS spine
        // checkpoint re-saved under the same id would otherwise silently
        // become evictable.
        let pinned = self.entries.get(&key).is_some_and(|e| e.pinned);
        if let Some(old) = self.entries.insert(
            key,
            Entry {
                snap,
                pinned,
                last_use: self.tick,
            },
        ) {
            self.total_bytes -= old.snap.total_bytes();
        }
        let mut dropped = Vec::new();
        while let Some(budget) = self.budget {
            if self.total_bytes <= budget {
                break;
            }
            let victim = self
                .entries
                .iter()
                .filter(|(k, e)| **k != key && !e.pinned)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if self.try_demote(victim) {
                continue;
            }
            let entry = self.entries.remove(&victim).expect("victim is resident");
            self.total_bytes -= entry.snap.total_bytes();
            self.evicted.insert(victim);
            self.evictions += 1;
            dropped.push(victim);
        }
        dropped
    }

    /// Fetches the snapshot under `key`, marking it most recently used. A
    /// demoted snapshot is transparently promoted back into RAM first (other
    /// snapshots may be demoted — never dropped — to make room). `None` means
    /// the key is absent, was evicted, or its promotion failed on disk error
    /// (the latter is recorded as an eviction so restore surfaces `ESTALE`).
    pub fn get(&mut self, key: u64) -> Option<&S> {
        if !self.entries.contains_key(&key) && self.is_demoted(key) && !self.promote(key) {
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&key).map(|e| {
            e.last_use = tick;
            &e.snap
        })
    }

    /// Whether the pool can still produce `key` (resident or demoted).
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key) || self.is_demoted(key)
    }

    /// Removes and returns the snapshot under `key` (promoting it first if
    /// demoted).
    pub fn remove(&mut self, key: u64) -> Option<S> {
        if !self.entries.contains_key(&key) && self.is_demoted(key) && !self.promote(key) {
            return None;
        }
        let entry = self.entries.remove(&key)?;
        self.total_bytes -= entry.snap.total_bytes();
        Some(entry.snap)
    }

    fn is_demoted(&self, key: u64) -> bool {
        self.spill
            .as_ref()
            .is_some_and(|t| t.demoted.contains_key(&key))
    }

    /// Discards `key`'s demoted record, releasing its disk chunks.
    fn drop_demoted(&mut self, key: u64) {
        let Some(tier) = self.spill.as_mut() else {
            return;
        };
        let Some(rec) = tier.demoted.remove(&key) else {
            return;
        };
        for &h in &rec.hashes {
            tier.release(h);
        }
    }

    /// Demotes resident `key` to the spill tier. Content-hashed chunks the
    /// tier already holds are reference-bumped instead of rewritten, so a
    /// snapshot differing from a spilled neighbour by one COW chunk costs one
    /// page write. Returns `false` — letting the caller hard-evict — when no
    /// tier is attached, the snapshot is not demotable, or a chunk write
    /// fails (the store records the error for reports).
    fn try_demote(&mut self, key: u64) -> bool {
        if self.spill.is_none() {
            return false;
        }
        let Some((meta, cow_chunks)) = self.entries.get(&key).and_then(|e| e.snap.demote_chunks())
        else {
            return false;
        };
        let tier = self.spill.as_mut().expect("checked above");
        let mut hashes = Vec::with_capacity(cow_chunks.len());
        for c in &cow_chunks {
            let h = fnv128(c);
            if !tier.bump(h) {
                match tier.store.write_page(c) {
                    Ok(loc) => {
                        tier.spilled_bytes += c.len() as u64;
                        tier.chunks.insert(
                            h,
                            ChunkRef {
                                loc,
                                len: c.len() as u32,
                                rc: 1,
                            },
                        );
                    }
                    Err(_) => {
                        for &done in &hashes {
                            tier.release(done);
                        }
                        return false;
                    }
                }
            }
            hashes.push(h);
        }
        let entry = self.entries.remove(&key).expect("victim is resident");
        self.total_bytes -= entry.snap.total_bytes();
        let tier = self.spill.as_mut().expect("checked above");
        tier.demoted.insert(
            key,
            Demoted {
                meta,
                hashes,
                total_bytes: entry.snap.total_bytes(),
                pinned: entry.pinned,
            },
        );
        tier.demotions += 1;
        true
    }

    /// Rebuilds demoted `key` in RAM, releasing its disk chunks and
    /// re-enforcing the budget by demoting (never dropping) other residents.
    /// On disk failure the snapshot is lost: the key is recorded as evicted
    /// so the failure surfaces as `ESTALE`, not a silent `ENOENT`.
    fn promote(&mut self, key: u64) -> bool {
        let Some(tier) = self.spill.as_mut() else {
            return false;
        };
        let Some(rec) = tier.demoted.remove(&key) else {
            return false;
        };
        let mut chunks = Vec::with_capacity(rec.hashes.len());
        let mut failed = false;
        for &h in &rec.hashes {
            let loc = tier.chunks.get(&h).expect("demoted chunk is mapped").loc;
            match tier.store.read_page(loc) {
                Ok(b) => chunks.push(b),
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        let snap = if failed {
            None
        } else {
            S::promote_chunks(&rec.meta, chunks)
        };
        let Some(snap) = snap else {
            for &h in &rec.hashes {
                tier.release(h);
            }
            self.evicted.insert(key);
            self.evictions += 1;
            return false;
        };
        for &h in &rec.hashes {
            tier.release(h);
        }
        tier.promotions += 1;
        self.tick += 1;
        self.total_bytes += rec.total_bytes;
        self.entries.insert(
            key,
            Entry {
                snap,
                pinned: rec.pinned,
                last_use: self.tick,
            },
        );
        // Promotion may overshoot the budget; push others to disk to make
        // room, but never hard-evict on a read path — a failed demotion
        // here just leaves the pool over budget until the next insert.
        while let Some(budget) = self.budget {
            if self.total_bytes <= budget {
                break;
            }
            let victim = self
                .entries
                .iter()
                .filter(|(k, e)| **k != key && !e.pinned)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if !self.try_demote(victim) {
                break;
            }
        }
        true
    }

    /// Whether the budget evicted `key` (and no snapshot replaced it since).
    pub fn was_evicted(&self, key: u64) -> bool {
        self.evicted.contains(&key)
    }

    /// Forgets an eviction record — an explicit drop of an evicted key is a
    /// successful no-op, not an error. Returns whether `key` was recorded.
    pub fn forget_evicted(&mut self, key: u64) -> bool {
        self.evicted.remove(&key)
    }

    /// Pins `key` against eviction (no-op for unknown keys). Pinning a
    /// demoted key marks its record so the pin is restored at promotion.
    pub fn pin(&mut self, key: u64) {
        if let Some(e) = self.entries.get_mut(&key) {
            e.pinned = true;
        } else if let Some(d) = self.spill.as_mut().and_then(|t| t.demoted.get_mut(&key)) {
            d.pinned = true;
        }
    }

    /// Releases the pin on `key`.
    pub fn unpin(&mut self, key: u64) {
        if let Some(e) = self.entries.get_mut(&key) {
            e.pinned = false;
        } else if let Some(d) = self.spill.as_mut().and_then(|t| t.demoted.get_mut(&key)) {
            d.pinned = false;
        }
    }

    /// Aggregate statistics for reports. `total_bytes`/`shared_bytes`/
    /// `resident_bytes` describe the RAM-resident entries only; demoted
    /// snapshots contribute to `snapshots`, `pinned`, and `spilled_bytes`.
    pub fn stats(&self) -> CheckpointStoreStats {
        let shared: usize = self.entries.values().map(|e| e.snap.shared_bytes()).sum();
        let (demoted, demoted_pinned, demotions, promotions, spilled_bytes) = match &self.spill {
            Some(t) => (
                t.demoted.len(),
                t.demoted.values().filter(|d| d.pinned).count(),
                t.demotions,
                t.promotions,
                t.spilled_bytes,
            ),
            None => (0, 0, 0, 0, 0),
        };
        CheckpointStoreStats {
            snapshots: self.entries.len() + demoted,
            pinned: self.entries.values().filter(|e| e.pinned).count() + demoted_pinned,
            total_bytes: self.total_bytes,
            shared_bytes: shared,
            resident_bytes: self.total_bytes.saturating_sub(shared),
            evictions: self.evictions,
            inserts: self.inserts,
            demotions,
            promotions,
            spilled_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(bytes: usize) -> ExternalSnap {
        ExternalSnap { bytes }
    }

    #[test]
    fn unbudgeted_pool_never_evicts() {
        let mut pool = CheckpointPool::new(None);
        for k in 0..100 {
            assert!(pool.insert(k, snap(1 << 20)).is_empty());
        }
        assert_eq!(pool.len(), 100);
        assert_eq!(pool.total_bytes(), 100 << 20);
    }

    #[test]
    fn budget_evicts_least_recently_used_first() {
        let mut pool = CheckpointPool::new(Some(300));
        assert!(pool.insert(1, snap(100)).is_empty());
        assert!(pool.insert(2, snap(100)).is_empty());
        assert!(pool.insert(3, snap(100)).is_empty());
        // Touch 1 so 2 becomes the LRU entry.
        assert!(pool.get(1).is_some());
        assert_eq!(pool.insert(4, snap(100)), vec![2]);
        assert!(pool.contains(1));
        assert!(!pool.contains(2));
        assert!(pool.was_evicted(2));
        assert!(!pool.was_evicted(1));
    }

    #[test]
    fn pinned_snapshots_survive_pressure() {
        let mut pool = CheckpointPool::new(Some(250));
        pool.insert(1, snap(100));
        pool.insert(2, snap(100));
        pool.pin(1);
        pool.pin(2);
        // Over budget, but both residents are pinned: overshoot allowed.
        assert!(pool.insert(3, snap(100)).is_empty());
        assert_eq!(pool.len(), 3);
        pool.unpin(1);
        assert_eq!(pool.insert(4, snap(100)), vec![1, 3]);
        assert!(pool.contains(2), "still pinned");
    }

    #[test]
    fn reinsert_clears_the_eviction_record() {
        let mut pool = CheckpointPool::new(Some(100));
        pool.insert(1, snap(80));
        pool.insert(2, snap(80)); // evicts 1
        assert!(pool.was_evicted(1));
        pool.insert(1, snap(10));
        assert!(!pool.was_evicted(1));
        assert!(pool.contains(1));
    }

    #[test]
    fn replacement_under_a_key_updates_accounting() {
        let mut pool = CheckpointPool::new(None);
        pool.insert(7, snap(100));
        pool.insert(7, snap(40));
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.total_bytes(), 40);
        assert_eq!(pool.remove(7).unwrap().bytes, 40);
        assert_eq!(pool.total_bytes(), 0);
    }

    #[test]
    fn reinsert_preserves_the_pin() {
        let mut pool = CheckpointPool::new(Some(250));
        pool.insert(1, snap(100));
        pool.pin(1);
        // Re-save the spine checkpoint under the same key.
        pool.insert(1, snap(100));
        assert_eq!(pool.stats().pinned, 1, "pin must survive replacement");
        pool.insert(2, snap(100));
        // Budget pressure: only the unpinned key 2 may go.
        assert_eq!(pool.insert(3, snap(100)), vec![2]);
        assert!(pool.contains(1), "pinned spine checkpoint evicted");
    }

    use modelcheck::MemBudget;

    /// A demotable snapshot chunked at 4 bytes, for spill-tier tests.
    #[derive(Debug, Clone, PartialEq)]
    struct ChunkySnap {
        data: Vec<u8>,
    }

    impl ChunkySnap {
        fn new(data: &[u8]) -> Self {
            ChunkySnap {
                data: data.to_vec(),
            }
        }
    }

    impl SnapshotBytes for ChunkySnap {
        fn total_bytes(&self) -> usize {
            self.data.len()
        }

        fn demote_chunks(&self) -> Option<(Vec<u64>, Vec<Vec<u8>>)> {
            Some((vec![4], self.data.chunks(4).map(<[u8]>::to_vec).collect()))
        }

        fn promote_chunks(meta: &[u64], chunks: Vec<Vec<u8>>) -> Option<Self> {
            if meta != [4] {
                return None;
            }
            Some(ChunkySnap {
                data: chunks.concat(),
            })
        }
    }

    fn spilling_pool(budget: usize, faults: modelcheck::SpillFaults) -> CheckpointPool<ChunkySnap> {
        let mut mb = MemBudget::new(1024);
        mb.faults = faults;
        let store = modelcheck::SpillStore::new(&mb).expect("spill store");
        let mut pool = CheckpointPool::new(Some(budget));
        pool.enable_spill(store);
        pool
    }

    #[test]
    fn budget_pressure_demotes_instead_of_evicting() {
        let mut pool = spilling_pool(8, Default::default());
        pool.insert(1, ChunkySnap::new(b"aaaabbbb"));
        assert!(pool.insert(2, ChunkySnap::new(b"ccccdddd")).is_empty());
        assert!(pool.contains(1), "demoted key still producible");
        assert!(!pool.was_evicted(1));
        assert_eq!(pool.len(), 2);
        let s = pool.stats();
        assert_eq!(s.demotions, 1);
        assert_eq!(s.spilled_bytes, 8);
        let got = pool.get(1).expect("promote from disk").clone();
        assert_eq!(got.data, b"aaaabbbb");
        assert_eq!(pool.stats().promotions, 1);
        // Promotion re-enforced the budget by demoting key 2, not dropping it.
        assert!(pool.contains(2));
        assert_eq!(pool.stats().demotions, 2);
    }

    #[test]
    fn identical_chunks_are_deduplicated_on_disk() {
        let mut pool = spilling_pool(8, Default::default());
        pool.insert(1, ChunkySnap::new(b"aaaabbbb"));
        pool.insert(2, ChunkySnap::new(b"aaaabbbb"));
        pool.insert(3, ChunkySnap::new(b"aaaaZZZZ"));
        // Keys 1 and 2 are demoted and share both pages; key 3's demotion
        // reuses the "aaaa" page. Spilled bytes count unique content only.
        let s = pool.stats();
        assert_eq!(s.demotions, 2);
        assert_eq!(s.spilled_bytes, 8, "two unique 4-byte chunks on disk");
        assert_eq!(pool.get(2).unwrap().data, b"aaaabbbb");
    }

    #[test]
    fn pin_on_demoted_key_survives_promotion() {
        let mut pool = spilling_pool(8, Default::default());
        pool.insert(1, ChunkySnap::new(b"aaaabbbb"));
        pool.insert(2, ChunkySnap::new(b"ccccdddd")); // demotes 1
        pool.pin(1);
        assert_eq!(pool.stats().pinned, 1);
        assert!(pool.get(1).is_some());
        // Now resident and pinned: budget pressure must not touch it.
        pool.insert(3, ChunkySnap::new(b"eeeeffff"));
        assert!(pool.contains(1));
        assert!(!pool.was_evicted(1));
    }

    #[test]
    fn promote_read_failure_is_recorded_as_eviction() {
        let faults = modelcheck::SpillFaults {
            fail_read_at: Some(0),
            ..Default::default()
        };
        let mut pool = spilling_pool(8, faults);
        pool.insert(1, ChunkySnap::new(b"aaaabbbb"));
        pool.insert(2, ChunkySnap::new(b"ccccdddd")); // demotes 1
        assert!(pool.get(1).is_none(), "injected EIO loses the snapshot");
        assert!(pool.was_evicted(1), "loss surfaces as ESTALE, not ENOENT");
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn demote_write_failure_falls_back_to_hard_eviction() {
        let faults = modelcheck::SpillFaults {
            fail_write_at: Some(0),
            ..Default::default()
        };
        let mut pool = spilling_pool(8, faults);
        pool.insert(1, ChunkySnap::new(b"aaaabbbb"));
        assert_eq!(pool.insert(2, ChunkySnap::new(b"ccccdddd")), vec![1]);
        assert!(pool.was_evicted(1));
        assert_eq!(pool.stats().demotions, 0);
    }

    #[test]
    fn non_demotable_snapshots_still_hard_evict() {
        let mb = MemBudget::new(1024);
        let store = modelcheck::SpillStore::new(&mb).expect("spill store");
        let mut pool = CheckpointPool::new(Some(150));
        pool.enable_spill(store);
        pool.insert(1, snap(100));
        assert_eq!(pool.insert(2, snap(100)), vec![1]);
        assert!(pool.was_evicted(1));
    }

    #[test]
    fn replacement_supersedes_the_demoted_copy() {
        let mut pool = spilling_pool(8, Default::default());
        pool.insert(1, ChunkySnap::new(b"aaaabbbb"));
        pool.insert(2, ChunkySnap::new(b"ccccdddd")); // demotes 1
        pool.insert(1, ChunkySnap::new(b"XXXXYYYY")); // replaces, drops disk copy
        assert_eq!(pool.get(1).unwrap().data, b"XXXXYYYY");
        // Key 1's old chunks were released; only key 2's demoted chunks (from
        // the replacement insert's pressure) remain charged.
        let s = pool.stats();
        assert!(s.spilled_bytes <= 8, "stale chunks released");
    }

    #[test]
    fn device_snapshots_round_trip_through_demotion() {
        let mut img = blockdev::CowImage::new(24, 8, 0);
        img.write(3, b"hello");
        let snap =
            blockdev::DeviceSnapshot::from_chunks(8, 8, img.chunks().map(<[u8]>::to_vec).collect())
                .expect("geometry ok");
        let (meta, chunks) = snap.demote_chunks().expect("demotable");
        let back = <blockdev::DeviceSnapshot as SnapshotBytes>::promote_chunks(&meta, chunks)
            .expect("rebuilds");
        assert_eq!(back.to_vec(), snap.to_vec());
        assert_eq!(back.block_size(), 8);
    }

    #[test]
    fn stats_report_counts_and_bytes() {
        let mut pool = CheckpointPool::new(Some(150));
        pool.insert(1, snap(100));
        pool.pin(1);
        pool.insert(2, snap(100)); // evicts nothing pinned-able... 1 is pinned, 2 is new
        let s = pool.stats();
        assert_eq!(s.snapshots, 2);
        assert_eq!(s.pinned, 1);
        assert_eq!(s.total_bytes, 200);
        assert_eq!(s.inserts, 2);
        assert_eq!(s.evictions, 0);
        pool.unpin(1);
        pool.insert(3, snap(50)); // now 1 is evictable; dropping it suffices
        let s = pool.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.snapshots, 2);
    }
}
