//! Budgeted checkpoint pool shared by every state-tracking strategy.
//!
//! Explorers store one checkpoint per discovered state, so a long run's
//! checkpoint store grows without bound — the host-memory pressure behind
//! the paper's swap-bound configurations. [`CheckpointPool`] bounds it: each
//! stored snapshot is charged against an optional byte budget, and when the
//! budget is exceeded the least-recently-used *unpinned* snapshot is
//! evicted. Explorers pin the checkpoints they are guaranteed to re-enter
//! (DFS pins its backtrack spine, BFS its frontier); everything else is a
//! cache that may be dropped and reported — restoring an evicted key fails
//! with `ESTALE`, which the harness surfaces as a budget-driven stop rather
//! than a fatal error.
//!
//! Byte accounting distinguishes *logical* size (what the modelled memory
//! model charges — a full state copy, as SPIN would hold) from *shared*
//! bytes (chunks a copy-on-write snapshot still shares with the live state
//! or with other snapshots, costing no host memory).

use std::collections::{HashMap, HashSet};

use modelcheck::CheckpointStoreStats;

/// Byte accounting a stored snapshot reports to the pool.
pub trait SnapshotBytes {
    /// Logical size in bytes: what a full copy of the state would occupy.
    fn total_bytes(&self) -> usize;

    /// Bytes structurally shared with the live state or other snapshots
    /// (copy-on-write chunks with more than one owner). Zero for snapshots
    /// without sharing, or whose sharing the pool cannot observe.
    fn shared_bytes(&self) -> usize {
        0
    }
}

impl SnapshotBytes for blockdev::DeviceSnapshot {
    fn total_bytes(&self) -> usize {
        self.size_bytes()
    }

    fn shared_bytes(&self) -> usize {
        self.shared_bytes()
    }
}

/// A pooled full file-system image (the VM, CRIU, and VFS-checkpoint
/// strategies clone the whole instance).
#[derive(Debug, Clone)]
pub struct FsImage<F> {
    /// The cloned instance.
    pub fs: F,
    /// Logical size charged against the budget.
    pub bytes: usize,
}

impl<F> SnapshotBytes for FsImage<F> {
    fn total_bytes(&self) -> usize {
        self.bytes
    }
}

/// A snapshot whose storage lives elsewhere — e.g. inside VeriFS's own
/// snapshot pool, reachable only by key. The pool tracks its size and
/// applies the eviction policy; the owner drops the real storage when
/// [`CheckpointPool::insert`] reports the key evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExternalSnap {
    /// Logical size charged against the budget.
    pub bytes: usize,
}

impl SnapshotBytes for ExternalSnap {
    fn total_bytes(&self) -> usize {
        self.bytes
    }
}

#[derive(Debug)]
struct Entry<S> {
    snap: S,
    pinned: bool,
    last_use: u64,
}

/// LRU-evicting, pin-aware snapshot store with an optional byte budget.
#[derive(Debug)]
pub struct CheckpointPool<S> {
    entries: HashMap<u64, Entry<S>>,
    budget: Option<usize>,
    /// Logical-byte running total of resident entries.
    total_bytes: usize,
    /// Monotonic use counter backing the LRU order.
    tick: u64,
    /// Keys dropped by the budget (distinguishes `ESTALE` from `ENOENT`).
    evicted: HashSet<u64>,
    evictions: u64,
    inserts: u64,
}

impl<S: SnapshotBytes> Default for CheckpointPool<S> {
    fn default() -> Self {
        CheckpointPool::new(None)
    }
}

impl<S: SnapshotBytes> CheckpointPool<S> {
    /// Creates a pool; `budget: None` never evicts.
    pub fn new(budget: Option<usize>) -> Self {
        CheckpointPool {
            entries: HashMap::new(),
            budget,
            total_bytes: 0,
            tick: 0,
            evicted: HashSet::new(),
            evictions: 0,
            inserts: 0,
        }
    }

    /// The current budget.
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Changes the budget. Tightening it does not evict immediately; the
    /// next insert enforces the new bound.
    pub fn set_budget(&mut self, budget: Option<usize>) {
        self.budget = budget;
    }

    /// Number of resident snapshots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Logical bytes of all resident snapshots.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Stores `snap` under `key` (replacing any previous snapshot there),
    /// then evicts LRU unpinned snapshots until the budget holds again.
    /// Returns the evicted keys so the owner can drop external storage and
    /// fingerprint snapshots for them. The just-inserted key is never
    /// evicted, and neither is any pinned key — the budget is allowed to
    /// overshoot when everything resident is pinned.
    pub fn insert(&mut self, key: u64, snap: S) -> Vec<u64> {
        self.tick += 1;
        self.inserts += 1;
        self.evicted.remove(&key);
        self.total_bytes += snap.total_bytes();
        // A re-insert under an existing key must keep its pin: a DFS spine
        // checkpoint re-saved under the same id would otherwise silently
        // become evictable.
        let pinned = self.entries.get(&key).is_some_and(|e| e.pinned);
        if let Some(old) = self.entries.insert(
            key,
            Entry {
                snap,
                pinned,
                last_use: self.tick,
            },
        ) {
            self.total_bytes -= old.snap.total_bytes();
        }
        let mut dropped = Vec::new();
        while let Some(budget) = self.budget {
            if self.total_bytes <= budget {
                break;
            }
            let victim = self
                .entries
                .iter()
                .filter(|(k, e)| **k != key && !e.pinned)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            let entry = self.entries.remove(&victim).expect("victim is resident");
            self.total_bytes -= entry.snap.total_bytes();
            self.evicted.insert(victim);
            self.evictions += 1;
            dropped.push(victim);
        }
        dropped
    }

    /// Fetches the snapshot under `key`, marking it most recently used.
    pub fn get(&mut self, key: u64) -> Option<&S> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&key).map(|e| {
            e.last_use = tick;
            &e.snap
        })
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Removes and returns the snapshot under `key`.
    pub fn remove(&mut self, key: u64) -> Option<S> {
        let entry = self.entries.remove(&key)?;
        self.total_bytes -= entry.snap.total_bytes();
        Some(entry.snap)
    }

    /// Whether the budget evicted `key` (and no snapshot replaced it since).
    pub fn was_evicted(&self, key: u64) -> bool {
        self.evicted.contains(&key)
    }

    /// Forgets an eviction record — an explicit drop of an evicted key is a
    /// successful no-op, not an error. Returns whether `key` was recorded.
    pub fn forget_evicted(&mut self, key: u64) -> bool {
        self.evicted.remove(&key)
    }

    /// Pins `key` against eviction (no-op for non-resident keys).
    pub fn pin(&mut self, key: u64) {
        if let Some(e) = self.entries.get_mut(&key) {
            e.pinned = true;
        }
    }

    /// Releases the pin on `key`.
    pub fn unpin(&mut self, key: u64) {
        if let Some(e) = self.entries.get_mut(&key) {
            e.pinned = false;
        }
    }

    /// Aggregate statistics for reports.
    pub fn stats(&self) -> CheckpointStoreStats {
        let shared: usize = self.entries.values().map(|e| e.snap.shared_bytes()).sum();
        CheckpointStoreStats {
            snapshots: self.entries.len(),
            pinned: self.entries.values().filter(|e| e.pinned).count(),
            total_bytes: self.total_bytes,
            shared_bytes: shared,
            resident_bytes: self.total_bytes.saturating_sub(shared),
            evictions: self.evictions,
            inserts: self.inserts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(bytes: usize) -> ExternalSnap {
        ExternalSnap { bytes }
    }

    #[test]
    fn unbudgeted_pool_never_evicts() {
        let mut pool = CheckpointPool::new(None);
        for k in 0..100 {
            assert!(pool.insert(k, snap(1 << 20)).is_empty());
        }
        assert_eq!(pool.len(), 100);
        assert_eq!(pool.total_bytes(), 100 << 20);
    }

    #[test]
    fn budget_evicts_least_recently_used_first() {
        let mut pool = CheckpointPool::new(Some(300));
        assert!(pool.insert(1, snap(100)).is_empty());
        assert!(pool.insert(2, snap(100)).is_empty());
        assert!(pool.insert(3, snap(100)).is_empty());
        // Touch 1 so 2 becomes the LRU entry.
        assert!(pool.get(1).is_some());
        assert_eq!(pool.insert(4, snap(100)), vec![2]);
        assert!(pool.contains(1));
        assert!(!pool.contains(2));
        assert!(pool.was_evicted(2));
        assert!(!pool.was_evicted(1));
    }

    #[test]
    fn pinned_snapshots_survive_pressure() {
        let mut pool = CheckpointPool::new(Some(250));
        pool.insert(1, snap(100));
        pool.insert(2, snap(100));
        pool.pin(1);
        pool.pin(2);
        // Over budget, but both residents are pinned: overshoot allowed.
        assert!(pool.insert(3, snap(100)).is_empty());
        assert_eq!(pool.len(), 3);
        pool.unpin(1);
        assert_eq!(pool.insert(4, snap(100)), vec![1, 3]);
        assert!(pool.contains(2), "still pinned");
    }

    #[test]
    fn reinsert_clears_the_eviction_record() {
        let mut pool = CheckpointPool::new(Some(100));
        pool.insert(1, snap(80));
        pool.insert(2, snap(80)); // evicts 1
        assert!(pool.was_evicted(1));
        pool.insert(1, snap(10));
        assert!(!pool.was_evicted(1));
        assert!(pool.contains(1));
    }

    #[test]
    fn replacement_under_a_key_updates_accounting() {
        let mut pool = CheckpointPool::new(None);
        pool.insert(7, snap(100));
        pool.insert(7, snap(40));
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.total_bytes(), 40);
        assert_eq!(pool.remove(7).unwrap().bytes, 40);
        assert_eq!(pool.total_bytes(), 0);
    }

    #[test]
    fn reinsert_preserves_the_pin() {
        let mut pool = CheckpointPool::new(Some(250));
        pool.insert(1, snap(100));
        pool.pin(1);
        // Re-save the spine checkpoint under the same key.
        pool.insert(1, snap(100));
        assert_eq!(pool.stats().pinned, 1, "pin must survive replacement");
        pool.insert(2, snap(100));
        // Budget pressure: only the unpinned key 2 may go.
        assert_eq!(pool.insert(3, snap(100)), vec![2]);
        assert!(pool.contains(1), "pinned spine checkpoint evicted");
    }

    #[test]
    fn stats_report_counts_and_bytes() {
        let mut pool = CheckpointPool::new(Some(150));
        pool.insert(1, snap(100));
        pool.pin(1);
        pool.insert(2, snap(100)); // evicts nothing pinned-able... 1 is pinned, 2 is new
        let s = pool.stats();
        assert_eq!(s.snapshots, 2);
        assert_eq!(s.pinned, 1);
        assert_eq!(s.total_bytes, 200);
        assert_eq!(s.inserts, 2);
        assert_eq!(s.evictions, 0);
        pool.unpin(1);
        pool.insert(3, snap(50)); // now 1 is evictable; dropping it suffices
        let s = pool.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.snapshots, 2);
    }
}
