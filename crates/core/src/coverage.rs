//! Coverage tracking while model-checking — the paper's §7 future-work item
//! "exploring methods to track code coverage while model-checking".
//!
//! Without instrumenting the file systems, the observable proxy for coverage
//! is which *(operation kind, outcome class)* pairs exploration has
//! exercised: every distinct pair corresponds to a different code path
//! through the syscall layer (success paths and each error path — "where
//! bugs often lurk", §2). The harness records every executed operation here;
//! reports show how much of the matrix a run has touched.

use std::collections::BTreeMap;

use crate::pool::{FsOp, OpOutcome};

/// The outcome class an operation landed in.
fn outcome_class(outcome: &OpOutcome) -> String {
    match outcome {
        OpOutcome::Ok => "OK".to_string(),
        OpOutcome::Data(_) => "OK(data)".to_string(),
        OpOutcome::Attrs { .. } => "OK(attrs)".to_string(),
        OpOutcome::Entries(_) => "OK(entries)".to_string(),
        OpOutcome::Bytes(_) => "OK(bytes)".to_string(),
        OpOutcome::Err(e) => e.name().to_string(),
    }
}

/// Operation/outcome coverage accumulated over a run.
///
/// # Examples
///
/// ```
/// use mcfs::{Coverage, FsOp, OpOutcome};
/// use vfs::Errno;
///
/// let mut cov = Coverage::new();
/// let op = FsOp::Unlink { path: "/x".into() };
/// cov.record(&op, &OpOutcome::Err(Errno::ENOENT));
/// cov.record(&op, &OpOutcome::Ok);
/// assert_eq!(cov.distinct_pairs(), 2);
/// assert_eq!(cov.total_ops(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    counts: BTreeMap<(String, String), u64>,
}

impl Coverage {
    /// Creates an empty coverage map.
    pub fn new() -> Self {
        Coverage::default()
    }

    /// Records one executed operation and its (agreed) outcome.
    pub fn record(&mut self, op: &FsOp, outcome: &OpOutcome) {
        *self
            .counts
            .entry((op.name().to_string(), outcome_class(outcome)))
            .or_insert(0) += 1;
    }

    /// Number of distinct (operation, outcome-class) pairs exercised.
    pub fn distinct_pairs(&self) -> usize {
        self.counts.len()
    }

    /// Total operations recorded.
    pub fn total_ops(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Distinct error paths exercised (pairs whose outcome is an errno).
    pub fn error_paths(&self) -> usize {
        self.counts
            .keys()
            .filter(|(_, c)| !c.starts_with("OK"))
            .count()
    }

    /// Iterates `(op, outcome class, count)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.counts
            .iter()
            .map(|((op, class), n)| (op.as_str(), class.as_str(), *n))
    }

    /// Renders a per-operation coverage table.
    pub fn summary(&self) -> String {
        let mut out = String::from("operation coverage (op / outcome class / count):\n");
        for (op, class, n) in self.iter() {
            out.push_str(&format!("  {op:<14} {class:<14} {n}\n"));
        }
        out.push_str(&format!(
            "  {} distinct pairs, {} of them error paths, {} ops total\n",
            self.distinct_pairs(),
            self.error_paths(),
            self.total_ops()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::Errno;

    #[test]
    fn distinct_pairs_and_error_paths() {
        let mut cov = Coverage::new();
        let unlink = FsOp::Unlink { path: "/a".into() };
        let stat = FsOp::Stat { path: "/a".into() };
        cov.record(&unlink, &OpOutcome::Ok);
        cov.record(&unlink, &OpOutcome::Err(Errno::ENOENT));
        cov.record(&unlink, &OpOutcome::Err(Errno::ENOENT));
        cov.record(&unlink, &OpOutcome::Err(Errno::EISDIR));
        cov.record(
            &stat,
            &OpOutcome::Attrs {
                ftype: '-',
                mode: 0o644,
                nlink: 1,
                owner: (0, 0),
                size: Some(1),
            },
        );
        assert_eq!(cov.distinct_pairs(), 4);
        assert_eq!(cov.error_paths(), 2);
        assert_eq!(cov.total_ops(), 5);
        let s = cov.summary();
        assert!(s.contains("unlink"));
        assert!(s.contains("ENOENT"));
        assert!(s.contains("EISDIR"));
    }

    #[test]
    fn harness_records_coverage() {
        use crate::{CheckpointTarget, Mcfs, McfsConfig};
        use modelcheck::ModelSystem;
        use verifs::VeriFs;
        use vfs::FileSystem;
        let mut a = VeriFs::v2();
        a.mount().unwrap();
        let mut b = VeriFs::v2();
        b.mount().unwrap();
        let mut m = Mcfs::new(
            vec![
                Box::new(CheckpointTarget::new(a)),
                Box::new(CheckpointTarget::new(b)),
            ],
            McfsConfig::default(),
        )
        .unwrap();
        // A success path and an error path.
        m.apply(&FsOp::CreateFile {
            path: "/f0".into(),
            mode: 0o644,
        });
        m.apply(&FsOp::CreateFile {
            path: "/f0".into(),
            mode: 0o644,
        });
        let cov = m.coverage();
        assert!(cov.distinct_pairs() >= 2);
        assert!(cov.error_paths() >= 1);
        assert!(cov.summary().contains("EEXIST"));
    }
}
