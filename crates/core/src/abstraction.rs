//! Abstraction functions — Algorithm 1 of the paper.
//!
//! An abstract state is the MD5 hash of every file's pathname, content, and
//! *important* metadata (mode, size, nlink, uid, gid), collected by a sorted
//! recursive traversal from the mount point. Noisy attributes — atime, block
//! placement, directory sizes — are deliberately excluded: hashing them
//! would make every state unique and explode the state space (§3.3).
//! Special files like ext4's `lost+found` and MCFS's own capacity-
//! equalization dummy are excluded via the exception list (§3.4).

use mdigest::{Digest128, Md5};
use vfs::{FileSystem, FileType, OpenFlags, VfsResult};

/// Configuration of the abstraction function.
#[derive(Debug, Clone)]
pub struct AbstractionConfig {
    /// Names excluded everywhere they appear (e.g. `lost+found`, the
    /// free-space-equalization dummy file).
    pub exceptions: Vec<String>,
    /// Include directory sizes in the hash. **Off** by default (§3.4:
    /// ext reports block multiples, others entry counts). Turning it on is
    /// how the false-positive benchmark demonstrates the problem.
    pub include_dir_sizes: bool,
    /// Include atime in the hash. **Off** by default (§3.3: atime updates
    /// make every state unique). The ablation benchmark turns it on to show
    /// the explosion.
    pub include_atime: bool,
    /// Sort directory entries before hashing. **On** by default; turning it
    /// off reintroduces the entry-order false positive.
    pub sort_entries: bool,
}

impl Default for AbstractionConfig {
    fn default() -> Self {
        AbstractionConfig {
            exceptions: vec!["lost+found".to_string(), crate::EQUALIZE_DUMMY.to_string()],
            include_dir_sizes: false,
            include_atime: false,
            sort_entries: true,
        }
    }
}

/// Computes the abstract state of a mounted file system (Algorithm 1).
///
/// Traverses from the root, sorts paths, reads every regular file's content
/// and each object's important attributes, and hashes it all with MD5.
///
/// # Errors
///
/// Propagates file-system errors — an error during traversal means the file
/// system is corrupted, which the harness reports as a violation.
pub fn abstract_state(
    fs: &mut dyn FileSystem,
    cfg: &AbstractionConfig,
) -> VfsResult<Digest128> {
    // Phase 1: collect all paths by recursive traversal.
    let mut files: Vec<(String, FileType)> = Vec::new();
    let mut pending: Vec<String> = vec!["/".to_string()];
    while let Some(dir) = pending.pop() {
        let mut entries = fs.getdents(&dir)?;
        if cfg.sort_entries {
            entries.sort_by(|a, b| a.name.cmp(&b.name));
        }
        for e in entries {
            if cfg.exceptions.contains(&e.name) {
                continue;
            }
            let path = vfs::path::join(&dir, &e.name);
            if e.ftype == FileType::Directory {
                pending.push(path.clone());
            }
            files.push((path, e.ftype));
        }
    }
    // Phase 2: sort by pathname for a canonical order.
    files.sort();

    // Phase 3: hash content + important attributes + path for each object.
    let mut ctx = Md5::new();
    // The root's own attributes participate too.
    hash_attrs(fs, &mut ctx, "/", FileType::Directory, cfg)?;
    for (path, ftype) in files {
        if ftype == FileType::Regular {
            let fd = fs.open(&path, OpenFlags::read_only(), vfs::FileMode::REG_DEFAULT)?;
            let mut buf = vec![0u8; 4096];
            loop {
                let n = fs.read(fd, &mut buf)?;
                if n == 0 {
                    break;
                }
                ctx.update(&buf[..n]);
            }
            fs.close(fd)?;
        }
        if ftype == FileType::Symlink {
            // A symlink's "content" is its target.
            ctx.update_str(&fs.readlink(&path)?);
        }
        hash_attrs(fs, &mut ctx, &path, ftype, cfg)?;
        ctx.update_str(&path);
    }
    Ok(ctx.finalize())
}

fn hash_attrs(
    fs: &mut dyn FileSystem,
    ctx: &mut Md5,
    path: &str,
    ftype: FileType,
    cfg: &AbstractionConfig,
) -> VfsResult<()> {
    let st = fs.stat(path)?;
    // important_attributes (Algorithm 1, line 12): mode, size, nlink, uid,
    // gid. atime/mtime/ctime and physical placement are noise. Directory
    // link counts are excluded too: they leak excepted special folders
    // (ext4's root has nlink 3 because of lost+found) and differ across
    // implementations counting subdirectories.
    ctx.update_u64(st.mode.bits() as u64);
    if ftype != FileType::Directory {
        ctx.update_u64(st.nlink as u64);
    }
    ctx.update_u64(st.uid as u64);
    ctx.update_u64(st.gid as u64);
    let include_size = match ftype {
        FileType::Directory => cfg.include_dir_sizes,
        _ => true,
    };
    if include_size {
        ctx.update_u64(st.size);
    }
    if cfg.include_atime {
        ctx.update_u64(st.atime);
    }
    // Hash xattrs when the file system supports them.
    if let Ok(mut names) = fs.listxattr(path) {
        names.sort();
        for name in names {
            ctx.update_str(&name);
            if let Ok(value) = fs.getxattr(path, &name) {
                ctx.update(&value);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifs::VeriFs;
    use vfs::{FileMode, FileSystem};

    fn fs_with(paths: &[(&str, &[u8])]) -> VeriFs {
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        for (p, data) in paths {
            let fd = fs.create(p, FileMode::REG_DEFAULT).unwrap();
            fs.write(fd, data).unwrap();
            fs.close(fd).unwrap();
        }
        fs
    }

    #[test]
    fn equal_states_hash_equal() {
        let mut a = fs_with(&[("/x", b"one"), ("/y", b"two")]);
        let mut b = fs_with(&[("/y", b"two"), ("/x", b"one")]); // other order
        let cfg = AbstractionConfig::default();
        assert_eq!(
            abstract_state(&mut a, &cfg).unwrap(),
            abstract_state(&mut b, &cfg).unwrap()
        );
    }

    #[test]
    fn content_difference_changes_hash() {
        let mut a = fs_with(&[("/x", b"one")]);
        let mut b = fs_with(&[("/x", b"two")]);
        let cfg = AbstractionConfig::default();
        assert_ne!(
            abstract_state(&mut a, &cfg).unwrap(),
            abstract_state(&mut b, &cfg).unwrap()
        );
    }

    #[test]
    fn metadata_difference_changes_hash() {
        let mut a = fs_with(&[("/x", b"s")]);
        let mut b = fs_with(&[("/x", b"s")]);
        b.chmod("/x", FileMode::new(0o400)).unwrap();
        let cfg = AbstractionConfig::default();
        assert_ne!(
            abstract_state(&mut a, &cfg).unwrap(),
            abstract_state(&mut b, &cfg).unwrap()
        );
    }

    #[test]
    fn atime_is_excluded_by_default() {
        let mut a = fs_with(&[("/x", b"data")]);
        let cfg = AbstractionConfig::default();
        let before = abstract_state(&mut a, &cfg).unwrap();
        // Read the file: bumps atime, nothing else.
        let fd = a.open("/x", vfs::OpenFlags::read_only(), FileMode::REG_DEFAULT).unwrap();
        a.read(fd, &mut [0u8; 4]).unwrap();
        a.close(fd).unwrap();
        let after = abstract_state(&mut a, &cfg).unwrap();
        assert_eq!(before, after, "atime noise must not create new states");
        // With atime included, the same pair differs (the §3.3 explosion).
        let noisy = AbstractionConfig {
            include_atime: true,
            ..AbstractionConfig::default()
        };
        let h1 = abstract_state(&mut a, &noisy).unwrap();
        let fd = a.open("/x", vfs::OpenFlags::read_only(), FileMode::REG_DEFAULT).unwrap();
        a.read(fd, &mut [0u8; 4]).unwrap();
        a.close(fd).unwrap();
        let h2 = abstract_state(&mut a, &noisy).unwrap();
        assert_ne!(h1, h2);
    }

    #[test]
    fn exception_list_hides_special_files() {
        let mut plain = fs_with(&[("/x", b"d")]);
        let mut with_lf = fs_with(&[("/x", b"d")]);
        with_lf.mkdir("/lost+found", FileMode::new(0o700)).unwrap();
        let cfg = AbstractionConfig::default();
        assert_eq!(
            abstract_state(&mut plain, &cfg).unwrap(),
            abstract_state(&mut with_lf, &cfg).unwrap(),
            "lost+found must be invisible to the comparison"
        );
    }

    #[test]
    fn nested_directories_are_traversed() {
        let mut a = VeriFs::v2();
        a.mount().unwrap();
        a.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        a.mkdir("/d/e", FileMode::DIR_DEFAULT).unwrap();
        let fd = a.create("/d/e/deep", FileMode::REG_DEFAULT).unwrap();
        a.write(fd, b"deep content").unwrap();
        a.close(fd).unwrap();
        let cfg = AbstractionConfig::default();
        let h1 = abstract_state(&mut a, &cfg).unwrap();
        // Changing deep content changes the hash.
        let fd = a.open("/d/e/deep", vfs::OpenFlags::write_only(), FileMode::REG_DEFAULT).unwrap();
        a.write(fd, b"DEEP").unwrap();
        a.close(fd).unwrap();
        assert_ne!(h1, abstract_state(&mut a, &cfg).unwrap());
    }

    #[test]
    fn symlink_target_participates() {
        let mut a = fs_with(&[("/x", b"")]);
        let mut b = fs_with(&[("/x", b"")]);
        a.symlink("/x", "/ln").unwrap();
        b.symlink("/other", "/ln").unwrap();
        let cfg = AbstractionConfig::default();
        assert_ne!(
            abstract_state(&mut a, &cfg).unwrap(),
            abstract_state(&mut b, &cfg).unwrap()
        );
    }

    #[test]
    fn xattrs_participate() {
        let mut a = fs_with(&[("/x", b"")]);
        let mut b = fs_with(&[("/x", b"")]);
        a.setxattr("/x", "user.k", b"v", vfs::XattrFlags::Any).unwrap();
        let cfg = AbstractionConfig::default();
        assert_ne!(
            abstract_state(&mut a, &cfg).unwrap(),
            abstract_state(&mut b, &cfg).unwrap()
        );
    }

    #[test]
    fn cross_fs_equal_content_hashes_equal() {
        // The core MCFS property: two different *implementations* holding
        // the same logical state produce the same abstract hash.
        let mut ram = fs_with(&[("/a", b"same bytes")]);
        let mut ext = fs_ext::ext4_on_ram(256 * 1024).unwrap();
        ext.mount().unwrap();
        let fd = ext.create("/a", FileMode::REG_DEFAULT).unwrap();
        ext.write(fd, b"same bytes").unwrap();
        ext.close(fd).unwrap();
        let cfg = AbstractionConfig::default();
        assert_eq!(
            abstract_state(&mut ram, &cfg).unwrap(),
            abstract_state(&mut ext, &cfg).unwrap(),
            "verifs2 and ext4 with identical logical state must match"
        );
    }
}

#[cfg(test)]
mod more_abstraction_tests {
    use super::*;
    use verifs::VeriFs;
    use vfs::{FileMode, FileSystem};

    #[test]
    fn hash_is_invariant_to_inode_numbering() {
        // Two file systems reach the same logical namespace through
        // different create/delete orders, ending with different inode
        // numbers for the same paths. The abstract state must agree.
        let mut a = VeriFs::v2();
        a.mount().unwrap();
        let mut b = VeriFs::v2();
        b.mount().unwrap();
        // a: create x then y.
        for p in ["/x", "/y"] {
            let fd = a.create(p, FileMode::REG_DEFAULT).unwrap();
            a.write(fd, p.as_bytes()).unwrap();
            a.close(fd).unwrap();
        }
        // b: create scratch files first (consuming inode slots), delete
        // them, then create y and x in the opposite order.
        for p in ["/s1", "/s2", "/s3"] {
            let fd = b.create(p, FileMode::REG_DEFAULT).unwrap();
            b.close(fd).unwrap();
        }
        for p in ["/s1", "/s2", "/s3"] {
            b.unlink(p).unwrap();
        }
        for p in ["/y", "/x"] {
            let fd = b.create(p, FileMode::REG_DEFAULT).unwrap();
            b.write(fd, p.as_bytes()).unwrap();
            b.close(fd).unwrap();
        }
        assert_ne!(
            a.stat("/x").unwrap().ino,
            b.stat("/x").unwrap().ino,
            "precondition: the inode numbers actually differ"
        );
        let cfg = AbstractionConfig::default();
        assert_eq!(
            abstract_state(&mut a, &cfg).unwrap(),
            abstract_state(&mut b, &cfg).unwrap(),
            "inode numbering is physical noise and must not be hashed"
        );
    }

    #[test]
    fn empty_filesystems_of_different_kinds_agree() {
        let cfg = AbstractionConfig::default();
        let mut hashes = Vec::new();
        let mut v = VeriFs::v1();
        v.mount().unwrap();
        hashes.push(abstract_state(&mut v, &cfg).unwrap());
        let mut e2 = fs_ext::ext2_on_ram(256 * 1024).unwrap();
        e2.mount().unwrap();
        hashes.push(abstract_state(&mut e2, &cfg).unwrap());
        let mut e4 = fs_ext::ext4_on_ram(256 * 1024).unwrap();
        e4.mount().unwrap();
        hashes.push(abstract_state(&mut e4, &cfg).unwrap());
        let mut x = fs_xfs::xfs_on_ram(fs_xfs::MIN_DEVICE_BYTES).unwrap();
        x.mount().unwrap();
        hashes.push(abstract_state(&mut x, &cfg).unwrap());
        let mut j = fs_jffs2::jffs2_on_mtdram(16 * 1024, 16).unwrap();
        j.mount().unwrap();
        hashes.push(abstract_state(&mut j, &cfg).unwrap());
        assert!(
            hashes.windows(2).all(|w| w[0] == w[1]),
            "all five empty file systems share one abstract state: {hashes:?}"
        );
    }

    #[test]
    fn dir_size_inclusion_breaks_cross_fs_agreement() {
        // The control for the §3.4 workaround: with include_dir_sizes the
        // same pair of empty file systems disagrees.
        let noisy = AbstractionConfig {
            include_dir_sizes: true,
            ..AbstractionConfig::default()
        };
        let mut e4 = fs_ext::ext4_on_ram(256 * 1024).unwrap();
        e4.mount().unwrap();
        let mut x = fs_xfs::xfs_on_ram(fs_xfs::MIN_DEVICE_BYTES).unwrap();
        x.mount().unwrap();
        assert_ne!(
            abstract_state(&mut e4, &noisy).unwrap(),
            abstract_state(&mut x, &noisy).unwrap()
        );
    }
}
