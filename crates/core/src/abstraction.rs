//! Abstraction functions — Algorithm 1 of the paper.
//!
//! An abstract state is the MD5 hash of every file's pathname, content, and
//! *important* metadata (mode, size, nlink, uid, gid), collected by a sorted
//! recursive traversal from the mount point. Noisy attributes — atime, block
//! placement, directory sizes — are deliberately excluded: hashing them
//! would make every state unique and explode the state space (§3.3).
//! Special files like ext4's `lost+found` and MCFS's own capacity-
//! equalization dummy are excluded via the exception list (§3.4).
//!
//! The hash is structured in two Merkle-style levels: a per-path *leaf
//! digest* over one object's content + important attributes + pathname, and
//! the *state hash* folding the leaf digests in sorted-path order. The
//! levels make the hash incrementally maintainable: [`FingerprintCache`]
//! keeps leaf digests across operations and invalidates only the paths an
//! operation touched (plus descendants and ancestors), so the per-op cost
//! drops from O(total tree bytes) to O(touched bytes) + O(tree entries).

use std::collections::HashMap;
use std::sync::Arc;

use mdigest::{Digest128, Md5};
use vfs::{FileSystem, FileType, OpenFlags, VfsResult};

/// Configuration of the abstraction function.
#[derive(Debug, Clone)]
pub struct AbstractionConfig {
    /// Names excluded everywhere they appear (e.g. `lost+found`, the
    /// free-space-equalization dummy file).
    pub exceptions: Vec<String>,
    /// Include directory sizes in the hash. **Off** by default (§3.4:
    /// ext reports block multiples, others entry counts). Turning it on is
    /// how the false-positive benchmark demonstrates the problem.
    pub include_dir_sizes: bool,
    /// Include atime in the hash. **Off** by default (§3.3: atime updates
    /// make every state unique). The ablation benchmark turns it on to show
    /// the explosion.
    pub include_atime: bool,
    /// Sort directory entries before hashing. **On** by default; turning it
    /// off reintroduces the entry-order false positive.
    pub sort_entries: bool,
}

impl Default for AbstractionConfig {
    fn default() -> Self {
        AbstractionConfig {
            exceptions: vec!["lost+found".to_string(), crate::EQUALIZE_DUMMY.to_string()],
            include_dir_sizes: false,
            include_atime: false,
            sort_entries: true,
        }
    }
}

/// Computes the abstract state of a mounted file system (Algorithm 1).
///
/// Traverses from the root, sorts paths, reads every regular file's content
/// and each object's important attributes, and hashes it all with MD5.
///
/// # Errors
///
/// Propagates file-system errors — an error during traversal means the file
/// system is corrupted, which the harness reports as a violation.
pub fn abstract_state(fs: &mut dyn FileSystem, cfg: &AbstractionConfig) -> VfsResult<Digest128> {
    hash_state(fs, cfg, None)
}

/// Computes the abstract state reusing cached per-path digests.
///
/// Equivalent to [`abstract_state`] (the two share one implementation), but
/// leaf digests found in `cache` are folded in without re-reading file
/// bytes or re-statting; misses are computed and inserted. The caller is
/// responsible for invalidating the cache after every mutation (see
/// [`FingerprintCache::invalidate_op`]) — a stale entry silently yields a
/// stale state hash.
///
/// With `include_atime` the cache is bypassed entirely: atime changes on
/// every read, so cached digests could never be reused anyway.
///
/// # Errors
///
/// See [`abstract_state`].
pub fn abstract_state_cached(
    fs: &mut dyn FileSystem,
    cfg: &AbstractionConfig,
    cache: &mut FingerprintCache,
) -> VfsResult<Digest128> {
    if cfg.include_atime {
        return hash_state(fs, cfg, None);
    }
    hash_state(fs, cfg, Some(cache))
}

fn hash_state(
    fs: &mut dyn FileSystem,
    cfg: &AbstractionConfig,
    mut cache: Option<&mut FingerprintCache>,
) -> VfsResult<Digest128> {
    // Phase 1: collect all paths by recursive traversal. This stays a full
    // walk even with a cache — enumeration is O(tree entries), the expensive
    // part being avoided is the O(tree bytes) content hashing below.
    let mut files: Vec<(String, FileType)> = Vec::new();
    let mut pending: Vec<String> = vec!["/".to_string()];
    while let Some(dir) = pending.pop() {
        let mut entries = fs.getdents(&dir)?;
        if cfg.sort_entries {
            entries.sort_by(|a, b| a.name.cmp(&b.name));
        }
        for e in entries {
            if cfg.exceptions.contains(&e.name) {
                continue;
            }
            let path = vfs::path::join(&dir, &e.name);
            if e.ftype == FileType::Directory {
                pending.push(path.clone());
            }
            files.push((path, e.ftype));
        }
    }
    // Phase 2: sort by pathname for a canonical order.
    files.sort();

    // Phase 3: fold per-path leaf digests (content + important attributes +
    // path), cached where possible. The root's own attributes participate
    // too.
    let mut ctx = Md5::new();
    let root = leaf_digest(fs, "/", FileType::Directory, cfg, cache.as_deref_mut())?;
    ctx.update(root.as_bytes());
    for (path, ftype) in files {
        let leaf = leaf_digest(fs, &path, ftype, cfg, cache.as_deref_mut())?;
        ctx.update(leaf.as_bytes());
    }
    Ok(ctx.finalize())
}

/// Computes (or fetches) one path's leaf digest.
fn leaf_digest(
    fs: &mut dyn FileSystem,
    path: &str,
    ftype: FileType,
    cfg: &AbstractionConfig,
    cache: Option<&mut FingerprintCache>,
) -> VfsResult<Digest128> {
    if let Some(cache) = &cache {
        if let Some(d) = cache.get(path) {
            return Ok(d);
        }
    }
    let mut ctx = Md5::new();
    if ftype == FileType::Regular {
        let fd = fs.open(path, OpenFlags::read_only(), vfs::FileMode::REG_DEFAULT)?;
        let mut buf = vec![0u8; 4096];
        loop {
            let n = fs.read(fd, &mut buf)?;
            if n == 0 {
                break;
            }
            ctx.update(&buf[..n]);
        }
        fs.close(fd)?;
    }
    if ftype == FileType::Symlink {
        // A symlink's "content" is its target.
        ctx.update_str(&fs.readlink(path)?);
    }
    hash_attrs(fs, &mut ctx, path, ftype, cfg)?;
    ctx.update_str(path);
    let digest = ctx.finalize();
    if let Some(cache) = cache {
        cache.put(path, digest);
    }
    Ok(digest)
}

/// Cache of per-path leaf digests for incremental abstract-state hashing.
///
/// One cache belongs to exactly one file-system instance: digests encode
/// that instance's observed content and attributes, and sharing a cache
/// across the harness's targets would mask exactly the divergences MCFS
/// exists to find.
///
/// # Invalidation rules
///
/// [`FingerprintCache::invalidate_op`] must be called with the operation's
/// touched paths *before* the operation executes (so the hardlink check
/// below observes pre-operation link counts). For each touched path it
/// drops:
///
/// * the path itself — its content/attributes may change;
/// * every cached **descendant** — a directory rename or rmdir moves or
///   removes the whole subtree under it;
/// * every **ancestor** up to `/` — creates, deletes, and renames alter the
///   parent directory, and attribute options like `include_dir_sizes` fold
///   those changes into ancestor digests.
///
/// If any touched path currently names a non-directory with `nlink > 1`,
/// the whole cache is flushed: some *other* pathname aliases the same inode
/// and its digest changes too, but the alias's name is unknown without an
/// inverse inode→paths index.
#[derive(Debug, Clone, Default)]
pub struct FingerprintCache {
    map: HashMap<String, Digest128>,
}

impl FingerprintCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        FingerprintCache::default()
    }

    /// Number of cached leaf digests.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no digests.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every cached digest.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    fn get(&self, path: &str) -> Option<Digest128> {
        self.map.get(path).copied()
    }

    fn put(&mut self, path: &str, digest: Digest128) {
        self.map.insert(path.to_string(), digest);
    }

    /// Invalidates the cache for an operation touching `touched` paths.
    ///
    /// Must run **before** the operation executes — see the type-level
    /// documentation for the rules, including the pre-op hardlink check
    /// that needs `fs`.
    pub fn invalidate_op(&mut self, fs: &mut dyn FileSystem, touched: &[&str]) {
        for path in touched {
            if let Ok(st) = fs.stat(path) {
                if st.ftype != FileType::Directory && st.nlink > 1 {
                    self.map.clear();
                    return;
                }
            }
        }
        for path in touched {
            self.invalidate_path(path);
        }
    }

    /// Invalidates one path, its cached descendants, and its ancestors.
    pub fn invalidate_path(&mut self, path: &str) {
        self.map
            .retain(|cached, _| !vfs::path::is_same_or_descendant(path, cached));
        for anc in vfs::path::ancestors(path) {
            self.map.remove(anc);
        }
    }

    /// Visits every cached `(path, digest)` pair in path order — the
    /// canonical export order — without cloning the paths. Serializers
    /// stream straight from this into their output buffer; only a vector of
    /// path *references* is materialized for the sort.
    pub fn for_each_sorted(&self, mut f: impl FnMut(&str, u128)) {
        let mut paths: Vec<&String> = self.map.keys().collect();
        paths.sort_unstable();
        for p in paths {
            f(p, self.map[p].as_u128());
        }
    }

    /// Exports the cached `(path, digest)` pairs, sorted by path so the
    /// result is canonical. Prefer [`for_each_sorted`]
    /// (FingerprintCache::for_each_sorted) when the pairs are consumed once:
    /// it skips cloning every path.
    pub fn export_entries(&self) -> Vec<(String, u128)> {
        let mut out = Vec::with_capacity(self.map.len());
        self.for_each_sorted(|p, d| out.push((p.to_string(), d)));
        out
    }

    /// Rebuilds the cache from exported entries (replacing the current
    /// contents). Digests are trusted verbatim: only feed back what
    /// [`FingerprintCache::export_entries`] produced for an identically
    /// configured target, or the next comparison will chase phantom
    /// divergences.
    pub fn load_entries(&mut self, entries: &[(String, u128)]) {
        self.map.clear();
        self.map.reserve(entries.len());
        for (path, raw) in entries {
            self.map
                .insert(path.clone(), Digest128::from_bytes(raw.to_le_bytes()));
        }
    }
}

/// One target's fingerprint state: the live [`FingerprintCache`] plus
/// snapshots saved alongside the target's state checkpoints.
///
/// Each checked target owns its own store — caches are never shared across
/// targets, since a shared cache would paper over exactly the
/// cross-file-system divergences MCFS exists to detect. The store can be
/// constructed disabled (e.g. for the deliberately-unsound no-remount mode,
/// where even the file system's own view is stale), in which case every
/// method degrades to the uncached behavior.
#[derive(Debug, Clone)]
pub struct FingerprintStore {
    /// Arc-backed so saving is a refcount bump, not a map copy: the saved
    /// snapshot shares the live cache's storage until the next invalidation
    /// diverges them (clone-on-write via [`Arc::make_mut`]).
    live: Arc<FingerprintCache>,
    saved: HashMap<u64, Arc<FingerprintCache>>,
    enabled: bool,
}

impl Default for FingerprintStore {
    fn default() -> Self {
        FingerprintStore::new(true)
    }
}

impl FingerprintStore {
    /// Creates a store; `enabled: false` makes every method a no-op /
    /// full-recompute fallback.
    pub fn new(enabled: bool) -> Self {
        FingerprintStore {
            live: Arc::new(FingerprintCache::new()),
            saved: HashMap::new(),
            enabled,
        }
    }

    /// Whether incremental hashing is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Invalidates the live cache for an operation touching `touched`.
    pub fn invalidate(&mut self, fs: &mut dyn FileSystem, touched: &[&str]) {
        if self.enabled {
            Arc::make_mut(&mut self.live).invalidate_op(fs, touched);
        }
    }

    /// Abstract state via the live cache (full recompute when disabled).
    ///
    /// # Errors
    ///
    /// See [`abstract_state`].
    pub fn hash(
        &mut self,
        fs: &mut dyn FileSystem,
        cfg: &AbstractionConfig,
    ) -> VfsResult<Digest128> {
        if self.enabled {
            abstract_state_cached(fs, cfg, Arc::make_mut(&mut self.live))
        } else {
            abstract_state(fs, cfg)
        }
    }

    /// Snapshots the live cache under `key` (alongside a state checkpoint).
    /// O(1): the snapshot shares the live cache until either side mutates.
    pub fn save(&mut self, key: u64) {
        if self.enabled {
            self.saved.insert(key, Arc::clone(&self.live));
        }
    }

    /// Restores the cache saved under `key`; unknown keys clear the live
    /// cache (always safe — the next hash recomputes from scratch).
    pub fn load(&mut self, key: u64) {
        if self.enabled {
            self.live = self.saved.get(&key).cloned().unwrap_or_default();
        }
    }

    /// Drops the cache snapshot saved under `key`.
    pub fn drop_key(&mut self, key: u64) {
        self.saved.remove(&key);
    }

    /// Clears the live cache. Used after a crash-remount: every cached
    /// digest describes pre-crash state and is suspect; the next hash
    /// recomputes from what recovery actually reconstructed.
    pub fn clear_live(&mut self) {
        if self.enabled {
            self.live = Arc::default();
        }
    }

    /// Exports the live cache's `(path, digest)` pairs (sorted by path) for
    /// persistence alongside a run snapshot. Saved per-checkpoint snapshots
    /// are deliberately not exported: checkpoint keys are meaningless in a
    /// resumed process, which rebuilds its checkpoints by replaying
    /// frontier prefixes.
    pub fn export_live(&self) -> Vec<(String, u128)> {
        if self.enabled {
            self.live.export_entries()
        } else {
            Vec::new()
        }
    }

    /// Streaming form of [`export_live`](FingerprintStore::export_live):
    /// visits the live `(path, digest)` pairs in canonical path order
    /// without materializing owned copies. A disabled store visits nothing.
    pub fn for_each_live(&self, f: impl FnMut(&str, u128)) {
        if self.enabled {
            self.live.for_each_sorted(f);
        }
    }

    /// Seeds the live cache from exported entries, so the first hash after
    /// a resume is warm instead of a full-tree recompute. A disabled store
    /// ignores the import.
    pub fn import_live(&mut self, entries: &[(String, u128)]) {
        if self.enabled {
            Arc::make_mut(&mut self.live).load_entries(entries);
        }
    }
}

fn hash_attrs(
    fs: &mut dyn FileSystem,
    ctx: &mut Md5,
    path: &str,
    ftype: FileType,
    cfg: &AbstractionConfig,
) -> VfsResult<()> {
    let st = fs.stat(path)?;
    // important_attributes (Algorithm 1, line 12): mode, size, nlink, uid,
    // gid. atime/mtime/ctime and physical placement are noise. Directory
    // link counts are excluded too: they leak excepted special folders
    // (ext4's root has nlink 3 because of lost+found) and differ across
    // implementations counting subdirectories.
    ctx.update_u64(st.mode.bits() as u64);
    if ftype != FileType::Directory {
        ctx.update_u64(st.nlink as u64);
    }
    ctx.update_u64(st.uid as u64);
    ctx.update_u64(st.gid as u64);
    let include_size = match ftype {
        FileType::Directory => cfg.include_dir_sizes,
        _ => true,
    };
    if include_size {
        ctx.update_u64(st.size);
    }
    if cfg.include_atime {
        ctx.update_u64(st.atime);
    }
    // Hash xattrs when the file system supports them.
    if let Ok(mut names) = fs.listxattr(path) {
        names.sort();
        for name in names {
            ctx.update_str(&name);
            if let Ok(value) = fs.getxattr(path, &name) {
                ctx.update(&value);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifs::VeriFs;
    use vfs::{FileMode, FileSystem};

    fn fs_with(paths: &[(&str, &[u8])]) -> VeriFs {
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        for (p, data) in paths {
            let fd = fs.create(p, FileMode::REG_DEFAULT).unwrap();
            fs.write(fd, data).unwrap();
            fs.close(fd).unwrap();
        }
        fs
    }

    #[test]
    fn equal_states_hash_equal() {
        let mut a = fs_with(&[("/x", b"one"), ("/y", b"two")]);
        let mut b = fs_with(&[("/y", b"two"), ("/x", b"one")]); // other order
        let cfg = AbstractionConfig::default();
        assert_eq!(
            abstract_state(&mut a, &cfg).unwrap(),
            abstract_state(&mut b, &cfg).unwrap()
        );
    }

    #[test]
    fn content_difference_changes_hash() {
        let mut a = fs_with(&[("/x", b"one")]);
        let mut b = fs_with(&[("/x", b"two")]);
        let cfg = AbstractionConfig::default();
        assert_ne!(
            abstract_state(&mut a, &cfg).unwrap(),
            abstract_state(&mut b, &cfg).unwrap()
        );
    }

    #[test]
    fn metadata_difference_changes_hash() {
        let mut a = fs_with(&[("/x", b"s")]);
        let mut b = fs_with(&[("/x", b"s")]);
        b.chmod("/x", FileMode::new(0o400)).unwrap();
        let cfg = AbstractionConfig::default();
        assert_ne!(
            abstract_state(&mut a, &cfg).unwrap(),
            abstract_state(&mut b, &cfg).unwrap()
        );
    }

    #[test]
    fn atime_is_excluded_by_default() {
        let mut a = fs_with(&[("/x", b"data")]);
        let cfg = AbstractionConfig::default();
        let before = abstract_state(&mut a, &cfg).unwrap();
        // Read the file: bumps atime, nothing else.
        let fd = a
            .open("/x", vfs::OpenFlags::read_only(), FileMode::REG_DEFAULT)
            .unwrap();
        a.read(fd, &mut [0u8; 4]).unwrap();
        a.close(fd).unwrap();
        let after = abstract_state(&mut a, &cfg).unwrap();
        assert_eq!(before, after, "atime noise must not create new states");
        // With atime included, the same pair differs (the §3.3 explosion).
        let noisy = AbstractionConfig {
            include_atime: true,
            ..AbstractionConfig::default()
        };
        let h1 = abstract_state(&mut a, &noisy).unwrap();
        let fd = a
            .open("/x", vfs::OpenFlags::read_only(), FileMode::REG_DEFAULT)
            .unwrap();
        a.read(fd, &mut [0u8; 4]).unwrap();
        a.close(fd).unwrap();
        let h2 = abstract_state(&mut a, &noisy).unwrap();
        assert_ne!(h1, h2);
    }

    #[test]
    fn exception_list_hides_special_files() {
        let mut plain = fs_with(&[("/x", b"d")]);
        let mut with_lf = fs_with(&[("/x", b"d")]);
        with_lf.mkdir("/lost+found", FileMode::new(0o700)).unwrap();
        let cfg = AbstractionConfig::default();
        assert_eq!(
            abstract_state(&mut plain, &cfg).unwrap(),
            abstract_state(&mut with_lf, &cfg).unwrap(),
            "lost+found must be invisible to the comparison"
        );
    }

    #[test]
    fn nested_directories_are_traversed() {
        let mut a = VeriFs::v2();
        a.mount().unwrap();
        a.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        a.mkdir("/d/e", FileMode::DIR_DEFAULT).unwrap();
        let fd = a.create("/d/e/deep", FileMode::REG_DEFAULT).unwrap();
        a.write(fd, b"deep content").unwrap();
        a.close(fd).unwrap();
        let cfg = AbstractionConfig::default();
        let h1 = abstract_state(&mut a, &cfg).unwrap();
        // Changing deep content changes the hash.
        let fd = a
            .open(
                "/d/e/deep",
                vfs::OpenFlags::write_only(),
                FileMode::REG_DEFAULT,
            )
            .unwrap();
        a.write(fd, b"DEEP").unwrap();
        a.close(fd).unwrap();
        assert_ne!(h1, abstract_state(&mut a, &cfg).unwrap());
    }

    #[test]
    fn symlink_target_participates() {
        let mut a = fs_with(&[("/x", b"")]);
        let mut b = fs_with(&[("/x", b"")]);
        a.symlink("/x", "/ln").unwrap();
        b.symlink("/other", "/ln").unwrap();
        let cfg = AbstractionConfig::default();
        assert_ne!(
            abstract_state(&mut a, &cfg).unwrap(),
            abstract_state(&mut b, &cfg).unwrap()
        );
    }

    #[test]
    fn xattrs_participate() {
        let mut a = fs_with(&[("/x", b"")]);
        let mut b = fs_with(&[("/x", b"")]);
        a.setxattr("/x", "user.k", b"v", vfs::XattrFlags::Any)
            .unwrap();
        let cfg = AbstractionConfig::default();
        assert_ne!(
            abstract_state(&mut a, &cfg).unwrap(),
            abstract_state(&mut b, &cfg).unwrap()
        );
    }

    #[test]
    fn cross_fs_equal_content_hashes_equal() {
        // The core MCFS property: two different *implementations* holding
        // the same logical state produce the same abstract hash.
        let mut ram = fs_with(&[("/a", b"same bytes")]);
        let mut ext = fs_ext::ext4_on_ram(256 * 1024).unwrap();
        ext.mount().unwrap();
        let fd = ext.create("/a", FileMode::REG_DEFAULT).unwrap();
        ext.write(fd, b"same bytes").unwrap();
        ext.close(fd).unwrap();
        let cfg = AbstractionConfig::default();
        assert_eq!(
            abstract_state(&mut ram, &cfg).unwrap(),
            abstract_state(&mut ext, &cfg).unwrap(),
            "verifs2 and ext4 with identical logical state must match"
        );
    }
}

#[cfg(test)]
mod more_abstraction_tests {
    use super::*;
    use verifs::VeriFs;
    use vfs::{FileMode, FileSystem};

    #[test]
    fn hash_is_invariant_to_inode_numbering() {
        // Two file systems reach the same logical namespace through
        // different create/delete orders, ending with different inode
        // numbers for the same paths. The abstract state must agree.
        let mut a = VeriFs::v2();
        a.mount().unwrap();
        let mut b = VeriFs::v2();
        b.mount().unwrap();
        // a: create x then y.
        for p in ["/x", "/y"] {
            let fd = a.create(p, FileMode::REG_DEFAULT).unwrap();
            a.write(fd, p.as_bytes()).unwrap();
            a.close(fd).unwrap();
        }
        // b: create scratch files first (consuming inode slots), delete
        // them, then create y and x in the opposite order.
        for p in ["/s1", "/s2", "/s3"] {
            let fd = b.create(p, FileMode::REG_DEFAULT).unwrap();
            b.close(fd).unwrap();
        }
        for p in ["/s1", "/s2", "/s3"] {
            b.unlink(p).unwrap();
        }
        for p in ["/y", "/x"] {
            let fd = b.create(p, FileMode::REG_DEFAULT).unwrap();
            b.write(fd, p.as_bytes()).unwrap();
            b.close(fd).unwrap();
        }
        assert_ne!(
            a.stat("/x").unwrap().ino,
            b.stat("/x").unwrap().ino,
            "precondition: the inode numbers actually differ"
        );
        let cfg = AbstractionConfig::default();
        assert_eq!(
            abstract_state(&mut a, &cfg).unwrap(),
            abstract_state(&mut b, &cfg).unwrap(),
            "inode numbering is physical noise and must not be hashed"
        );
    }

    #[test]
    fn empty_filesystems_of_different_kinds_agree() {
        let cfg = AbstractionConfig::default();
        let mut hashes = Vec::new();
        let mut v = VeriFs::v1();
        v.mount().unwrap();
        hashes.push(abstract_state(&mut v, &cfg).unwrap());
        let mut e2 = fs_ext::ext2_on_ram(256 * 1024).unwrap();
        e2.mount().unwrap();
        hashes.push(abstract_state(&mut e2, &cfg).unwrap());
        let mut e4 = fs_ext::ext4_on_ram(256 * 1024).unwrap();
        e4.mount().unwrap();
        hashes.push(abstract_state(&mut e4, &cfg).unwrap());
        let mut x = fs_xfs::xfs_on_ram(fs_xfs::MIN_DEVICE_BYTES).unwrap();
        x.mount().unwrap();
        hashes.push(abstract_state(&mut x, &cfg).unwrap());
        let mut j = fs_jffs2::jffs2_on_mtdram(16 * 1024, 16).unwrap();
        j.mount().unwrap();
        hashes.push(abstract_state(&mut j, &cfg).unwrap());
        assert!(
            hashes.windows(2).all(|w| w[0] == w[1]),
            "all five empty file systems share one abstract state: {hashes:?}"
        );
    }

    #[test]
    fn dir_size_inclusion_breaks_cross_fs_agreement() {
        // The control for the §3.4 workaround: with include_dir_sizes the
        // same pair of empty file systems disagrees.
        let noisy = AbstractionConfig {
            include_dir_sizes: true,
            ..AbstractionConfig::default()
        };
        let mut e4 = fs_ext::ext4_on_ram(256 * 1024).unwrap();
        e4.mount().unwrap();
        let mut x = fs_xfs::xfs_on_ram(fs_xfs::MIN_DEVICE_BYTES).unwrap();
        x.mount().unwrap();
        assert_ne!(
            abstract_state(&mut e4, &noisy).unwrap(),
            abstract_state(&mut x, &noisy).unwrap()
        );
    }
}

#[cfg(test)]
mod fingerprint_cache_tests {
    use super::*;
    use verifs::VeriFs;
    use vfs::{FileMode, FileSystem};

    fn write_file(fs: &mut VeriFs, path: &str, data: &[u8]) {
        let fd = fs
            .open(path, vfs::OpenFlags::write_only(), FileMode::REG_DEFAULT)
            .unwrap();
        fs.write(fd, data).unwrap();
        fs.close(fd).unwrap();
    }

    /// Each step mutates, invalidates the touched paths, and checks the
    /// cached hash against a from-scratch recompute.
    #[test]
    fn cached_hash_tracks_full_recompute_through_mutations() {
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        let cfg = AbstractionConfig::default();
        let mut cache = FingerprintCache::new();

        let check = |fs: &mut VeriFs, cache: &mut FingerprintCache, what: &str| {
            let cached = abstract_state_cached(fs, &cfg, cache).unwrap();
            let full = abstract_state(fs, &cfg).unwrap();
            assert_eq!(cached, full, "cached hash diverged after {what}");
        };

        check(&mut fs, &mut cache, "initial state");

        cache.invalidate_op(&mut fs, &["/d"]);
        fs.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        check(&mut fs, &mut cache, "mkdir /d");

        cache.invalidate_op(&mut fs, &["/d/f"]);
        let fd = fs.create("/d/f", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, b"hello").unwrap();
        fs.close(fd).unwrap();
        check(&mut fs, &mut cache, "create+write /d/f");

        cache.invalidate_op(&mut fs, &["/d/f"]);
        write_file(&mut fs, "/d/f", b"HELLO again");
        check(&mut fs, &mut cache, "rewrite /d/f");

        cache.invalidate_op(&mut fs, &["/d/f"]);
        fs.chmod("/d/f", FileMode::new(0o400)).unwrap();
        check(&mut fs, &mut cache, "chmod /d/f");

        cache.invalidate_op(&mut fs, &["/d", "/e"]);
        fs.rename("/d", "/e").unwrap();
        check(&mut fs, &mut cache, "rename /d -> /e (dir with contents)");

        cache.invalidate_op(&mut fs, &["/x", "/ln"]);
        fs.symlink("/x", "/ln").unwrap();
        check(&mut fs, &mut cache, "symlink /ln -> /x");

        cache.invalidate_op(&mut fs, &["/e/f"]);
        fs.unlink("/e/f").unwrap();
        check(&mut fs, &mut cache, "unlink /e/f");
    }

    #[test]
    fn hardlink_alias_triggers_full_flush() {
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        let cfg = AbstractionConfig::default();
        let mut cache = FingerprintCache::new();

        let fd = fs.create("/x", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, b"shared").unwrap();
        fs.close(fd).unwrap();
        fs.link("/x", "/y").unwrap();
        let _ = abstract_state_cached(&mut fs, &cfg, &mut cache).unwrap();
        assert!(!cache.is_empty());

        // A write through /x also changes /y's digest (same inode). The
        // pre-op nlink check must flush everything, so the cached hash
        // still matches the full recompute.
        cache.invalidate_op(&mut fs, &["/x"]);
        assert!(cache.is_empty(), "nlink > 1 must flush the whole cache");
        write_file(&mut fs, "/x", b"SHARED");
        assert_eq!(
            abstract_state_cached(&mut fs, &cfg, &mut cache).unwrap(),
            abstract_state(&mut fs, &cfg).unwrap()
        );
    }

    #[test]
    fn stale_cache_without_invalidation_is_wrong_by_design() {
        // Pins the contract: skipping invalidate_op yields a stale hash.
        // The harness owns the invalidation calls precisely because of this.
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        let cfg = AbstractionConfig::default();
        let mut cache = FingerprintCache::new();

        let fd = fs.create("/x", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, b"one").unwrap();
        fs.close(fd).unwrap();
        let before = abstract_state_cached(&mut fs, &cfg, &mut cache).unwrap();
        write_file(&mut fs, "/x", b"two");
        let stale = abstract_state_cached(&mut fs, &cfg, &mut cache).unwrap();
        assert_eq!(before, stale, "without invalidation the hash is stale");
        cache.invalidate_op(&mut fs, &["/x"]);
        assert_ne!(
            before,
            abstract_state_cached(&mut fs, &cfg, &mut cache).unwrap()
        );
    }

    #[test]
    fn directory_rename_invalidates_the_subtree() {
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        fs.mkdir("/a", FileMode::DIR_DEFAULT).unwrap();
        fs.mkdir("/a/b", FileMode::DIR_DEFAULT).unwrap();
        let fd = fs.create("/a/b/deep", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, b"deep").unwrap();
        fs.close(fd).unwrap();
        let cfg = AbstractionConfig::default();
        let mut cache = FingerprintCache::new();
        let _ = abstract_state_cached(&mut fs, &cfg, &mut cache).unwrap();

        cache.invalidate_op(&mut fs, &["/a", "/z"]);
        fs.rename("/a", "/z").unwrap();
        assert_eq!(
            abstract_state_cached(&mut fs, &cfg, &mut cache).unwrap(),
            abstract_state(&mut fs, &cfg).unwrap(),
            "stale /a/b/deep digests must not survive the rename"
        );
    }

    #[test]
    fn atime_mode_bypasses_the_cache() {
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        let fd = fs.create("/x", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, b"data").unwrap();
        fs.close(fd).unwrap();
        let noisy = AbstractionConfig {
            include_atime: true,
            ..AbstractionConfig::default()
        };
        let mut cache = FingerprintCache::new();
        let h1 = abstract_state_cached(&mut fs, &noisy, &mut cache).unwrap();
        assert!(cache.is_empty(), "atime mode must not populate the cache");
        // Hashing reads the file and bumps atime, so a cached hash that
        // froze the digest would wrongly repeat h1. The bypass keeps the
        // §3.3 noise observable.
        let h2 = abstract_state_cached(&mut fs, &noisy, &mut cache).unwrap();
        assert_ne!(h1, h2, "the cache must not mask atime noise");
        assert!(cache.is_empty());
    }

    #[test]
    fn cache_is_populated_and_reused() {
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        for p in ["/a", "/b", "/c"] {
            let fd = fs.create(p, FileMode::REG_DEFAULT).unwrap();
            fs.write(fd, p.as_bytes()).unwrap();
            fs.close(fd).unwrap();
        }
        let cfg = AbstractionConfig::default();
        let mut cache = FingerprintCache::new();
        let h1 = abstract_state_cached(&mut fs, &cfg, &mut cache).unwrap();
        // Root + 3 files.
        assert_eq!(cache.len(), 4);
        // Invalidate just /a: /b and /c digests survive, hash still right.
        cache.invalidate_op(&mut fs, &["/a"]);
        assert_eq!(cache.len(), 2);
        let h2 = abstract_state_cached(&mut fs, &cfg, &mut cache).unwrap();
        assert_eq!(h1, h2);
    }
}
