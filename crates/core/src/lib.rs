//! MCFS — a model-checking framework for file systems.
//!
//! This crate is the primary contribution of the reproduced paper
//! (*Model-Checking Support for File System Development*, HotStorage '21):
//! a harness that drives two or more file systems with nondeterministically
//! chosen operations, compares their observable outcomes after every
//! operation, and explores the bounded state space exhaustively using
//! abstract-state matching.
//!
//! The pieces, mapped to the paper:
//!
//! * [`pool`] — the randomized syscall engine: bounded operation/parameter
//!   pools and meta-operations (`create_file`, `write_file`) (§4);
//! * [`abstraction`] — Algorithm 1: MD5 over pathnames, file data, and
//!   important metadata, with the exception list and the dir-size /
//!   entry-order normalizations (§3.3–3.4);
//! * [`CheckedTarget`] and friends — state-tracking strategies per file
//!   system: remounting device snapshots (§3.2), the checkpoint/restore API
//!   (§5), VM snapshots, CRIU process snapshots (§5), and the future-work
//!   VFS-level checkpointing ([`VfsCheckpointTarget`]);
//! * [`Mcfs`] — the harness wiring N targets into one
//!   [`modelcheck::ModelSystem`], with integrity checks, free-space
//!   equalization (§3.4), majority voting and coverage tracking (§7);
//! * any `modelcheck` explorer (DFS, BFS, random walk, swarm) runs it.
//!
//! # Examples
//!
//! Model-check VeriFS1 against VeriFS2 (the paper's fastest pairing):
//!
//! ```
//! use mcfs::{CheckpointTarget, Mcfs, McfsConfig};
//! use modelcheck::{DfsExplorer, ExploreConfig};
//! use verifs::VeriFs;
//! use vfs::FileSystem;
//!
//! # fn main() -> vfs::VfsResult<()> {
//! let mut v1 = VeriFs::v1();
//! v1.mount()?;
//! let mut v2 = VeriFs::v2();
//! v2.mount()?;
//! let mut harness = Mcfs::new(
//!     vec![
//!         Box::new(CheckpointTarget::new(v1)),
//!         Box::new(CheckpointTarget::new(v2)),
//!     ],
//!     McfsConfig::default(),
//! )?;
//! let report = DfsExplorer::new(ExploreConfig {
//!     max_depth: 2,
//!     max_ops: 2_000,
//!     ..ExploreConfig::default()
//! })
//! .run(&mut harness);
//! assert!(report.violations.is_empty());
//! # Ok(())
//! # }
//! ```

pub mod abstraction;
pub mod canon;
pub mod ckpt_pool;
mod coverage;
pub mod effect;
mod harness;
pub mod interleave;
pub mod pool;
pub mod shrink;
mod target;
mod vfs_checkpoint;
pub mod wire;

pub use abstraction::{
    abstract_state, abstract_state_cached, AbstractionConfig, FingerprintCache, FingerprintStore,
};
pub use ckpt_pool::{CheckpointPool, ExternalSnap, FsImage, SnapshotBytes};
pub use coverage::Coverage;
pub use effect::{
    heuristic_independent, independent as effect_independent, signature, Conflict, ConflictKind,
    EffectIndex, EffectProfile, EffectSig, Independence, Place, WriteEffect, WriteKind,
};
pub use harness::{
    replay, replay_checked, FsckStats, HarnessFactory, Mcfs, McfsConfig, ReplayOutcome,
    EQUALIZE_DUMMY,
};
pub use interleave::{
    shrink_threaded_trace, InterleaveStats, SchedStep, ThreadedHarnessFactory, ThreadedMcfs,
    ThreadedMcfsConfig, ThreadedShrinkOutcome, ThreadedTrace, CRASH_TID,
};
pub use pool::{execute, execute_with, pattern, FsOp, OpOutcome, PoolConfig};
pub use shrink::{
    buggy_verifs_factory, harness_with_factory, repair_mask, shrink_trace, ShrinkConfig,
    ShrinkOutcome,
};
pub use target::{
    CheckedTarget, CheckpointTarget, CriuTarget, RemountMode, RemountTarget, RepairOutcome,
    VmTarget,
};
pub use vfs_checkpoint::VfsCheckpointTarget;
pub use wire::{FsOpCodec, ThreadedFsOpCodec};
