//! Effect signatures for the bounded operation pool and the independence
//! relation derived from them.
//!
//! SPIN derives statement independence for partial-order reduction from a
//! static analysis of each proctype's variable footprint; the original MCFS
//! reproduction instead hard-coded a path-prefix heuristic in the harness
//! (kept here as [`heuristic_independent`] for comparison). This module
//! replaces it with a declarative analysis: every [`FsOp`] maps to an
//! [`EffectSig`] — the set of abstract *places* it reads and writes — and
//! two operations are independent exactly when their footprints cannot
//! conflict.
//!
//! The place vocabulary is finer than whole paths, which is where the POR
//! improvement comes from:
//!
//! * file content is tracked per byte *range*, so two writes to disjoint
//!   ranges of the same file commute;
//! * metadata, size, link count and xattrs are separate places, so `chmod`
//!   commutes with a data write to the same file;
//! * writes carry an optional *value tag*: two exact writes of the same
//!   value to the same place commute (e.g. two `chmod 644` of one file);
//! * some writes are *merges* — commutative accumulations such as the
//!   size high-water mark of extending writes, link-count deltas, and
//!   idempotent kernel-cache fills — and merges never conflict with each
//!   other.
//!
//! It is also *sounder* than the heuristic: content places are keyed by an
//! alias class computed from the `Hardlink` pairs in the pool, so after
//! `link(/f0, /f1)` a truncate of `/f0` correctly conflicts with a write to
//! `/f1` (the old heuristic called them independent — a real unsoundness
//! the `analyze` crate's commutation sanitizer demonstrates). When the
//! harness wraps targets in a caching kernel layer
//! ([`FileSystem::caches_metadata`](vfs::FileSystem::caches_metadata)),
//! profiles add kernel-cache places so that cache-filling reads are no
//! longer blanket-independent of mutations on the same paths.
//!
//! Everything here is conservative by construction: any place pair the
//! overlap rules do not explicitly rule compatible is a conflict, `Crash`
//! (and any future op variant) writes the [`Place::Global`] wildcard, and
//! the relation is validated empirically by the `analyze` crate rather
//! than trusted (`MC001`).

use std::collections::HashMap;

use vfs::path;

use crate::pool::FsOp;

/// An abstract location an operation may read or write.
///
/// Namespace places (`Node`, `Entry`, `Entries`, `Subtree`, `Cache`) are
/// keyed by path: hard links never alias directory entries. Inode-content
/// places (`Meta`, `Size`, `Range`, `Links`, `Xattr`) are keyed by an
/// *alias class* (first field) so that paths joined by `Hardlink` ops in
/// the pool share their content footprint; the anchor path is carried for
/// diagnostics and alias detection only.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Place {
    /// Existence / identity of the object at a path.
    Node(String),
    /// One directory entry: `(parent dir, name)`.
    Entry(String, String),
    /// The whole listing of a directory (`getdents`, `rmdir` emptiness).
    Entries(String),
    /// Non-size inode attributes (mode, timestamps) of an alias class.
    Meta(u64, String),
    /// Logical file size of an alias class.
    Size(u64, String),
    /// Content byte range `[lo, hi)` of an alias class.
    Range(u64, String, u64, u64),
    /// Link count of an alias class.
    Links(u64, String),
    /// One named xattr of an alias class.
    Xattr(u64, String, String),
    /// A whole namespace subtree (rename moves every descendant).
    Subtree(String),
    /// Kernel attr/dentry cache state for one path (fusesim layer).
    Cache(String),
    /// Everything: crashes and unknown future op variants.
    Global,
}

impl Place {
    /// The path this place is anchored at, if any (used for subtree
    /// overlap and alias detection).
    fn anchor(&self) -> Option<&str> {
        match self {
            Place::Node(p)
            | Place::Entries(p)
            | Place::Subtree(p)
            | Place::Cache(p)
            | Place::Meta(_, p)
            | Place::Size(_, p)
            | Place::Range(_, p, _, _)
            | Place::Links(_, p)
            | Place::Xattr(_, p, _) => Some(p),
            Place::Entry(d, _) => Some(d),
            Place::Global => None,
        }
    }
}

impl std::fmt::Display for Place {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Place::Node(p) => write!(f, "node({p})"),
            Place::Entry(d, n) => write!(f, "entry({d}, {n})"),
            Place::Entries(d) => write!(f, "entries({d})"),
            Place::Meta(_, p) => write!(f, "meta({p})"),
            Place::Size(_, p) => write!(f, "size({p})"),
            Place::Range(_, p, lo, hi) => write!(f, "range({p}, {lo}..{hi})"),
            Place::Links(_, p) => write!(f, "links({p})"),
            Place::Xattr(_, p, n) => write!(f, "xattr({p}, {n})"),
            Place::Subtree(p) => write!(f, "subtree({p})"),
            Place::Cache(p) => write!(f, "cache({p})"),
            Place::Global => write!(f, "global"),
        }
    }
}

/// How a write effect composes with another write to the same place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// Last-writer-wins assignment; conflicts with any overlapping access
    /// unless both writes carry the same value tag on the identical cell.
    Exact,
    /// Commutative accumulation (size max, link-count delta, idempotent
    /// cache fill); merges never conflict with each other.
    Merge,
}

/// One write effect: a place, how it is written, and an optional value tag
/// identifying *what* an exact write stores (equal tags on the identical
/// cell commute).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteEffect {
    /// Written place.
    pub place: Place,
    /// Assignment or commutative merge.
    pub kind: WriteKind,
    /// Value identity for exact writes (`None` = unknown/stateful).
    pub tag: Option<u64>,
}

/// The declarative footprint of one operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EffectSig {
    /// Places the operation's outcome or behavior depends on.
    pub reads: Vec<Place>,
    /// Places the operation may change.
    pub writes: Vec<WriteEffect>,
}

impl EffectSig {
    /// Whether the op writes the global wildcard (crash-like).
    pub fn writes_global(&self) -> bool {
        self.writes.iter().any(|w| w.place == Place::Global)
    }

    fn read(&mut self, p: Place) {
        self.reads.push(p);
    }

    fn write_exact(&mut self, p: Place, tag: Option<u64>) {
        self.writes.push(WriteEffect {
            place: p,
            kind: WriteKind::Exact,
            tag,
        });
    }

    fn write_merge(&mut self, p: Place) {
        self.writes.push(WriteEffect {
            place: p,
            kind: WriteKind::Merge,
            tag: None,
        });
    }

    /// Path resolution: the op's behavior depends on every proper ancestor
    /// existing (the root always exists and is never unlinked — skipped).
    fn resolve(&mut self, p: &str) {
        for a in path::ancestors(p) {
            if !path::is_root(a) {
                self.reads.push(Place::Node(a.to_string()));
            }
        }
    }

    /// Write of the directory entry naming `p` (falls back to the global
    /// wildcard if the path cannot be split — never the case for pool
    /// paths).
    fn write_entry(&mut self, p: &str, tag: Option<u64>) {
        match path::split_parent(p) {
            Ok((dir, name)) => self.write_exact(Place::Entry(dir, name.to_string()), tag),
            Err(_) => self.write_exact(Place::Global, None),
        }
    }
}

/// Fowler–Noll–Vo 1a, used for alias-class ids and value tags.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Value tag from a discriminating label plus numeric parameters.
fn tag64(label: &str, parts: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(label.len() + parts.len() * 8);
    bytes.extend_from_slice(label.as_bytes());
    for p in parts {
        bytes.extend_from_slice(&p.to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// Context the signatures are derived under: which paths may alias through
/// hard links, and which kernel-visible side channels exist.
#[derive(Debug, Clone, Default)]
pub struct EffectProfile {
    /// Targets sit behind a caching kernel layer
    /// ([`caches_metadata`](vfs::FileSystem::caches_metadata)): reads fill
    /// attr/dentry caches and therefore write kernel state.
    pub kernel_caches: bool,
    /// The abstraction hashes atime, so content/listing reads mutate the
    /// compared state.
    pub atime_in_abstraction: bool,
    /// Union-find result over `Hardlink` pairs: path → alias-class id.
    alias: HashMap<String, u64>,
}

impl EffectProfile {
    /// Derives the alias classes from the (capability-filtered) op pool:
    /// two paths share a content footprint iff a chain of `Hardlink` ops in
    /// the pool can join them. A pool whose targets lack hard-link support
    /// contributes no classes, so every path is content-independent.
    pub fn from_pool(ops: &[FsOp]) -> Self {
        let mut parent: HashMap<String, String> = HashMap::new();
        fn find(parent: &HashMap<String, String>, p: &str) -> String {
            let mut cur = p.to_string();
            while let Some(next) = parent.get(&cur) {
                if *next == cur {
                    break;
                }
                cur = next.clone();
            }
            cur
        }
        for op in ops {
            if let FsOp::Hardlink { src, dst } = op {
                parent.entry(src.clone()).or_insert_with(|| src.clone());
                parent.entry(dst.clone()).or_insert_with(|| dst.clone());
                let rs = find(&parent, src);
                let rd = find(&parent, dst);
                if rs != rd {
                    parent.insert(rd, rs);
                }
            }
        }
        let mut alias = HashMap::new();
        for p in parent.keys() {
            let root = find(&parent, p);
            alias.insert(p.clone(), fnv1a64(root.as_bytes()));
        }
        EffectProfile {
            kernel_caches: false,
            atime_in_abstraction: false,
            alias,
        }
    }

    /// Builder: mark the profile as running behind caching kernel layers.
    pub fn with_kernel_caches(mut self, on: bool) -> Self {
        self.kernel_caches = on;
        self
    }

    /// Builder: mark atime as part of the compared abstraction.
    pub fn with_atime(mut self, on: bool) -> Self {
        self.atime_in_abstraction = on;
        self
    }

    /// Content alias class of a path. Paths never mentioned by a pool
    /// `Hardlink` are their own singleton class. (A hash collision between
    /// classes is harmless: equal classes only make the relation *more*
    /// dependent.)
    pub fn alias_class(&self, p: &str) -> u64 {
        self.alias
            .get(p)
            .copied()
            .unwrap_or_else(|| fnv1a64(p.as_bytes()))
    }

    /// Whether two paths are in the same alias class without being equal.
    pub fn aliased(&self, a: &str, b: &str) -> bool {
        a != b && self.alias_class(a) == self.alias_class(b)
    }
}

/// Derives the effect signature of one operation under a profile.
///
/// The derivation is per-variant and total: `Crash` (and, defensively, any
/// future variant) maps to a [`Place::Global`] write, which conflicts with
/// everything.
pub fn signature(op: &FsOp, prof: &EffectProfile) -> EffectSig {
    let mut sig = EffectSig::default();
    match op {
        FsOp::CreateFile { path, mode } => {
            // `creat` is EEXIST-on-existing in every backend: it never
            // truncates, so there is no content footprint.
            sig.resolve(path);
            sig.read(Place::Node(path.clone()));
            let tag = tag64("creat", &[*mode as u64]);
            sig.write_exact(Place::Node(path.clone()), Some(tag));
            sig.write_entry(path, Some(tag));
        }
        FsOp::WriteFile {
            path,
            offset,
            size,
            seed,
        } => {
            sig.resolve(path);
            sig.read(Place::Node(path.clone()));
            if *size > 0 {
                let c = prof.alias_class(path);
                // Size is a high-water mark: extending writes merge.
                sig.write_merge(Place::Size(c, path.clone()));
                sig.write_exact(
                    Place::Range(c, path.clone(), *offset, offset.saturating_add(*size)),
                    Some(tag64("write", &[*offset, *size, *seed as u64])),
                );
            }
            // A zero-length write is stateless: open/lseek/close change
            // nothing observable (errno still depends on the Node read).
        }
        FsOp::Truncate { path, size } => {
            sig.resolve(path);
            sig.read(Place::Node(path.clone()));
            let c = prof.alias_class(path);
            sig.write_exact(Place::Size(c, path.clone()), Some(tag64("trunc", &[*size])));
            // Truncation rewrites all content (zero-extends or discards).
            sig.write_exact(
                Place::Range(c, path.clone(), 0, u64::MAX),
                Some(tag64("trunc", &[*size])),
            );
        }
        FsOp::Mkdir { path, mode } => {
            sig.resolve(path);
            sig.read(Place::Node(path.clone()));
            // Distinct label from `creat`: create-then-mkdir leaves a file,
            // mkdir-then-create leaves a directory.
            let tag = tag64("mkdir", &[*mode as u64]);
            sig.write_exact(Place::Node(path.clone()), Some(tag));
            sig.write_entry(path, Some(tag));
        }
        FsOp::Rmdir { path } => {
            sig.resolve(path);
            sig.read(Place::Node(path.clone()));
            // Success depends on emptiness: reads the whole listing.
            sig.read(Place::Entries(path.clone()));
            sig.write_exact(Place::Node(path.clone()), None);
            sig.write_entry(path, None);
        }
        FsOp::Unlink { path } => {
            sig.resolve(path);
            sig.read(Place::Node(path.clone()));
            sig.write_exact(Place::Node(path.clone()), None);
            sig.write_entry(path, None);
            // The inode's link count drops by one — a commutative delta
            // shared with aliased paths.
            sig.write_merge(Place::Links(prof.alias_class(path), path.clone()));
        }
        FsOp::Rename { src, dst } => {
            sig.resolve(src);
            sig.resolve(dst);
            sig.read(Place::Node(src.clone()));
            sig.read(Place::Node(dst.clone()));
            // rename-over-directory requires the target empty.
            sig.read(Place::Entries(dst.clone()));
            // Whole subtrees move: everything under either path changes
            // identity.
            sig.write_exact(Place::Subtree(src.clone()), None);
            sig.write_exact(Place::Subtree(dst.clone()), None);
            sig.write_entry(src, None);
            sig.write_entry(dst, None);
        }
        FsOp::Hardlink { src, dst } => {
            sig.resolve(src);
            sig.resolve(dst);
            sig.read(Place::Node(src.clone()));
            sig.read(Place::Node(dst.clone()));
            let tag = tag64("link", &[fnv1a64(src.as_bytes())]);
            sig.write_exact(Place::Node(dst.clone()), Some(tag));
            sig.write_entry(dst, Some(tag));
            sig.write_merge(Place::Links(prof.alias_class(src), src.clone()));
        }
        FsOp::Symlink { target, linkpath } => {
            // The target is stored verbatim and never resolved (lstat
            // semantics): only the link path is touched.
            sig.resolve(linkpath);
            sig.read(Place::Node(linkpath.clone()));
            let tag = tag64("symlink", &[fnv1a64(target.as_bytes())]);
            sig.write_exact(Place::Node(linkpath.clone()), Some(tag));
            sig.write_entry(linkpath, Some(tag));
        }
        FsOp::ReadFile { path, offset, size } => {
            sig.resolve(path);
            sig.read(Place::Node(path.clone()));
            let c = prof.alias_class(path);
            sig.read(Place::Size(c, path.clone()));
            if *size > 0 {
                sig.read(Place::Range(
                    c,
                    path.clone(),
                    *offset,
                    offset.saturating_add(*size),
                ));
            }
            if prof.atime_in_abstraction {
                sig.write_exact(Place::Meta(c, path.clone()), None);
            }
        }
        FsOp::Stat { path } => {
            sig.resolve(path);
            sig.read(Place::Node(path.clone()));
            let c = prof.alias_class(path);
            sig.read(Place::Meta(c, path.clone()));
            sig.read(Place::Size(c, path.clone()));
            sig.read(Place::Links(c, path.clone()));
        }
        FsOp::Getdents { path } => {
            sig.resolve(path);
            sig.read(Place::Node(path.clone()));
            sig.read(Place::Entries(path.clone()));
            if prof.atime_in_abstraction {
                sig.write_exact(Place::Meta(prof.alias_class(path), path.clone()), None);
            }
        }
        FsOp::Chmod { path, mode } => {
            sig.resolve(path);
            sig.read(Place::Node(path.clone()));
            sig.write_exact(
                Place::Meta(prof.alias_class(path), path.clone()),
                Some(tag64("chmod", &[*mode as u64])),
            );
        }
        FsOp::SetXattr { path, name, seed } => {
            sig.resolve(path);
            sig.read(Place::Node(path.clone()));
            sig.write_exact(
                Place::Xattr(prof.alias_class(path), path.clone(), name.clone()),
                Some(tag64("setx", &[*seed as u64])),
            );
        }
        FsOp::RemoveXattr { path, name } => {
            sig.resolve(path);
            sig.read(Place::Node(path.clone()));
            // Removal is idempotent: two removals of the same attr commute
            // (tagged with a reserved "absent" value).
            sig.write_exact(
                Place::Xattr(prof.alias_class(path), path.clone(), name.clone()),
                Some(tag64("rmx", &[])),
            );
        }
        FsOp::Access { path } => {
            sig.resolve(path);
            sig.read(Place::Node(path.clone()));
            sig.read(Place::Meta(prof.alias_class(path), path.clone()));
        }
        // A crash rolls back everything unsynced, and fsck may rewrite any
        // metadata on the volume; future op variants are unknown and must
        // be maximally conservative.
        FsOp::Crash | FsOp::Fsck => {
            sig.write_exact(Place::Global, None);
        }
    }
    if prof.kernel_caches && !matches!(op, FsOp::Crash | FsOp::Fsck) {
        add_cache_effects(op, &mut sig);
    }
    sig
}

/// Kernel attr/dentry-cache footprint: resolution fills a cache entry per
/// path component (an idempotent merge), while mutations *change* the
/// cached attributes of the touched object and its parent directory.
fn add_cache_effects(op: &FsOp, sig: &mut EffectSig) {
    // Paths the kernel layer actually resolves; a symlink's stored target
    // is never walked.
    let resolved: Vec<&str> = match op {
        FsOp::Symlink { linkpath, .. } => vec![linkpath],
        other => other.touched_paths(),
    };
    let mutation = op.is_mutation();
    for p in resolved {
        if mutation {
            sig.write_exact(Place::Cache(p.to_string()), None);
            if let Ok((dir, _)) = path::split_parent(p) {
                sig.write_exact(Place::Cache(dir), None);
            }
            for a in path::ancestors(p).iter().skip(1) {
                if !path::is_root(a) {
                    sig.write_merge(Place::Cache(a.to_string()));
                }
            }
        } else {
            sig.write_merge(Place::Cache(p.to_string()));
            for a in path::ancestors(p) {
                if !path::is_root(a) {
                    sig.write_merge(Place::Cache(a.to_string()));
                }
            }
        }
    }
}

/// How two places can overlap.
struct Overlap {
    /// The match went through an alias class with distinct anchor paths.
    aliased: bool,
    /// The two places denote the identical cell (tag-equality can then
    /// prove two exact writes commute).
    identical_cell: bool,
}

fn overlap(a: &Place, b: &Place) -> Option<Overlap> {
    use Place::*;
    // Global and Subtree are wildcards: resolve them first.
    if matches!(a, Global) || matches!(b, Global) {
        return Some(Overlap {
            aliased: false,
            identical_cell: false,
        });
    }
    if let Subtree(p) = a {
        if let Some(q) = anchor_for_subtree(b) {
            if path::is_same_or_descendant(p, &q) {
                return Some(Overlap {
                    aliased: false,
                    identical_cell: false,
                });
            }
        }
        if !matches!(b, Subtree(_)) {
            return None;
        }
    }
    if let Subtree(p) = b {
        return anchor_for_subtree(a)
            .filter(|q| path::is_same_or_descendant(p, q))
            .map(|_| Overlap {
                aliased: false,
                identical_cell: false,
            });
    }
    let cell = |same: bool, aliased: bool| {
        same.then_some(Overlap {
            aliased,
            identical_cell: true,
        })
    };
    match (a, b) {
        (Node(p), Node(q)) => cell(p == q, false),
        (Entry(d, n), Entry(d2, n2)) => cell(d == d2 && n == n2, false),
        (Entries(d), Entries(d2)) => cell(d == d2, false),
        (Entry(d, _), Entries(d2)) | (Entries(d2), Entry(d, _)) => (d == d2).then_some(Overlap {
            aliased: false,
            identical_cell: false,
        }),
        (Cache(p), Cache(q)) => cell(p == q, false),
        (Meta(c, p), Meta(c2, q)) | (Size(c, p), Size(c2, q)) | (Links(c, p), Links(c2, q)) => {
            cell(c == c2, c == c2 && p != q)
        }
        (Xattr(c, p, n), Xattr(c2, q, n2)) => cell(c == c2 && n == n2, c == c2 && p != q),
        (Range(c, p, lo, hi), Range(c2, q, lo2, hi2)) => {
            if c == c2 && lo < hi2 && lo2 < hi {
                Some(Overlap {
                    aliased: p != q,
                    identical_cell: lo == lo2 && hi == hi2,
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

/// The path a subtree wildcard should be compared against.
fn anchor_for_subtree(p: &Place) -> Option<String> {
    match p {
        Place::Entry(d, n) => Some(path::join(d, n)),
        other => other.anchor().map(str::to_string),
    }
}

/// Why a pair is dependent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConflictKind {
    /// One op writes the global wildcard (crash-like).
    Global,
    /// A write overlaps the other op's read set.
    WriteRead,
    /// Two writes overlap and are not provably commuting.
    WriteWrite,
}

/// A concrete dependence witness: which places collided and whether the
/// collision went through hard-link aliasing (distinct anchor paths in one
/// alias class — precisely the pairs the old heuristic got wrong).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// Conflict category.
    pub kind: ConflictKind,
    /// Rendering of the colliding place (for diagnostics).
    pub place: String,
    /// The collision required alias-class matching across distinct paths.
    pub aliased: bool,
}

/// Outcome of the pairwise analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Independence {
    /// The footprints cannot conflict: both orders reach the same state.
    Independent,
    /// A witness that the pair may not commute.
    Dependent(Conflict),
}

impl Independence {
    /// True iff independent.
    pub fn is_independent(&self) -> bool {
        matches!(self, Independence::Independent)
    }
}

/// Pairwise analysis with a dependence witness; see [`independent`].
pub fn explain(a: &FsOp, b: &FsOp, prof: &EffectProfile) -> Independence {
    // Crash first: even against itself it must never enter a sleep set.
    let sa = signature(a, prof);
    let sb = signature(b, prof);
    if sa.writes_global() || sb.writes_global() {
        return Independence::Dependent(Conflict {
            kind: ConflictKind::Global,
            place: Place::Global.to_string(),
            aliased: false,
        });
    }
    // Identical ops commute trivially (o;o is the same sequence either
    // way) — checked after the crash guard.
    if a == b {
        return Independence::Independent;
    }
    explain_sigs(&sa, &sb)
}

/// Signature-level core of [`explain`] (callers with precomputed
/// signatures, e.g. [`EffectIndex`], skip re-derivation).
fn explain_sigs(sa: &EffectSig, sb: &EffectSig) -> Independence {
    // Pure reads commute with anything: an empty write set cannot change
    // the state the other op sees, and its own outcome is re-verified by
    // the harness along every interleaving actually executed.
    if sa.writes.is_empty() || sb.writes.is_empty() {
        return Independence::Independent;
    }
    explain_sigs_overlaps(sa, sb, true)
}

/// Signature-level concurrency independence.
///
/// The sequential relation above is a *state-reachability* relation: it may
/// call a pair independent when both orders reach the same abstract state,
/// even though the two ops' own **results** differ by order. That is sound
/// for reordering one sequential trace (each interleaving's outcomes are
/// re-verified when executed) but unsound as a concurrency independence
/// relation, where each logical thread observes its own result and the
/// pair's schedule decides who sees what. Two rules are therefore dropped:
///
/// * the pure-read shortcut — a read of a place another thread writes is
///   order-sensitive (stale vs. fresh result), even though it cannot
///   change state;
/// * the identical-op and equal-tag exact-write shortcuts — two threads
///   issuing the same `create` reach the same state either way, but which
///   thread gets `Ok` and which gets `EEXIST` depends on the order.
///
/// Only commutative merge-merge updates to the same place still commute.
fn explain_sigs_concurrent(sa: &EffectSig, sb: &EffectSig) -> Independence {
    explain_sigs_overlaps(sa, sb, false)
}

/// Shared overlap scan behind [`explain_sigs`] / [`explain_sigs_concurrent`]
/// — `outcome_blind` selects the sequential (state-only) exceptions.
fn explain_sigs_overlaps(sa: &EffectSig, sb: &EffectSig, outcome_blind: bool) -> Independence {
    for (wr, rd) in [(sa, sb), (sb, sa)] {
        for w in &wr.writes {
            for r in &rd.reads {
                if let Some(o) = overlap(&w.place, r) {
                    return Independence::Dependent(Conflict {
                        kind: ConflictKind::WriteRead,
                        place: w.place.to_string(),
                        aliased: o.aliased,
                    });
                }
            }
        }
    }
    for wa in &sa.writes {
        for wb in &sb.writes {
            if let Some(o) = overlap(&wa.place, &wb.place) {
                // Merges commute with merges; exact writes of the same
                // value to the identical cell commute — but only for the
                // sequential relation: concurrently, two threads writing
                // the same value still race for whose *result* reflects
                // the pre-existing cell (create/create → Ok vs EEXIST).
                let commutes = match (wa.kind, wb.kind) {
                    (WriteKind::Merge, WriteKind::Merge) => true,
                    (WriteKind::Exact, WriteKind::Exact) => {
                        outcome_blind && o.identical_cell && wa.tag.is_some() && wa.tag == wb.tag
                    }
                    _ => false,
                };
                if !commutes {
                    return Independence::Dependent(Conflict {
                        kind: ConflictKind::WriteWrite,
                        place: wa.place.to_string(),
                        aliased: o.aliased,
                    });
                }
            }
        }
    }
    Independence::Independent
}

/// Signature-derived independence: `true` iff the footprints of `a` and
/// `b` cannot conflict, in which case executing them in either order from
/// any state reaches the same abstract state.
pub fn independent(a: &FsOp, b: &FsOp, prof: &EffectProfile) -> bool {
    explain(a, b, prof).is_independent()
}

/// Pairwise *concurrency* independence with a dependence witness.
///
/// Stricter than [`explain`]: `a` and `b` are independent only if swapping
/// their order changes neither the reached state **nor either op's own
/// observable result** — the contract a thread-interleaving explorer needs,
/// where each logical thread records the outcome it saw. Notably there is
/// no identical-op shortcut: two threads issuing the same op often race
/// for its result.
pub fn explain_concurrent(a: &FsOp, b: &FsOp, prof: &EffectProfile) -> Independence {
    let sa = signature(a, prof);
    let sb = signature(b, prof);
    if sa.writes_global() || sb.writes_global() {
        return Independence::Dependent(Conflict {
            kind: ConflictKind::Global,
            place: Place::Global.to_string(),
            aliased: false,
        });
    }
    explain_sigs_concurrent(&sa, &sb)
}

/// Concurrency independence predicate; see [`explain_concurrent`].
pub fn independent_concurrent(a: &FsOp, b: &FsOp, prof: &EffectProfile) -> bool {
    explain_concurrent(a, b, prof).is_independent()
}

/// The original hand-written heuristic (formerly inlined in the harness),
/// kept verbatim for comparison, for the `legacy_por_heuristic` escape
/// hatch, and as the baseline the `analyze` sanitizer tests against.
pub fn heuristic_independent(a: &FsOp, b: &FsOp) -> bool {
    // A crash commutes with nothing: it has an empty path footprint but
    // rolls unsynced state back, so reordering it against any mutation
    // changes what survives. Partial-order reduction must never sleep
    // it or use it to sleep others.
    if matches!(a, FsOp::Crash | FsOp::Fsck) || matches!(b, FsOp::Crash | FsOp::Fsck) {
        return false;
    }
    // Read-only operations don't change the hashed state: they commute
    // with everything.
    if !a.is_mutation() || !b.is_mutation() {
        return true;
    }
    // Mutations commute when their path footprints are prefix-disjoint.
    for pa in a.touched_paths() {
        for pb in b.touched_paths() {
            if path::is_same_or_descendant(pa, pb) || path::is_same_or_descendant(pb, pa) {
                return false;
            }
        }
    }
    true
}

/// Precomputed pairwise independence over a fixed op list (the harness's
/// filtered pool): O(1) lookups on the DFS hot path, falling back to
/// on-the-fly derivation for ops outside the list.
#[derive(Debug, Clone)]
pub struct EffectIndex {
    profile: EffectProfile,
    index: HashMap<FsOp, usize>,
    matrix: Vec<bool>,
    /// The concurrency relation (see [`explain_concurrent`]): a strict
    /// subset of `matrix`, used when the two ops run on distinct threads.
    conc: Vec<bool>,
    n: usize,
}

impl EffectIndex {
    /// Builds the matrix for `ops` under `profile`.
    pub fn new(ops: &[FsOp], profile: EffectProfile) -> Self {
        let sigs: Vec<EffectSig> = ops.iter().map(|o| signature(o, &profile)).collect();
        let n = ops.len();
        let mut matrix = vec![false; n * n];
        let mut conc = vec![false; n * n];
        for i in 0..n {
            for j in 0..n {
                let global = sigs[i].writes_global() || sigs[j].writes_global();
                matrix[i * n + j] = if global {
                    false
                } else if ops[i] == ops[j] {
                    true
                } else {
                    explain_sigs(&sigs[i], &sigs[j]).is_independent()
                };
                // No identical-op shortcut concurrently: same op on two
                // threads races for its own result.
                conc[i * n + j] =
                    !global && explain_sigs_concurrent(&sigs[i], &sigs[j]).is_independent();
            }
        }
        let index = ops
            .iter()
            .enumerate()
            .map(|(i, o)| (o.clone(), i))
            .collect();
        EffectIndex {
            profile,
            index,
            matrix,
            conc,
            n,
        }
    }

    /// O(1) pairwise lookup (on-the-fly derivation for unknown ops).
    pub fn independent(&self, a: &FsOp, b: &FsOp) -> bool {
        match (self.index.get(a), self.index.get(b)) {
            (Some(&i), Some(&j)) => self.matrix[i * self.n + j],
            _ => independent(a, b, &self.profile),
        }
    }

    /// O(1) concurrency-independence lookup ([`explain_concurrent`]), for
    /// ops issued by distinct logical threads.
    pub fn independent_concurrent(&self, a: &FsOp, b: &FsOp) -> bool {
        match (self.index.get(a), self.index.get(b)) {
            (Some(&i), Some(&j)) => self.conc[i * self.n + j],
            _ => independent_concurrent(a, b, &self.profile),
        }
    }

    /// The profile the matrix was derived under.
    pub fn profile(&self) -> &EffectProfile {
        &self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;

    fn op_write(path: &str, offset: u64, size: u64) -> FsOp {
        FsOp::WriteFile {
            path: path.into(),
            offset,
            size,
            seed: 1,
        }
    }

    fn plain_profile() -> EffectProfile {
        EffectProfile::default()
    }

    #[test]
    fn crash_is_dependent_on_everything_including_itself() {
        let p = plain_profile();
        let stat = FsOp::Stat { path: "/f0".into() };
        assert!(!independent(&FsOp::Crash, &stat, &p));
        assert!(!independent(&stat, &FsOp::Crash, &p));
        assert!(!independent(&FsOp::Crash, &FsOp::Crash, &p));
    }

    #[test]
    fn disjoint_range_writes_to_same_file_commute() {
        let p = plain_profile();
        let a = op_write("/f0", 0, 10);
        let b = op_write("/f0", 100, 10);
        assert!(independent(&a, &b, &p), "disjoint ranges");
        let c = op_write("/f0", 5, 10);
        assert!(!independent(&a, &c, &p), "overlapping ranges");
    }

    #[test]
    fn truncate_conflicts_with_any_write_to_the_file() {
        let p = plain_profile();
        let t = FsOp::Truncate {
            path: "/f0".into(),
            size: 1,
        };
        assert!(!independent(&t, &op_write("/f0", 100, 10), &p));
        assert!(independent(&t, &op_write("/f1", 0, 10), &p));
    }

    #[test]
    fn chmod_commutes_with_data_write_same_file() {
        let p = plain_profile();
        let chmod = FsOp::Chmod {
            path: "/f0".into(),
            mode: 0o400,
        };
        assert!(independent(&chmod, &op_write("/f0", 0, 10), &p));
        // But not with unlink (node existence read/write collide).
        let unlink = FsOp::Unlink { path: "/f0".into() };
        assert!(!independent(&chmod, &unlink, &p));
    }

    #[test]
    fn same_value_exact_writes_commute() {
        let p = plain_profile();
        let a = FsOp::Chmod {
            path: "/f0".into(),
            mode: 0o644,
        };
        let b = FsOp::Chmod {
            path: "/f0".into(),
            mode: 0o400,
        };
        // Identical op: trivially independent; distinct modes conflict.
        assert!(independent(&a, &a.clone(), &p));
        assert!(!independent(&a, &b, &p));
    }

    #[test]
    fn create_and_mkdir_on_same_path_conflict() {
        let p = plain_profile();
        let c = FsOp::CreateFile {
            path: "/x".into(),
            mode: 0o644,
        };
        let m = FsOp::Mkdir {
            path: "/x".into(),
            mode: 0o644,
        };
        assert!(!independent(&c, &m, &p), "file-vs-dir winner differs");
    }

    #[test]
    fn hardlink_aliasing_makes_cross_path_content_conflict() {
        let pool = vec![FsOp::Hardlink {
            src: "/f0".into(),
            dst: "/f1".into(),
        }];
        let p = EffectProfile::from_pool(&pool);
        let t = FsOp::Truncate {
            path: "/f0".into(),
            size: 1,
        };
        let w = op_write("/f1", 0, 10);
        let verdict = explain(&t, &w, &p);
        match verdict {
            Independence::Dependent(c) => assert!(c.aliased, "alias-mediated: {c:?}"),
            Independence::Independent => panic!("aliased truncate/write must conflict"),
        }
        // The old heuristic misses exactly this case.
        assert!(heuristic_independent(&t, &w));
        // Without the hardlink in the pool the paths cannot alias.
        assert!(independent(&t, &w, &plain_profile()));
    }

    #[test]
    fn rename_subtree_conflicts_with_descendant_ops() {
        let p = plain_profile();
        let r = FsOp::Rename {
            src: "/d0".into(),
            dst: "/d1".into(),
        };
        let w = op_write("/d0/f2", 0, 10);
        assert!(!independent(&r, &w, &p));
        let w2 = op_write("/f0", 0, 10);
        assert!(independent(&r, &w2, &p));
    }

    #[test]
    fn reads_commute_without_kernel_caches() {
        let p = plain_profile();
        let stat = FsOp::Stat { path: "/f0".into() };
        let unlink = FsOp::Unlink { path: "/f0".into() };
        assert!(independent(&stat, &unlink, &p));
    }

    #[test]
    fn cache_profile_makes_same_path_read_depend_on_mutation() {
        let p = plain_profile().with_kernel_caches(true);
        let stat = FsOp::Stat { path: "/f0".into() };
        let unlink = FsOp::Unlink { path: "/f0".into() };
        assert!(!independent(&stat, &unlink, &p), "cache fill vs eviction");
        // Two reads still commute (idempotent fills merge)...
        let read = FsOp::ReadFile {
            path: "/f0".into(),
            offset: 0,
            size: 16,
        };
        assert!(independent(&stat, &read, &p));
        // ...and disjoint paths with no shared parent cache state do too.
        let unlink_other = FsOp::Unlink {
            path: "/d0/f2".into(),
        };
        assert!(independent(&stat, &unlink_other, &p));
    }

    #[test]
    fn getdents_depends_on_entry_mutations_in_that_dir() {
        // State-wise getdents is a pure read (bypass applies); under a
        // cache profile the listing fill conflicts with the mutation.
        let p = plain_profile().with_kernel_caches(true);
        let g = FsOp::Getdents { path: "/d0".into() };
        let c = FsOp::CreateFile {
            path: "/d0/f2".into(),
            mode: 0o644,
        };
        assert!(!independent(&g, &c, &p));
    }

    #[test]
    fn rmdir_depends_on_child_entry_mutations() {
        let p = plain_profile();
        let rm = FsOp::Rmdir { path: "/d0".into() };
        let c = FsOp::CreateFile {
            path: "/d0/f2".into(),
            mode: 0o644,
        };
        assert!(!independent(&rm, &c, &p), "emptiness read vs entry write");
    }

    #[test]
    fn effect_index_matches_direct_derivation() {
        let ops = PoolConfig::small().ops();
        let prof = EffectProfile::from_pool(&ops);
        let idx = EffectIndex::new(&ops, prof.clone());
        for a in &ops {
            for b in &ops {
                assert_eq!(
                    idx.independent(a, b),
                    independent(a, b, &prof),
                    "{a} vs {b}"
                );
            }
        }
        // Unknown ops fall back to derivation.
        let foreign = FsOp::Stat {
            path: "/zzz".into(),
        };
        assert!(idx.independent(&foreign, &ops[0]) == independent(&foreign, &ops[0], &prof));
    }

    #[test]
    fn concurrent_relation_is_a_subset_of_sequential() {
        // Whatever the concurrency relation admits, the sequential one
        // must too: it only drops outcome-blind shortcuts.
        let ops = PoolConfig::medium().ops();
        let prof = EffectProfile::from_pool(&ops);
        let idx = EffectIndex::new(&ops, prof.clone());
        for a in &ops {
            for b in &ops {
                if idx.independent_concurrent(a, b) {
                    assert!(idx.independent(a, b), "{a} vs {b}");
                }
                assert_eq!(
                    idx.independent_concurrent(a, b),
                    independent_concurrent(a, b, &prof),
                    "index vs derivation: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn identical_creates_race_concurrently() {
        // Sequentially o;o is the same sequence either way; concurrently
        // two threads race for who gets Ok and who gets EEXIST.
        let p = plain_profile();
        let c = FsOp::CreateFile {
            path: "/x".into(),
            mode: 0o644,
        };
        assert!(independent(&c, &c.clone(), &p));
        assert!(!independent_concurrent(&c, &c.clone(), &p));
    }

    #[test]
    fn read_vs_same_path_mutation_is_concurrent_dependent() {
        // The pure-read shortcut is outcome-unsound across threads: the
        // stat's own result depends on whether the unlink went first.
        let p = plain_profile();
        let stat = FsOp::Stat { path: "/f0".into() };
        let unlink = FsOp::Unlink { path: "/f0".into() };
        assert!(independent(&stat, &unlink, &p));
        assert!(!independent_concurrent(&stat, &unlink, &p));
        // An overlapping data write is likewise order-visible to a read.
        let r = FsOp::ReadFile {
            path: "/f0".into(),
            offset: 0,
            size: 16,
        };
        assert!(!independent_concurrent(&r, &op_write("/f0", 0, 10), &p));
        // Two pure reads still commute, and so do disjoint footprints.
        assert!(independent_concurrent(&stat, &r, &p));
        assert!(independent_concurrent(&stat, &op_write("/f1", 0, 8), &p));
        assert!(independent_concurrent(
            &op_write("/f0", 0, 8),
            &op_write("/f1", 0, 8),
            &p
        ));
    }

    #[test]
    fn crash_and_fsck_never_commute_concurrently() {
        let p = plain_profile();
        let w = op_write("/f0", 0, 8);
        for global in [FsOp::Crash, FsOp::Fsck] {
            assert!(!independent_concurrent(&global, &w, &p), "{global}");
            assert!(!independent_concurrent(&w, &global, &p), "{global}");
        }
    }

    #[test]
    fn derived_superset_of_heuristic_modulo_aliasing() {
        let ops = PoolConfig::small().ops();
        let prof = EffectProfile::from_pool(&ops);
        for a in &ops {
            for b in &ops {
                if heuristic_independent(a, b) && !independent(a, b, &prof) {
                    match explain(a, b, &prof) {
                        Independence::Dependent(c) => {
                            assert!(
                                c.aliased,
                                "{a} vs {b}: derived stricter without aliasing ({c:?})"
                            );
                        }
                        Independence::Independent => unreachable!(),
                    }
                }
            }
        }
    }

    #[test]
    fn zero_length_write_is_stateless() {
        let p = plain_profile();
        let w0 = op_write("/f0", 0, 0);
        let t = FsOp::Truncate {
            path: "/f0".into(),
            size: 10,
        };
        assert!(independent(&w0, &t, &p));
    }

    #[test]
    fn symlink_does_not_touch_its_target() {
        let p = plain_profile();
        let s = FsOp::Symlink {
            target: "/f0".into(),
            linkpath: "/f1.ln".into(),
        };
        let w = op_write("/f0", 0, 10);
        assert!(independent(&s, &w, &p), "target stored verbatim");
        let u = FsOp::Unlink {
            path: "/f1.ln".into(),
        };
        assert!(!independent(&s, &u, &p));
    }
}
