//! Checked targets: a file system under test plus its state-tracking
//! strategy.
//!
//! MCFS must save and restore *all* of a file system's state (paper §3.1).
//! The strategies here are the paper's attempts, in order of appearance:
//!
//! * [`RemountTarget`] — track only the persistent (device) state and
//!   unmount/remount around each operation so no in-memory state can go
//!   stale (§3.2's workaround; the default for kernel file systems).
//! * [`CheckpointTarget`] — use the file system's own checkpoint/restore
//!   API (§5, VeriFS): no remounts, no device streaming, fastest.
//! * [`VmTarget`] — LightVM-style whole-VM snapshots: universal but slow.
//! * [`CriuTarget`] — CRIU process snapshots: refuses processes holding
//!   device nodes, so it works for Ganesha-like servers but not FUSE.

use std::sync::Arc;

use blockdev::{Clock, DeviceSnapshot};
use mdigest::{Digest128, Md5};
use modelcheck::{CheckpointStoreStats, SpillStore};
use vfs::{DeviceBacked, Errno, FileSystem, FsCapabilities, FsCheckpoint, RepairReport, VfsResult};

use crate::abstraction::{abstract_state, AbstractionConfig, FingerprintStore};
use crate::ckpt_pool::{CheckpointPool, ExternalSnap, FsImage};

/// What one repair pass did, as seen by the harness: the file system's own
/// fix list plus the virtual-time cost of running it. The harness's fsck
/// oracle compares post-repair abstract states across targets and across
/// back-to-back runs (idempotence), so the outcome itself only carries what
/// the target knows locally.
#[derive(Debug, Clone, Default)]
pub struct RepairOutcome {
    /// The file system's repair report.
    pub report: RepairReport,
    /// Virtual time the pass consumed (0 when the target has no clock).
    pub elapsed_ns: u64,
}

/// A file system under test, with uniform state tracking hooks.
///
/// `save_state` returns the approximate size of the saved state in bytes so
/// the checker's memory model can charge it.
pub trait CheckedTarget: Send {
    /// The underlying file-system name.
    fn name(&self) -> String;

    /// The live file system (mounted once [`pre_op`](Self::pre_op) ran).
    fn fs_mut(&mut self) -> &mut dyn FileSystem;

    /// Supported operations.
    fn capabilities(&self) -> FsCapabilities;

    /// The strategy's short name for reports.
    fn strategy(&self) -> &'static str;

    /// Saves the complete state under `key`, returning its size in bytes.
    ///
    /// # Errors
    ///
    /// Propagated file-system/device errors.
    fn save_state(&mut self, key: u64) -> VfsResult<usize>;

    /// Restores the state saved under `key` (which remains saved).
    ///
    /// # Errors
    ///
    /// `ENOENT` for unknown keys; propagated errors otherwise.
    fn load_state(&mut self, key: u64) -> VfsResult<()>;

    /// Drops the state saved under `key`.
    ///
    /// # Errors
    ///
    /// `ENOENT` for unknown keys.
    fn drop_state(&mut self, key: u64) -> VfsResult<()>;

    /// Bounds this target's checkpoint store to `budget` bytes of logical
    /// state; exceeding it evicts least-recently-used unpinned snapshots
    /// (restoring one then fails with `ESTALE`). Default: no store to bound.
    fn set_checkpoint_budget(&mut self, budget: Option<usize>) {
        let _ = budget;
    }

    /// Attaches a disk spill tier to this target's checkpoint store: budget
    /// pressure then demotes chunk-decomposable snapshots to `store` instead
    /// of evicting them (see `CheckpointPool::enable_spill`). Default: no
    /// store, or snapshots the strategy cannot demote — the budget keeps
    /// hard-evicting.
    fn set_checkpoint_spill(&mut self, store: Arc<SpillStore>) {
        let _ = store;
    }

    /// Pins the snapshot under `key` against budget-driven eviction.
    fn pin_state(&mut self, key: u64) {
        let _ = key;
    }

    /// Releases the pin on `key`.
    fn unpin_state(&mut self, key: u64) {
        let _ = key;
    }

    /// Statistics of this target's checkpoint store, if it keeps one.
    fn checkpoint_stats(&self) -> Option<CheckpointStoreStats> {
        None
    }

    /// Hook before each operation (remount strategies mount here).
    ///
    /// # Errors
    ///
    /// Propagated mount errors.
    fn pre_op(&mut self) -> VfsResult<()> {
        Ok(())
    }

    /// Hook after each operation + integrity check (remount strategies
    /// unmount here).
    ///
    /// # Errors
    ///
    /// Propagated unmount errors.
    fn post_op(&mut self) -> VfsResult<()> {
        Ok(())
    }

    /// A hash of the *raw* concrete state, if the strategy can produce one.
    /// Used by the ablation benchmark that shows why raw-state matching
    /// explodes (§3.3).
    fn raw_state_hash(&mut self) -> Option<u128> {
        None
    }

    /// Per-transition state-tracking work. SPIN reads the tracked buffers —
    /// the mmap'ed backend device (paper §4) — after every operation to
    /// build the state vector; strategies that track a device charge that
    /// read stream here. The checkpoint-API strategy's whole point is that
    /// this costs nothing (§5).
    ///
    /// # Errors
    ///
    /// Propagated device errors.
    fn track_state(&mut self) -> VfsResult<()> {
        Ok(())
    }

    /// Invalidates cached abstract-state fingerprints for the paths an
    /// upcoming operation touches. The harness calls this after
    /// [`pre_op`](Self::pre_op) (so the file system is mounted for the
    /// pre-operation hardlink check) and *before* executing the operation.
    /// Default: no-op, for strategies without a cache.
    fn invalidate_fingerprints(&mut self, _touched: &[&str]) {}

    /// Computes the abstract state, reusing this target's fingerprint
    /// cache when it keeps one. Default: full recompute.
    ///
    /// # Errors
    ///
    /// See [`abstract_state`].
    fn cached_abstract_state(&mut self, cfg: &AbstractionConfig) -> VfsResult<Digest128> {
        abstract_state(self.fs_mut(), cfg)
    }

    /// Whether this strategy can emulate a whole-system crash between
    /// operations (see [`crash_remount`](Self::crash_remount)). The harness
    /// only offers the `Crash` pseudo-op when every target supports it.
    fn supports_crash(&self) -> bool {
        false
    }

    /// Emulates a power cut and reboot: in-memory file-system state is lost
    /// without a sync, the device drops its volatile write cache, and the
    /// file system is mounted again so recovery runs. Implementations must
    /// leave the file system mounted and clear any fingerprint cache — every
    /// cached digest describes pre-crash state.
    ///
    /// # Errors
    ///
    /// `ENOSYS` when unsupported; recovery/mount errors otherwise (the
    /// harness reports those as violations — a crashed file system must stay
    /// remountable).
    fn crash_remount(&mut self) -> VfsResult<()> {
        Err(Errno::ENOSYS)
    }

    /// Whether this target's file system has a scan-and-repair fsck (see
    /// [`FileSystem::supports_fsck`]). The harness only offers the `Fsck`
    /// pseudo-op when every target supports it.
    fn supports_fsck(&self) -> bool {
        false
    }

    /// Runs the file system's repair pass. Implementations must restore the
    /// mount state their strategy expects and drop cached fingerprints —
    /// repair may rewrite any metadata.
    ///
    /// # Errors
    ///
    /// `ENOSYS` when unsupported; repair errors otherwise (the harness
    /// reports those as violations — fsck must not fail on any state the
    /// checker can reach).
    fn fsck(&mut self) -> VfsResult<RepairOutcome> {
        Err(Errno::ENOSYS)
    }
}

/// State tracking through the file system's own checkpoint/restore API —
/// the paper's proposal, implemented by VeriFS (and by `FuseMount` wrapping
/// it, where the ioctls travel the FUSE channel).
#[derive(Debug)]
pub struct CheckpointTarget<F> {
    fs: F,
    name: String,
    fingerprints: FingerprintStore,
    /// Eviction policy over the file system's own snapshot pool: the real
    /// storage stays inside `fs`, keyed; this pool only tracks sizes and
    /// decides which keys to discard under budget pressure.
    pool: CheckpointPool<ExternalSnap>,
}

impl<F: FileSystem + FsCheckpoint> CheckpointTarget<F> {
    /// Wraps `fs` (which must support the checkpoint API).
    pub fn new(fs: F) -> Self {
        let name = fs.fs_name().to_string();
        CheckpointTarget {
            fs,
            name,
            fingerprints: FingerprintStore::default(),
            pool: CheckpointPool::new(None),
        }
    }

    /// Consumes the target, returning the file system.
    pub fn into_inner(self) -> F {
        self.fs
    }
}

impl<F: FileSystem + FsCheckpoint + Send> CheckedTarget for CheckpointTarget<F> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn fs_mut(&mut self) -> &mut dyn FileSystem {
        &mut self.fs
    }

    fn capabilities(&self) -> FsCapabilities {
        self.fs.capabilities()
    }

    fn strategy(&self) -> &'static str {
        "checkpoint-api"
    }

    fn pre_op(&mut self) -> VfsResult<()> {
        if !self.fs.is_mounted() {
            self.fs.mount()?;
        }
        Ok(())
    }

    fn save_state(&mut self, key: u64) -> VfsResult<usize> {
        let before = self.fs.snapshot_bytes();
        self.fs.checkpoint(key)?;
        self.fingerprints.save(key);
        let after = self.fs.snapshot_bytes();
        let bytes = if after > before {
            after - before
        } else {
            // Replacement under an existing key: fall back to the average.
            after / self.fs.snapshot_count().max(1)
        };
        for victim in self.pool.insert(key, ExternalSnap { bytes }) {
            let _ = self.fs.discard(victim);
            self.fingerprints.drop_key(victim);
        }
        Ok(bytes)
    }

    fn load_state(&mut self, key: u64) -> VfsResult<()> {
        if self.pool.get(key).is_none() {
            return Err(if self.pool.was_evicted(key) {
                Errno::ESTALE
            } else {
                Errno::ENOENT
            });
        }
        self.fs.restore_keep(key)?;
        self.fingerprints.load(key);
        Ok(())
    }

    fn drop_state(&mut self, key: u64) -> VfsResult<()> {
        if self.pool.remove(key).is_some() {
            self.fs.discard(key)?;
            self.fingerprints.drop_key(key);
            Ok(())
        } else if self.pool.forget_evicted(key) {
            // The budget already dropped the storage; releasing the key is
            // a successful no-op.
            Ok(())
        } else {
            Err(Errno::ENOENT)
        }
    }

    fn set_checkpoint_budget(&mut self, budget: Option<usize>) {
        self.pool.set_budget(budget);
    }

    fn pin_state(&mut self, key: u64) {
        self.pool.pin(key);
    }

    fn unpin_state(&mut self, key: u64) {
        self.pool.unpin(key);
    }

    fn checkpoint_stats(&self) -> Option<CheckpointStoreStats> {
        // Counts and eviction history come from the policy pool; byte
        // accounting from the file system itself, which can see through its
        // copy-on-write sharing.
        let mut stats = self.pool.stats();
        stats.total_bytes = self.fs.snapshot_bytes();
        stats.resident_bytes = self.fs.snapshot_resident_bytes();
        stats.shared_bytes = stats.total_bytes.saturating_sub(stats.resident_bytes);
        Some(stats)
    }

    fn invalidate_fingerprints(&mut self, touched: &[&str]) {
        self.fingerprints.invalidate(&mut self.fs, touched);
    }

    fn cached_abstract_state(&mut self, cfg: &AbstractionConfig) -> VfsResult<Digest128> {
        self.fingerprints.hash(&mut self.fs, cfg)
    }

    fn supports_crash(&self) -> bool {
        true
    }

    fn crash_remount(&mut self) -> VfsResult<()> {
        // The checkpoint-API strategy tracks a RAM-backed user-space file
        // system whose operations are synchronously durable the moment they
        // return — a crash loses nothing. Only caches are invalidated.
        self.fingerprints.clear_live();
        self.pre_op()
    }
}

/// When a [`RemountTarget`] remounts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemountMode {
    /// Unmount/mount around every operation — the paper's default for
    /// kernel file systems: the only way to guarantee cache coherency after
    /// external device restores (§3.2, §4).
    PerOp,
    /// Stay mounted between operations; remount only around state restores.
    /// This is the "without the inter-operation remounts" configuration of
    /// §6 (38–70% faster).
    OnRestore,
    /// Never remount: device restores happen underneath the mounted file
    /// system. **Deliberately unsound** — this is the §3.2 corruption
    /// reproduction mode.
    Never,
}

/// Device-snapshot state tracking with configurable remount policy, for
/// kernel file systems without a checkpoint API.
#[derive(Debug)]
pub struct RemountTarget<F> {
    fs: F,
    name: String,
    mode: RemountMode,
    snapshots: CheckpointPool<DeviceSnapshot>,
    fingerprints: FingerprintStore,
    clock: Option<Clock>,
    /// Fixed CPU overhead per mount or unmount beyond device I/O.
    mount_overhead_ns: u64,
    /// Size-dependent mount/unmount overhead (metadata scanning, cache
    /// population, writeback) per byte of device.
    mount_overhead_ns_per_byte_x1000: u64,
}

impl<F: FileSystem + DeviceBacked> RemountTarget<F> {
    /// Wraps `fs` with the given remount policy.
    pub fn new(fs: F, mode: RemountMode) -> Self {
        let name = fs.fs_name().to_string();
        RemountTarget {
            fs,
            name,
            mode,
            snapshots: CheckpointPool::new(None),
            // No-remount mode deliberately serves stale data (§3.2); the
            // fingerprint cache must not hide that staleness from the hash.
            fingerprints: FingerprintStore::new(mode != RemountMode::Never),
            clock: None,
            mount_overhead_ns: 100_000,
            mount_overhead_ns_per_byte_x1000: 420,
        }
    }

    /// Attaches a clock so mount/unmount CPU overhead is charged.
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// The active remount mode.
    pub fn mode(&self) -> RemountMode {
        self.mode
    }

    fn charge_mount(&mut self) {
        let size = self.fs.device_size_bytes();
        if let Some(c) = &self.clock {
            c.advance_ns(
                self.mount_overhead_ns + size * self.mount_overhead_ns_per_byte_x1000 / 1000,
            );
        }
    }

    fn ensure_unmounted(&mut self) -> VfsResult<()> {
        if self.fs.is_mounted() {
            self.fs.unmount()?;
            self.charge_mount();
        }
        Ok(())
    }

    fn ensure_mounted(&mut self) -> VfsResult<()> {
        if !self.fs.is_mounted() {
            self.fs.mount()?;
            self.charge_mount();
        }
        Ok(())
    }
}

impl<F: FileSystem + DeviceBacked + Send> CheckedTarget for RemountTarget<F> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn fs_mut(&mut self) -> &mut dyn FileSystem {
        &mut self.fs
    }

    fn capabilities(&self) -> FsCapabilities {
        self.fs.capabilities()
    }

    fn strategy(&self) -> &'static str {
        match self.mode {
            RemountMode::PerOp => "remount-per-op",
            RemountMode::OnRestore => "remount-on-restore",
            RemountMode::Never => "no-remount",
        }
    }

    fn save_state(&mut self, key: u64) -> VfsResult<usize> {
        // Flush so the device image is complete, then stream it out (the
        // paper mmaps the backend into SPIN's address space).
        if self.fs.is_mounted() {
            self.fs.sync()?;
        }
        let snap = self.fs.snapshot_device()?;
        let bytes = snap.size_bytes();
        for victim in self.snapshots.insert(key, snap) {
            self.fingerprints.drop_key(victim);
        }
        self.fingerprints.save(key);
        Ok(bytes)
    }

    fn load_state(&mut self, key: u64) -> VfsResult<()> {
        let snap = match self.snapshots.get(key) {
            Some(s) => s.clone(),
            None => {
                return Err(if self.snapshots.was_evicted(key) {
                    Errno::ESTALE
                } else {
                    Errno::ENOENT
                })
            }
        };
        match self.mode {
            RemountMode::PerOp | RemountMode::OnRestore => {
                self.ensure_unmounted()?;
                self.fs.restore_device(&snap)?;
                // PerOp defers the mount to pre_op; OnRestore mounts now.
                if self.mode == RemountMode::OnRestore {
                    self.ensure_mounted()?;
                }
                self.fingerprints.load(key);
                Ok(())
            }
            RemountMode::Never => {
                // Restore underneath the mounted file system: stale caches.
                self.fs.restore_device(&snap)
            }
        }
    }

    fn drop_state(&mut self, key: u64) -> VfsResult<()> {
        if self.snapshots.remove(key).is_some() {
            self.fingerprints.drop_key(key);
            Ok(())
        } else if self.snapshots.forget_evicted(key) {
            Ok(())
        } else {
            Err(Errno::ENOENT)
        }
    }

    fn set_checkpoint_budget(&mut self, budget: Option<usize>) {
        self.snapshots.set_budget(budget);
    }

    fn set_checkpoint_spill(&mut self, store: Arc<SpillStore>) {
        self.snapshots.enable_spill(store);
    }

    fn pin_state(&mut self, key: u64) {
        self.snapshots.pin(key);
    }

    fn unpin_state(&mut self, key: u64) {
        self.snapshots.unpin(key);
    }

    fn checkpoint_stats(&self) -> Option<CheckpointStoreStats> {
        Some(self.snapshots.stats())
    }

    fn invalidate_fingerprints(&mut self, touched: &[&str]) {
        self.fingerprints.invalidate(&mut self.fs, touched);
    }

    fn cached_abstract_state(&mut self, cfg: &AbstractionConfig) -> VfsResult<Digest128> {
        self.fingerprints.hash(&mut self.fs, cfg)
    }

    fn pre_op(&mut self) -> VfsResult<()> {
        self.ensure_mounted()
    }

    fn post_op(&mut self) -> VfsResult<()> {
        if self.mode == RemountMode::PerOp {
            self.ensure_unmounted()?;
        }
        Ok(())
    }

    fn raw_state_hash(&mut self) -> Option<u128> {
        if self.fs.is_mounted() {
            self.fs.sync().ok()?;
        }
        let snap = self.fs.snapshot_device().ok()?;
        let mut ctx = Md5::new();
        for chunk in snap.chunks() {
            ctx.update(chunk);
        }
        Some(ctx.finalize().as_u128())
    }

    fn track_state(&mut self) -> VfsResult<()> {
        // Stream the device image (the timed device charges the reads);
        // the image itself is discarded — SPIN copies it into its state
        // vector, we only account the cost.
        self.fs.snapshot_device().map(|_| ())
    }

    fn supports_crash(&self) -> bool {
        // No-remount mode deliberately never remounts (§3.2 reproduction);
        // a crash-and-remount inside it would be contradictory.
        self.mode != RemountMode::Never
    }

    fn crash_remount(&mut self) -> VfsResult<()> {
        self.fs.crash_reboot()?;
        self.charge_mount();
        self.fingerprints.clear_live();
        Ok(())
    }

    fn supports_fsck(&self) -> bool {
        self.fs.supports_fsck()
    }

    fn fsck(&mut self) -> VfsResult<RepairOutcome> {
        let start = self.clock.as_ref().map_or(0, Clock::now_ns);
        let report = self.fs.fsck()?;
        // Repair may rewrite any metadata block: every cached digest
        // describes pre-repair state.
        self.fingerprints.clear_live();
        // Leave the volume mounted — like `crash_remount`, the caller's
        // op loop hashes the repaired state next and `post_op` restores
        // the per-op unmount afterwards.
        self.ensure_mounted()?;
        let elapsed_ns = self.clock.as_ref().map_or(0, Clock::now_ns) - start;
        Ok(RepairOutcome { report, elapsed_ns })
    }
}

/// LightVM-style whole-VM snapshotting: always correct (the VM encloses the
/// kernel caches too), but 30 ms + 20 ms of virtual time per
/// checkpoint/restore pair — the paper measured 20–30 ops/s.
#[derive(Debug)]
pub struct VmTarget<F> {
    fs: F,
    name: String,
    images: CheckpointPool<FsImage<F>>,
    fingerprints: FingerprintStore,
    clock: Clock,
    state_bytes: usize,
    /// LightVM checkpoint latency.
    pub checkpoint_ms: u64,
    /// LightVM restore latency.
    pub restore_ms: u64,
}

impl<F: FileSystem + Clone> VmTarget<F> {
    /// Wraps `fs`; `state_bytes` approximates the VM image size for the
    /// memory model.
    pub fn new(fs: F, clock: Clock, state_bytes: usize) -> Self {
        let name = fs.fs_name().to_string();
        VmTarget {
            fs,
            name,
            images: CheckpointPool::new(None),
            fingerprints: FingerprintStore::default(),
            clock,
            state_bytes,
            checkpoint_ms: 30,
            restore_ms: 20,
        }
    }
}

impl<F: FileSystem + Clone + Send> CheckedTarget for VmTarget<F> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn fs_mut(&mut self) -> &mut dyn FileSystem {
        &mut self.fs
    }

    fn capabilities(&self) -> FsCapabilities {
        self.fs.capabilities()
    }

    fn strategy(&self) -> &'static str {
        "vm-snapshot"
    }

    fn pre_op(&mut self) -> VfsResult<()> {
        if !self.fs.is_mounted() {
            self.fs.mount()?;
        }
        Ok(())
    }

    fn save_state(&mut self, key: u64) -> VfsResult<usize> {
        self.clock.advance_ms(self.checkpoint_ms);
        let image = FsImage {
            fs: self.fs.clone(),
            bytes: self.state_bytes,
        };
        for victim in self.images.insert(key, image) {
            self.fingerprints.drop_key(victim);
        }
        self.fingerprints.save(key);
        Ok(self.state_bytes)
    }

    fn load_state(&mut self, key: u64) -> VfsResult<()> {
        self.clock.advance_ms(self.restore_ms);
        let image = match self.images.get(key) {
            Some(i) => i.fs.clone(),
            None => {
                return Err(if self.images.was_evicted(key) {
                    Errno::ESTALE
                } else {
                    Errno::ENOENT
                })
            }
        };
        self.fs = image;
        self.fingerprints.load(key);
        Ok(())
    }

    fn drop_state(&mut self, key: u64) -> VfsResult<()> {
        if self.images.remove(key).is_some() {
            self.fingerprints.drop_key(key);
            Ok(())
        } else if self.images.forget_evicted(key) {
            Ok(())
        } else {
            Err(Errno::ENOENT)
        }
    }

    fn set_checkpoint_budget(&mut self, budget: Option<usize>) {
        self.images.set_budget(budget);
    }

    fn pin_state(&mut self, key: u64) {
        self.images.pin(key);
    }

    fn unpin_state(&mut self, key: u64) {
        self.images.unpin(key);
    }

    fn checkpoint_stats(&self) -> Option<CheckpointStoreStats> {
        Some(self.images.stats())
    }

    fn invalidate_fingerprints(&mut self, touched: &[&str]) {
        self.fingerprints.invalidate(&mut self.fs, touched);
    }

    fn cached_abstract_state(&mut self, cfg: &AbstractionConfig) -> VfsResult<Digest128> {
        self.fingerprints.hash(&mut self.fs, cfg)
    }
}

/// CRIU-style process snapshotting of a user-space file server.
///
/// Construction takes the device handles the process holds;
/// [`save_state`](CheckedTarget::save_state) fails with `EPERM` when any of
/// them is a character or block device — which is what makes this strategy
/// unusable for FUSE file systems (they hold `/dev/fuse`, paper §5) while a
/// Ganesha-like plain server works.
#[derive(Debug)]
pub struct CriuTarget<F> {
    fs: F,
    name: String,
    handles: Vec<snapshot::ProcessHandle>,
    images: CheckpointPool<FsImage<F>>,
    fingerprints: FingerprintStore,
    clock: Option<Clock>,
    state_bytes: usize,
    /// Dump/restore cost per KiB of image.
    pub ns_per_kib: u64,
}

impl<F: FileSystem + Clone> CriuTarget<F> {
    /// Wraps `fs` running as a process holding `handles`.
    pub fn new(
        fs: F,
        handles: Vec<snapshot::ProcessHandle>,
        clock: Option<Clock>,
        state_bytes: usize,
    ) -> Self {
        let name = fs.fs_name().to_string();
        CriuTarget {
            fs,
            name,
            handles,
            images: CheckpointPool::new(None),
            fingerprints: FingerprintStore::default(),
            clock,
            state_bytes,
            ns_per_kib: 2_000,
        }
    }

    fn charge(&self) {
        if let Some(c) = &self.clock {
            c.advance_ns(self.ns_per_kib * (self.state_bytes as u64).div_ceil(1024));
        }
    }
}

impl<F: FileSystem + Clone + Send> CheckedTarget for CriuTarget<F> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn fs_mut(&mut self) -> &mut dyn FileSystem {
        &mut self.fs
    }

    fn capabilities(&self) -> FsCapabilities {
        self.fs.capabilities()
    }

    fn strategy(&self) -> &'static str {
        "criu-process"
    }

    fn pre_op(&mut self) -> VfsResult<()> {
        if !self.fs.is_mounted() {
            self.fs.mount()?;
        }
        Ok(())
    }

    fn save_state(&mut self, key: u64) -> VfsResult<usize> {
        for h in &self.handles {
            if matches!(
                h,
                snapshot::ProcessHandle::CharDevice(_) | snapshot::ProcessHandle::BlockDevice(_)
            ) {
                // CRIU refuses processes with open device nodes.
                return Err(Errno::EPERM);
            }
        }
        self.charge();
        let image = FsImage {
            fs: self.fs.clone(),
            bytes: self.state_bytes,
        };
        for victim in self.images.insert(key, image) {
            self.fingerprints.drop_key(victim);
        }
        self.fingerprints.save(key);
        Ok(self.state_bytes)
    }

    fn load_state(&mut self, key: u64) -> VfsResult<()> {
        self.charge();
        let image = match self.images.get(key) {
            Some(i) => i.fs.clone(),
            None => {
                return Err(if self.images.was_evicted(key) {
                    Errno::ESTALE
                } else {
                    Errno::ENOENT
                })
            }
        };
        self.fs = image;
        self.fingerprints.load(key);
        Ok(())
    }

    fn drop_state(&mut self, key: u64) -> VfsResult<()> {
        if self.images.remove(key).is_some() {
            self.fingerprints.drop_key(key);
            Ok(())
        } else if self.images.forget_evicted(key) {
            Ok(())
        } else {
            Err(Errno::ENOENT)
        }
    }

    fn set_checkpoint_budget(&mut self, budget: Option<usize>) {
        self.images.set_budget(budget);
    }

    fn pin_state(&mut self, key: u64) {
        self.images.pin(key);
    }

    fn unpin_state(&mut self, key: u64) {
        self.images.unpin(key);
    }

    fn checkpoint_stats(&self) -> Option<CheckpointStoreStats> {
        Some(self.images.stats())
    }

    fn invalidate_fingerprints(&mut self, touched: &[&str]) {
        self.fingerprints.invalidate(&mut self.fs, touched);
    }

    fn cached_abstract_state(&mut self, cfg: &AbstractionConfig) -> VfsResult<Digest128> {
        self.fingerprints.hash(&mut self.fs, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifs::VeriFs;
    use vfs::FileMode;

    fn touch(t: &mut dyn CheckedTarget, path: &str) {
        t.pre_op().unwrap();
        let fd = t.fs_mut().create(path, FileMode::REG_DEFAULT).unwrap();
        t.fs_mut().close(fd).unwrap();
        t.post_op().unwrap();
    }

    fn exists(t: &mut dyn CheckedTarget, path: &str) -> bool {
        t.pre_op().unwrap();
        let r = t.fs_mut().stat(path).is_ok();
        t.post_op().unwrap();
        r
    }

    #[test]
    fn checkpoint_target_roundtrip() {
        let mut fs = VeriFs::v2();
        use vfs::FileSystem;
        fs.mount().unwrap();
        let mut t = CheckpointTarget::new(fs);
        assert_eq!(t.strategy(), "checkpoint-api");
        let bytes = t.save_state(1).unwrap();
        assert!(bytes > 0);
        touch(&mut t, "/f");
        t.load_state(1).unwrap();
        assert!(!exists(&mut t, "/f"));
        // restore keeps the snapshot.
        t.load_state(1).unwrap();
        t.drop_state(1).unwrap();
        assert_eq!(t.drop_state(1), Err(Errno::ENOENT));
    }

    #[test]
    fn remount_per_op_unmounts_between_ops() {
        let fs = fs_ext::ext2_on_ram(256 * 1024).unwrap();
        let mut t = RemountTarget::new(fs, RemountMode::PerOp);
        touch(&mut t, "/f");
        // post_op unmounted it.
        assert!(!t.fs.is_mounted());
        assert!(exists(&mut t, "/f"));
    }

    #[test]
    fn remount_target_restores_cleanly() {
        let fs = fs_ext::ext4_on_ram(256 * 1024).unwrap();
        let mut t = RemountTarget::new(fs, RemountMode::PerOp);
        t.pre_op().unwrap();
        let bytes = t.save_state(5).unwrap();
        assert_eq!(bytes, 256 * 1024, "device image size");
        t.post_op().unwrap();
        touch(&mut t, "/f");
        t.load_state(5).unwrap();
        assert!(!exists(&mut t, "/f"), "restored to the pre-/f state");
    }

    #[test]
    fn no_remount_mode_goes_stale() {
        let fs = fs_ext::ext2_on_ram(256 * 1024).unwrap();
        let mut t = RemountTarget::new(fs, RemountMode::Never);
        t.pre_op().unwrap();
        t.save_state(1).unwrap();
        touch(&mut t, "/f");
        t.load_state(1).unwrap();
        // Stale caches: the file still appears to exist (§3.2).
        assert!(
            exists(&mut t, "/f"),
            "deliberately unsound mode keeps stale cache"
        );
    }

    #[test]
    fn vm_target_roundtrips_and_charges() {
        let clock = Clock::new();
        let mut fs = VeriFs::v1();
        use vfs::FileSystem;
        fs.mount().unwrap();
        let mut t = VmTarget::new(fs, clock.clone(), 1024);
        t.save_state(1).unwrap();
        assert_eq!(clock.now_ns(), 30_000_000);
        touch(&mut t, "/f");
        t.load_state(1).unwrap();
        assert_eq!(clock.now_ns(), 50_000_000);
        assert!(!exists(&mut t, "/f"));
    }

    #[test]
    fn criu_target_refuses_fuse_handles() {
        let mut fs = VeriFs::v1();
        use vfs::FileSystem;
        fs.mount().unwrap();
        let mut t = CriuTarget::new(
            fs,
            vec![snapshot::ProcessHandle::CharDevice("/dev/fuse".into())],
            None,
            1024,
        );
        assert_eq!(t.save_state(1), Err(Errno::EPERM));
    }

    #[test]
    fn criu_target_works_without_device_handles() {
        let mut fs = VeriFs::v1();
        use vfs::FileSystem;
        fs.mount().unwrap();
        let mut t = CriuTarget::new(fs, vec![], None, 1024);
        t.save_state(1).unwrap();
        touch(&mut t, "/f");
        t.load_state(1).unwrap();
        assert!(!exists(&mut t, "/f"));
    }

    #[test]
    fn raw_state_hash_changes_with_any_write() {
        let fs = fs_ext::ext2_on_ram(256 * 1024).unwrap();
        let mut t = RemountTarget::new(fs, RemountMode::OnRestore);
        t.pre_op().unwrap();
        let h1 = t.raw_state_hash().unwrap();
        touch(&mut t, "/f");
        let h2 = t.raw_state_hash().unwrap();
        assert_ne!(h1, h2);
    }
}
