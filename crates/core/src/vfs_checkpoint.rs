//! VFS-level checkpoint/restore for kernel file systems — the paper's
//! primary future-work item (§7): "We are implementing the checkpoint/restore
//! API at the Linux VFS level, which we hope will apply to many Linux kernel
//! file systems", eliminating the mount/remount workaround.
//!
//! [`VfsCheckpointTarget`] gives any device-backed file system those
//! semantics: a checkpoint captures the *complete* state — in-memory caches
//! and the device image together — by cloning the mounted instance, and a
//! restore swaps the clone back in. Caches are coherent by construction
//! (they are part of the captured state), so no remounts are needed and the
//! §3.2 incoherency cannot occur.

use blockdev::Clock;
use mdigest::Digest128;
use modelcheck::CheckpointStoreStats;
use vfs::{DeviceBacked, Errno, FileSystem, FsCapabilities, VfsResult};

use crate::abstraction::{AbstractionConfig, FingerprintStore};
use crate::ckpt_pool::{CheckpointPool, FsImage};
use crate::target::CheckedTarget;

/// Per-MiB cost of capturing/restoring the full state (a memory copy).
const COPY_NS_PER_MIB: u64 = 100_000;

/// State tracking through hypothetical VFS-level checkpoint/restore support
/// (paper §7 future work), applicable to any kernel file system.
#[derive(Debug)]
pub struct VfsCheckpointTarget<F> {
    fs: F,
    name: String,
    images: CheckpointPool<FsImage<F>>,
    fingerprints: FingerprintStore,
    clock: Option<Clock>,
}

impl<F: FileSystem + DeviceBacked + Clone> VfsCheckpointTarget<F> {
    /// Wraps `fs` with VFS-level checkpointing.
    pub fn new(fs: F) -> Self {
        let name = fs.fs_name().to_string();
        VfsCheckpointTarget {
            fs,
            name,
            images: CheckpointPool::new(None),
            fingerprints: FingerprintStore::default(),
            clock: None,
        }
    }

    /// Attaches a clock so state copies charge virtual time.
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = Some(clock);
        self
    }

    fn state_bytes(&self) -> usize {
        // Device image plus an allowance for in-memory caches.
        self.fs.device_size_bytes() as usize + (self.fs.device_size_bytes() / 8) as usize
    }

    fn charge_copy(&self) {
        if let Some(c) = &self.clock {
            c.advance_ns(COPY_NS_PER_MIB * (self.state_bytes() as u64).div_ceil(1 << 20));
        }
    }
}

impl<F: FileSystem + DeviceBacked + Clone + Send> CheckedTarget for VfsCheckpointTarget<F> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn fs_mut(&mut self) -> &mut dyn FileSystem {
        &mut self.fs
    }

    fn capabilities(&self) -> FsCapabilities {
        self.fs.capabilities()
    }

    fn strategy(&self) -> &'static str {
        "vfs-checkpoint"
    }

    fn pre_op(&mut self) -> VfsResult<()> {
        if !self.fs.is_mounted() {
            self.fs.mount()?;
        }
        Ok(())
    }

    fn save_state(&mut self, key: u64) -> VfsResult<usize> {
        self.charge_copy();
        let bytes = self.state_bytes();
        let image = FsImage {
            fs: self.fs.clone(),
            bytes,
        };
        for victim in self.images.insert(key, image) {
            self.fingerprints.drop_key(victim);
        }
        self.fingerprints.save(key);
        Ok(bytes)
    }

    fn load_state(&mut self, key: u64) -> VfsResult<()> {
        self.charge_copy();
        // The whole instance — caches included — is restored, so nothing can
        // go stale. That is the point of VFS-level support.
        let image = match self.images.get(key) {
            Some(i) => i.fs.clone(),
            None => {
                return Err(if self.images.was_evicted(key) {
                    Errno::ESTALE
                } else {
                    Errno::ENOENT
                })
            }
        };
        self.fs = image;
        self.fingerprints.load(key);
        Ok(())
    }

    fn drop_state(&mut self, key: u64) -> VfsResult<()> {
        if self.images.remove(key).is_some() {
            self.fingerprints.drop_key(key);
            Ok(())
        } else if self.images.forget_evicted(key) {
            Ok(())
        } else {
            Err(Errno::ENOENT)
        }
    }

    fn set_checkpoint_budget(&mut self, budget: Option<usize>) {
        self.images.set_budget(budget);
    }

    fn pin_state(&mut self, key: u64) {
        self.images.pin(key);
    }

    fn unpin_state(&mut self, key: u64) {
        self.images.unpin(key);
    }

    fn checkpoint_stats(&self) -> Option<CheckpointStoreStats> {
        Some(self.images.stats())
    }

    fn invalidate_fingerprints(&mut self, touched: &[&str]) {
        self.fingerprints.invalidate(&mut self.fs, touched);
    }

    fn cached_abstract_state(&mut self, cfg: &AbstractionConfig) -> VfsResult<Digest128> {
        self.fingerprints.hash(&mut self.fs, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::FileMode;

    #[test]
    fn vfs_checkpoint_restores_caches_and_disk_together() {
        let fs = fs_ext::ext4_on_ram(256 * 1024).unwrap();
        let mut t = VfsCheckpointTarget::new(fs).with_clock(Clock::new());
        t.pre_op().unwrap();
        let bytes = t.save_state(1).unwrap();
        assert!(bytes >= 256 * 1024);
        let fd = t.fs_mut().create("/after", FileMode::REG_DEFAULT).unwrap();
        t.fs_mut().close(fd).unwrap();
        // No remount anywhere — and the restore is still fully coherent.
        t.load_state(1).unwrap();
        assert_eq!(t.fs_mut().stat("/after").unwrap_err(), Errno::ENOENT);
        assert!(t.fs_mut().is_mounted(), "restore keeps the fs mounted");
        // Restore is repeatable.
        let fd = t.fs_mut().create("/again", FileMode::REG_DEFAULT).unwrap();
        t.fs_mut().close(fd).unwrap();
        t.load_state(1).unwrap();
        assert_eq!(t.fs_mut().stat("/again").unwrap_err(), Errno::ENOENT);
        t.drop_state(1).unwrap();
        assert_eq!(t.load_state(1).unwrap_err(), Errno::ENOENT);
    }

    #[test]
    fn copies_charge_virtual_time() {
        let clock = Clock::new();
        let fs = fs_ext::ext2_on_ram(256 * 1024).unwrap();
        let mut t = VfsCheckpointTarget::new(fs).with_clock(clock.clone());
        t.pre_op().unwrap();
        let before = clock.now_ns();
        t.save_state(1).unwrap();
        assert!(clock.now_ns() > before);
    }

    #[test]
    fn works_in_a_harness_without_remounts() {
        use crate::{Mcfs, McfsConfig};
        use modelcheck::{ApplyOutcome, ModelSystem, StateId};
        let clock = Clock::new();
        let e2 = fs_ext::ext2_on_ram(256 * 1024).unwrap();
        let e4 = fs_ext::ext4_on_ram(256 * 1024).unwrap();
        let targets: Vec<Box<dyn CheckedTarget>> = vec![
            Box::new(VfsCheckpointTarget::new(e2).with_clock(clock.clone())),
            Box::new(VfsCheckpointTarget::new(e4).with_clock(clock.clone())),
        ];
        let mut m = Mcfs::with_clock(targets, McfsConfig::default(), clock).unwrap();
        m.checkpoint(StateId(0)).unwrap();
        let op = crate::FsOp::Mkdir {
            path: "/d0".into(),
            mode: 0o755,
        };
        assert!(matches!(m.apply(&op), ApplyOutcome::Ok));
        let h_after = m.abstract_state();
        m.restore(StateId(0)).unwrap();
        assert_ne!(m.abstract_state(), h_after);
    }
}
