//! The MCFS harness: N file systems driven in lockstep as one model system.
//!
//! Each operation is executed on every checked file system; the integrity
//! check then asserts equality of return values, error codes, file data and
//! metadata (via the abstraction function). Any discrepancy is reported as a
//! violation with the precise operation sequence that led to it (§2).

use std::collections::HashMap;
use std::sync::Arc;

use blockdev::Clock;
use mdigest::Digest128;
use modelcheck::{
    ApplyOutcome, CheckpointStoreStats, CrashStats, MemBudget, ModelSystem, SpillStore, StateId,
    EVICTED_MARKER,
};
use vfs::{Errno, FileMode, OpenFlags, VfsResult};

use crate::abstraction::{abstract_state, AbstractionConfig};
use crate::coverage::Coverage;
use crate::effect::{EffectIndex, EffectProfile};
use crate::pool::{execute_with, FsOp, OpOutcome, PoolConfig};
use crate::target::CheckedTarget;

/// Name of the dummy file written to equalize free space (§3.4); always on
/// the abstraction exception list.
pub const EQUALIZE_DUMMY: &str = ".mcfs_space_dummy";

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct McfsConfig {
    /// Operation/parameter pools.
    pub pool: PoolConfig,
    /// Abstraction-function settings (exception list etc.).
    pub abstraction: AbstractionConfig,
    /// Charge this much CPU time per syscall per file system.
    pub syscall_cpu_ns: u64,
    /// Equalize usable capacity across file systems at start (§3.4).
    pub equalize_free_space: bool,
    /// Cap on the equalization dummy file (protects against pairing a
    /// bounded file system with an effectively unbounded one).
    pub equalize_cap_bytes: u64,
    /// With ≥3 file systems, report the minority as the suspect
    /// (majority-voting, the paper's future work §7).
    pub majority_voting: bool,
    /// Maintain the abstract-state hash incrementally: before each mutation
    /// the harness invalidates every target's cached per-path fingerprints
    /// for the touched paths, and the post-op hash reuses the surviving
    /// digests. **On** by default; turning it off forces a full re-hash
    /// after every operation (the pre-optimization behavior, kept for the
    /// throughput benchmark and as a cross-check).
    pub incremental_fingerprint: bool,
    /// Per-target checkpoint-store budget in logical bytes. When set, each
    /// target evicts least-recently-used unpinned snapshots past the bound;
    /// restoring an evicted checkpoint fails with `ESTALE` and is reported
    /// to explorers as a budget-driven stop, not a fatal error. `None`
    /// (the default) never evicts.
    pub checkpoint_budget_bytes: Option<usize>,
    /// Out-of-core memory budget. When set, the harness opens a spill store
    /// and attaches it to every target's checkpoint pool: budget pressure
    /// then demotes device snapshots to disk (COW-chunk deduplicated)
    /// instead of evicting them, and the page traffic's virtual-time cost is
    /// charged to the run's clock. Explorers read the same budget from
    /// `ExploreConfig::mem_budget` for the visited set and frontier; pass
    /// the one budget to both configs. `None` (the default) keeps the pool
    /// RAM-only.
    pub mem_budget: Option<MemBudget>,
    /// Add a nondeterministic `crash` pseudo-operation to the op pool. A
    /// crash drops every target's in-memory state, power-cuts its device
    /// (unflushed writes vanish), and remounts through the target's recovery
    /// path; the crash oracle then checks each recovered state is
    /// *prefix-consistent* — equal to some state the run passed through
    /// since the last sync point. Requires every target to support crashes
    /// ([`CheckedTarget::supports_crash`](crate::target::CheckedTarget::supports_crash)).
    pub crash_exploration: bool,
    /// Add an `fsck` pseudo-operation to the op pool. Applying it runs
    /// every target's scan-and-repair pass
    /// ([`CheckedTarget::fsck`](crate::target::CheckedTarget::fsck)); the
    /// repair oracle then checks that fsck preserved the POSIX-observable
    /// state (a consistent volume needs no user-visible repairs), that all
    /// targets converged to the same state, and that a second run is a
    /// fixed point (reports clean, changes nothing). Requires every target
    /// to support fsck
    /// ([`CheckedTarget::supports_fsck`](crate::target::CheckedTarget::supports_fsck)).
    pub fsck_exploration: bool,
    /// Delta-debug every violation's trace down to a 1-minimal
    /// counterexample before reporting it ([`crate::shrink`]). Requires a
    /// harness factory ([`Mcfs::set_factory`]) so each candidate replays on
    /// a *fresh* pair; without one the flag is inert. Off by default:
    /// minimization costs replays at violation time.
    pub minimize_violations: bool,
    /// Drive partial-order reduction off the original hand-written
    /// path-prefix heuristic instead of the signature-derived relation
    /// ([`crate::effect`]). Kept for A/B comparison on the benches; the
    /// derived relation is both sounder (hard-link aliasing) and finer
    /// (range-disjoint writes commute). Off by default.
    pub legacy_por_heuristic: bool,
}

impl Default for McfsConfig {
    fn default() -> Self {
        McfsConfig {
            pool: PoolConfig::small(),
            abstraction: AbstractionConfig::default(),
            syscall_cpu_ns: 2_000,
            equalize_free_space: true,
            equalize_cap_bytes: 64 << 20,
            majority_voting: true,
            incremental_fingerprint: true,
            checkpoint_budget_bytes: None,
            mem_budget: None,
            crash_exploration: false,
            fsck_exploration: false,
            minimize_violations: false,
            legacy_por_heuristic: false,
        }
    }
}

/// Statistics of the harness's repair machinery: how many `fsck`
/// pseudo-operations ran and how many individual fixes they applied.
/// Surfaced by [`Mcfs::fsck_stats`] when
/// [`McfsConfig::fsck_exploration`] is on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsckStats {
    /// `fsck` pseudo-operations applied (each runs the repair pass twice:
    /// once to repair, once to prove the fixed point).
    pub fscks: u64,
    /// Individual repairs the first-run passes reported across all
    /// targets (internal fixes — counter rebuilds, quarantined torn log
    /// tails; user-visible changes are violations, not repairs).
    pub repairs_made: u64,
}

/// Builds a fresh, deterministic harness equivalent to the one being
/// checked — the replay-validation factory behind
/// [`McfsConfig::minimize_violations`] (see [`crate::shrink`]).
pub type HarnessFactory = dyn Fn() -> VfsResult<Mcfs> + Send + Sync;

/// The MCFS harness: implements [`ModelSystem`] over N checked targets so
/// any `modelcheck` explorer can drive it.
pub struct Mcfs {
    targets: Vec<Box<dyn CheckedTarget>>,
    cfg: McfsConfig,
    ops: Vec<FsOp>,
    clock: Option<Clock>,
    last_hash: Option<Digest128>,
    coverage: Coverage,
    /// Crash-oracle prefix window: abstract states the run has passed
    /// through since the last sync point (checkpoint/restore resets it).
    /// A crash recovery must land on one of these, or on the pre-crash
    /// state itself.
    prefix_hashes: Vec<u128>,
    /// The prefix window to re-adopt when a checkpoint is restored.
    ckpt_hashes: HashMap<u64, u128>,
    crashes: u64,
    crash_recoveries: u64,
    crash_divergences: u64,
    fscks: u64,
    fsck_repairs: u64,
    /// Builds a fresh equivalent harness; candidate traces from the
    /// minimizer replay against factory products, never against this
    /// (already violated) instance.
    factory: Option<Arc<HarnessFactory>>,
    /// Precomputed signature-derived independence over the filtered pool.
    effects: EffectIndex,
    /// The spill store the targets' checkpoint pools demote to (when
    /// [`McfsConfig::mem_budget`] is set); drained into the virtual clock
    /// after each operation so checkpoint page traffic costs virtual time.
    ckpt_spill: Option<Arc<SpillStore>>,
}

impl std::fmt::Debug for Mcfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self.targets.iter().map(|t| t.name()).collect();
        f.debug_struct("Mcfs")
            .field("targets", &names)
            .field("ops", &self.ops.len())
            .finish()
    }
}

impl Mcfs {
    /// Builds a harness over `targets` (at least two), mounting them,
    /// equalizing free space, and verifying their initial states agree.
    ///
    /// # Errors
    ///
    /// `EINVAL` if fewer than two targets are given or their initial
    /// abstract states already differ; propagated mount errors.
    pub fn new(targets: Vec<Box<dyn CheckedTarget>>, cfg: McfsConfig) -> VfsResult<Self> {
        Mcfs::with_clock_opt(targets, cfg, None)
    }

    /// Like [`new`](Mcfs::new), with a virtual clock for cost accounting.
    ///
    /// # Errors
    ///
    /// See [`new`](Mcfs::new).
    pub fn with_clock(
        targets: Vec<Box<dyn CheckedTarget>>,
        cfg: McfsConfig,
        clock: Clock,
    ) -> VfsResult<Self> {
        Mcfs::with_clock_opt(targets, cfg, Some(clock))
    }

    fn with_clock_opt(
        mut targets: Vec<Box<dyn CheckedTarget>>,
        cfg: McfsConfig,
        clock: Option<Clock>,
    ) -> VfsResult<Self> {
        if targets.len() < 2 {
            return Err(Errno::EINVAL);
        }
        let ckpt_spill = match &cfg.mem_budget {
            Some(budget) => Some(SpillStore::new(budget).map_err(|_| Errno::EIO)?),
            None => None,
        };
        for t in &mut targets {
            t.set_checkpoint_budget(cfg.checkpoint_budget_bytes);
            if let Some(store) = &ckpt_spill {
                t.set_checkpoint_spill(store.clone());
            }
        }
        // Intersect capabilities and generate the bounded op set.
        let mut caps = targets[0].capabilities();
        for t in &targets[1..] {
            caps = caps.intersect(t.capabilities());
        }
        let mut ops: Vec<FsOp> = cfg
            .pool
            .ops()
            .into_iter()
            .filter(|op| op.allowed_by(caps))
            .collect();
        if cfg.crash_exploration {
            // Crash exploration needs every target to survive a crash —
            // device-backed targets via power-cut + recovery mount, RAM
            // targets trivially. Refusing here beats a misleading
            // violation later.
            if !targets.iter().all(|t| t.supports_crash()) {
                return Err(Errno::ENOSYS);
            }
            ops.push(FsOp::Crash);
        }
        if cfg.fsck_exploration {
            // The repair oracle needs a real scan-and-repair pass on every
            // target; a defaulted `ENOSYS` fsck would turn every schedule
            // containing the pseudo-op into a bogus violation.
            if !targets.iter().all(|t| t.supports_fsck()) {
                return Err(Errno::ENOSYS);
            }
            ops.push(FsOp::Fsck);
        }
        // Mount everything.
        for t in &mut targets {
            t.pre_op()?;
        }
        // Derive the POR independence relation from the filtered pool: the
        // alias classes come from the `Hardlink` ops that survived the
        // capability intersection, and targets behind caching kernel
        // layers make cache-filling reads count as kernel-state writes.
        let kernel_caches = targets.iter_mut().any(|t| t.fs_mut().caches_metadata());
        let profile = EffectProfile::from_pool(&ops)
            .with_kernel_caches(kernel_caches)
            .with_atime(cfg.abstraction.include_atime);
        let effects = EffectIndex::new(&ops, profile);
        let mut harness = Mcfs {
            targets,
            cfg,
            ops,
            clock,
            last_hash: None,
            coverage: Coverage::new(),
            prefix_hashes: Vec::new(),
            ckpt_hashes: HashMap::new(),
            crashes: 0,
            crash_recoveries: 0,
            crash_divergences: 0,
            fscks: 0,
            fsck_repairs: 0,
            factory: None,
            effects,
            ckpt_spill,
        };
        if harness.cfg.equalize_free_space {
            harness.equalize()?;
        }
        // The initial states must agree, or every run starts violated.
        let hashes = harness.hash_all()?;
        if hashes.windows(2).any(|w| w[0] != w[1]) {
            return Err(Errno::EINVAL);
        }
        harness.prefix_hashes.push(hashes[0].as_u128());
        for t in &mut harness.targets {
            t.post_op()?;
        }
        Ok(harness)
    }

    /// The capability-filtered operation set.
    pub fn op_pool(&self) -> &[FsOp] {
        &self.ops
    }

    /// The signature-derived independence matrix driving POR (see
    /// [`crate::effect`]).
    pub fn effect_index(&self) -> &EffectIndex {
        &self.effects
    }

    /// Repair-oracle statistics, when [`McfsConfig::fsck_exploration`] is
    /// on (`None` otherwise).
    pub fn fsck_stats(&self) -> Option<FsckStats> {
        self.cfg.fsck_exploration.then_some(FsckStats {
            fscks: self.fscks,
            repairs_made: self.fsck_repairs,
        })
    }

    /// The POSIX-observable abstraction hash alone, without the
    /// opaque-digest fold — what `hash_all` compares across targets and
    /// what the crash oracle's prefix window stores.
    pub fn pure_abstract_state(&mut self) -> u128 {
        if let Some(h) = self.last_hash {
            return h.as_u128();
        }
        // Recompute from the first target (all agree whenever apply
        // succeeded; before the first op this hashes the initial state).
        let _ = self.targets[0].pre_op();
        let cfg = self.cfg.abstraction.clone();
        let h = if self.cfg.incremental_fingerprint {
            self.targets[0].cached_abstract_state(&cfg)
        } else {
            abstract_state(self.targets[0].fs_mut(), &cfg)
        }
        .map(|d| d.as_u128())
        .unwrap_or(u128::MAX);
        let _ = self.targets[0].post_op();
        self.last_hash = None;
        h
    }

    /// XOR-fold of every target's
    /// [`opaque_state_digest`](vfs::FileSystem::opaque_state_digest),
    /// mixed with the target index so identical hidden state on two
    /// targets cannot cancel to zero. Zero when no target reports one.
    fn opaque_digest_fold(&mut self) -> u128 {
        let mut acc = 0u128;
        // mcfs-lint: allow(MC007, target order is fixed at construction; the index is part of the digest domain by design)
        for (i, t) in self.targets.iter_mut().enumerate() {
            if let Some(d) = t.fs_mut().opaque_state_digest() {
                let mut bytes = [0u8; 24];
                bytes[..8].copy_from_slice(&(i as u64).to_le_bytes());
                bytes[8..].copy_from_slice(&d.to_le_bytes());
                acc ^= mdigest::md5(&bytes).as_u128();
            }
        }
        acc
    }

    /// Attaches the replay factory counterexample minimization validates
    /// against. The factory must rebuild a harness equivalent to this one —
    /// same targets, same seeded bugs, same fault plans — deterministically;
    /// [`McfsConfig::minimize_violations`] does nothing without it.
    pub fn set_factory(&mut self, factory: Arc<HarnessFactory>) {
        self.factory = Some(factory);
    }

    /// Builder-style [`set_factory`](Mcfs::set_factory).
    #[must_use]
    pub fn with_factory(mut self, factory: Arc<HarnessFactory>) -> Self {
        self.factory = Some(factory);
        self
    }

    /// Target names, for reports.
    pub fn target_names(&self) -> Vec<String> {
        self.targets.iter().map(|t| t.name()).collect()
    }

    /// Operation/outcome coverage accumulated so far (§7 future work:
    /// coverage tracking while model-checking).
    pub fn coverage(&self) -> &Coverage {
        &self.coverage
    }

    fn charge(&self, ns: u64) {
        if let Some(c) = &self.clock {
            c.advance_ns(ns);
        }
    }

    /// Drains the checkpoint spill store's accumulated page-traffic cost
    /// into the virtual clock (demotions/promotions happened since the last
    /// drain).
    fn charge_ckpt_spill(&self) {
        if let Some(s) = &self.ckpt_spill {
            self.charge(s.take_pending_ns());
        }
    }

    /// The spill store the targets' checkpoint pools demote to, if
    /// [`McfsConfig::mem_budget`] attached one (benchmarks read its
    /// counters).
    pub fn checkpoint_spill_store(&self) -> Option<&Arc<SpillStore>> {
        self.ckpt_spill.as_ref()
    }

    /// Free-space equalization (§3.4): find the smallest available capacity
    /// `S_L`, then on every other file system write `S_n - S_L` zeros into a
    /// dummy file so `write` fills all of them at the same point.
    fn equalize(&mut self) -> VfsResult<()> {
        // Iterate: the dummy file itself consumes metadata (indirect
        // blocks, directory growth), so one round typically leaves a small
        // residual imbalance.
        for _round in 0..8 {
            let mut avails = Vec::with_capacity(self.targets.len());
            for t in &mut self.targets {
                avails.push(t.fs_mut().statfs()?.bytes_avail());
            }
            let lowest = *avails.iter().min().expect("at least two targets");
            if avails
                .iter()
                .all(|&a| a == lowest || a > self.cfg.equalize_cap_bytes)
            {
                break;
            }
            for (t, &avail) in self.targets.iter_mut().zip(&avails) {
                let surplus = avail - lowest;
                // Pairing with an effectively unbounded file system (e.g.
                // VeriFS1): skip; the bounded pools never reach its limit.
                if surplus == 0 || avail > self.cfg.equalize_cap_bytes {
                    continue;
                }
                let fs = t.fs_mut();
                let path = format!("/{EQUALIZE_DUMMY}");
                let fd = fs.open(
                    &path,
                    OpenFlags::write_only().with_create().with_append(),
                    FileMode::new(0o600),
                )?;
                // One write call per round: log-structured file systems
                // rewrite per call, so chunking would be quadratic.
                let zeros = vec![0u8; surplus as usize];
                fs.write(fd, &zeros)?;
                fs.close(fd)?;
            }
        }
        Ok(())
    }

    fn hash_all(&mut self) -> VfsResult<Vec<Digest128>> {
        let cfg = self.cfg.abstraction.clone();
        let incremental = self.cfg.incremental_fingerprint;
        self.targets
            .iter_mut()
            .map(|t| {
                if incremental {
                    t.cached_abstract_state(&cfg)
                } else {
                    abstract_state(t.fs_mut(), &cfg)
                }
            })
            .collect()
    }

    /// Builds a discrepancy message. With ≥3 targets and voting enabled, the
    /// minority is named as the suspect.
    fn describe_discrepancy<T: std::fmt::Debug + PartialEq>(
        &self,
        what: &str,
        op: &FsOp,
        values: &[T],
    ) -> String {
        let mut msg = format!("{what} discrepancy on {op}:");
        for (t, v) in self.targets.iter().zip(values) {
            msg.push_str(&format!(
                "\n  {:<12} [{}] => {:?}",
                t.name(),
                t.strategy(),
                v
            ));
        }
        if self.cfg.majority_voting && values.len() >= 3 {
            // Majority vote: the value held by most targets is "correct".
            let mut best: Option<(usize, usize)> = None; // (index, count)
            for (i, v) in values.iter().enumerate() {
                let count = values.iter().filter(|x| *x == v).count();
                if best.map(|(_, c)| count > c).unwrap_or(true) {
                    best = Some((i, count));
                }
            }
            if let Some((winner, count)) = best {
                if count > values.len() / 2 {
                    let suspects: Vec<String> = self
                        .targets
                        .iter()
                        .zip(values)
                        .filter(|(_, v)| *v != &values[winner])
                        .map(|(t, _)| t.name())
                        .collect();
                    msg.push_str(&format!(
                        "\n  majority vote: {} of {} agree; suspect(s): {}",
                        count,
                        values.len(),
                        suspects.join(", ")
                    ));
                }
            }
        }
        msg
    }

    /// Wraps every violation return out of [`apply`](ModelSystem::apply):
    /// best-effort phase-4 cleanup first, so per-op remount targets are not
    /// left mounted when the explorer stops mid-operation. Without this, a
    /// replay (or any further use of the harness) starts from a different
    /// mount/cache state than exploration saw.
    fn violation(&mut self, msg: String) -> ApplyOutcome {
        for t in &mut self.targets {
            let _ = t.post_op();
        }
        ApplyOutcome::Violation(msg)
    }

    /// Records a post-operation state in the crash-oracle prefix window.
    fn push_prefix(&mut self, hash: u128) {
        if !self.cfg.crash_exploration {
            return;
        }
        if self.prefix_hashes.last() != Some(&hash) {
            self.prefix_hashes.push(hash);
        }
    }

    /// The `crash` pseudo-operation: power-cut every target's device, run
    /// its recovery mount, and check the oracle.
    ///
    /// A recovered state is *prefix-consistent* if it equals some state the
    /// run passed through since the last sync point (targets sync on
    /// checkpoint and, for per-op remount targets, after every operation),
    /// or the pre-crash state itself. Each target must recover to a
    /// prefix-consistent state — anything else (lost synced data, corrupted
    /// recovery, a failed remount) is a violation with the usual replayable
    /// trace. Targets may legally recover to *different* prefix states
    /// (their sync points differ), in which case the branch is pruned: both
    /// behaviors are correct, but lockstep comparison cannot continue.
    fn apply_crash(&mut self) -> ApplyOutcome {
        self.last_hash = None;
        self.crashes += 1;
        for t in &mut self.targets {
            if let Err(e) = t.pre_op() {
                let msg = format!("{}: pre-crash mount failed: {e}", t.name());
                return self.violation(msg);
            }
        }
        // The state being crashed is always a legal recovery point: a file
        // system that persists everything synchronously loses nothing.
        let pre = match self.hash_all() {
            Ok(h) => h,
            Err(e) => {
                let msg = format!("state traversal failed before crash: {e}");
                return self.violation(msg);
            }
        };
        let mut allowed = self.prefix_hashes.clone();
        allowed.push(pre[0].as_u128());
        // Crash + recovery mount on every target.
        for t in &mut self.targets {
            if let Err(e) = t.crash_remount() {
                let msg = format!(
                    "{}: crash recovery failed: {e} (file system not remountable after power cut)",
                    t.name()
                );
                return self.violation(msg);
            }
        }
        self.charge(self.cfg.syscall_cpu_ns * self.targets.len() as u64);
        let recovered = match self.hash_all() {
            Ok(h) => h,
            Err(e) => {
                let msg =
                    format!("state traversal failed after crash recovery: {e} (recovery corrupted the file system?)");
                return self.violation(msg);
            }
        };
        // Oracle: every target individually recovered to an allowed state?
        for (t, h) in self.targets.iter().zip(&recovered) {
            if !allowed.contains(&h.as_u128()) {
                let names: Vec<String> = self.targets.iter().map(|x| x.name()).collect();
                let msg = format!(
                    "crash-consistency violation: {} recovered to a state outside the \
                     prefix window ({} allowed states; targets: {})",
                    t.name(),
                    allowed.len(),
                    names.join(", ")
                );
                return self.violation(msg);
            }
        }
        // All recoveries valid — but lockstep checking needs them equal.
        if recovered.windows(2).any(|w| w[0] != w[1]) {
            self.crash_divergences += 1;
            for t in &mut self.targets {
                let _ = t.post_op();
            }
            return ApplyOutcome::Prune(
                "crash recoveries diverged (each prefix-consistent)".into(),
            );
        }
        self.crash_recoveries += 1;
        // The recovered state is the new sync floor: everything before it
        // in the window is no longer reachable by a later crash.
        self.prefix_hashes.clear();
        self.prefix_hashes.push(recovered[0].as_u128());
        self.last_hash = Some(recovered[0]);
        for t in &mut self.targets {
            if let Err(e) = t.post_op() {
                let msg = format!("{}: post-crash unmount failed: {e}", t.name());
                return self.violation(msg);
            }
        }
        for t in &mut self.targets {
            if let Err(e) = t.track_state() {
                let msg = format!("{}: state tracking failed: {e}", t.name());
                return self.violation(msg);
            }
        }
        ApplyOutcome::Ok
    }

    /// Execute the `fsck` pseudo-operation: run every target's
    /// scan-and-repair pass and check the repair oracle.
    ///
    /// Along any violation-free exploration path the volumes are
    /// consistent, so fsck must be a semantic no-op: the POSIX-observable
    /// state before and after repair is identical on every target (repair
    /// never loses reachable user data), every target converges to the
    /// same state, and a second run is a fixed point — it reports a clean
    /// volume and changes nothing. Internal fixes (counter rebuilds,
    /// quarantined torn log tails after a crash) are allowed on the first
    /// run and counted, but may not survive into the second.
    fn apply_fsck(&mut self) -> ApplyOutcome {
        self.last_hash = None;
        self.fscks += 1;
        for t in &mut self.targets {
            if let Err(e) = t.pre_op() {
                let msg = format!("{}: pre-fsck mount failed: {e}", t.name());
                return self.violation(msg);
            }
        }
        let pre = match self.hash_all() {
            Ok(h) => h,
            Err(e) => {
                let msg = format!("state traversal failed before fsck: {e}");
                return self.violation(msg);
            }
        };
        for t in &mut self.targets {
            match t.fsck() {
                Ok(outcome) => self.fsck_repairs += outcome.report.repairs_made,
                Err(e) => {
                    let msg = format!("{}: fsck failed on a consistent volume: {e}", t.name());
                    return self.violation(msg);
                }
            }
        }
        self.charge(self.cfg.syscall_cpu_ns * self.targets.len() as u64);
        let post = match self.hash_all() {
            Ok(h) => h,
            Err(e) => {
                let msg = format!(
                    "state traversal failed after fsck: {e} (repair corrupted the file system?)"
                );
                return self.violation(msg);
            }
        };
        // Oracle 1: repair preserves the observable state of a consistent
        // volume — per target, so a lost file cannot hide behind lockstep
        // agreement on the loss.
        for (t, (before, after)) in self.targets.iter().zip(pre.iter().zip(&post)) {
            if before != after {
                let msg = format!(
                    "repair-safety violation: fsck changed {}'s observable state on a \
                     consistent volume (reachable data lost or invented)",
                    t.name()
                );
                return self.violation(msg);
            }
        }
        // Oracle 2: all targets converged (implied by oracle 1 when the
        // pre-states agreed, but checked so the message names fsck).
        if post.windows(2).any(|w| w[0] != w[1]) {
            let msg = self.describe_discrepancy("post-fsck abstract-state", &FsOp::Fsck, &post);
            return self.violation(msg);
        }
        // Oracle 3: fsck ∘ fsck ≡ fsck. The second run must find a clean
        // volume and fix nothing.
        for t in &mut self.targets {
            match t.fsck() {
                Ok(outcome) => {
                    if !outcome.report.is_clean() {
                        let msg = format!(
                            "repair-idempotence violation: second fsck on {} still made {} \
                             repair(s): {}",
                            t.name(),
                            outcome.report.repairs_made,
                            outcome.report.fixes.join("; ")
                        );
                        return self.violation(msg);
                    }
                }
                Err(e) => {
                    let msg = format!("{}: second fsck failed: {e}", t.name());
                    return self.violation(msg);
                }
            }
        }
        self.charge(self.cfg.syscall_cpu_ns * self.targets.len() as u64);
        let settled = match self.hash_all() {
            Ok(h) => h,
            Err(e) => {
                let msg = format!("state traversal failed after second fsck: {e}");
                return self.violation(msg);
            }
        };
        if settled != post {
            return self.violation(
                "repair-idempotence violation: second fsck changed the abstract state".into(),
            );
        }
        // fsck writes everything back and commits, so the repaired state is
        // a new sync floor for the crash oracle — a later crash recovering
        // to anything earlier would have lost repaired-and-synced data.
        if self.cfg.crash_exploration {
            self.prefix_hashes.clear();
        }
        self.last_hash = Some(post[0]);
        self.push_prefix(post[0].as_u128());
        for t in &mut self.targets {
            if let Err(e) = t.post_op() {
                let msg = format!("{}: post-fsck unmount failed: {e}", t.name());
                return self.violation(msg);
            }
        }
        for t in &mut self.targets {
            if let Err(e) = t.track_state() {
                let msg = format!("{}: state tracking failed: {e}", t.name());
                return self.violation(msg);
            }
        }
        ApplyOutcome::Ok
    }
}

impl Mcfs {
    /// Re-seeds a **fresh** harness to the state a persisted frontier entry
    /// names, by replaying its op-prefix through the normal
    /// [`ModelSystem::apply`] path (so crash pseudo-ops, fingerprint
    /// invalidation, and lockstep checks all run exactly as they did when
    /// the prefix was first explored — this determinism is what makes
    /// op-prefix frontiers a sound persistence format).
    ///
    /// Returns the number of ops that applied `Ok`. A `Prune` mid-prefix is
    /// tolerated (the entry is stale — e.g. pool bounds changed — and the
    /// caller should drop it); a `Violation` is an error, because a prefix
    /// that was explored violation-free must replay violation-free on an
    /// identically configured harness.
    pub fn reseed_from_prefix(&mut self, prefix: &[FsOp]) -> Result<usize, String> {
        let mut applied = 0usize;
        for (i, op) in prefix.iter().enumerate() {
            match ModelSystem::apply(self, op) {
                ApplyOutcome::Ok => applied += 1,
                ApplyOutcome::Prune(_) => {}
                ApplyOutcome::Violation(msg) => {
                    return Err(format!(
                        "prefix replay violated at op {i} ({}): {msg}",
                        op.name()
                    ));
                }
            }
        }
        Ok(applied)
    }
}

impl ModelSystem for Mcfs {
    type Op = FsOp;

    fn ops(&mut self) -> Vec<FsOp> {
        self.ops.clone()
    }

    fn apply(&mut self, op: &FsOp) -> ApplyOutcome {
        // The crash and fsck pseudo-ops never reach per-target execution:
        // the harness intercepts them and runs their oracles instead.
        if matches!(op, FsOp::Crash) {
            return self.apply_crash();
        }
        if matches!(op, FsOp::Fsck) {
            return self.apply_fsck();
        }
        self.last_hash = None;
        // Phase 0: mount (remount strategies).
        for t in &mut self.targets {
            if let Err(e) = t.pre_op() {
                let msg = format!("{}: pre-op mount failed: {e}", t.name());
                return self.violation(msg);
            }
        }
        // Phase 0.5: drop cached fingerprints for the paths this operation
        // touches. This must happen *before* execution so the invalidation
        // logic can observe pre-operation link counts (hardlink aliasing).
        if self.cfg.incremental_fingerprint && op.is_mutation() {
            let touched = op.touched_paths();
            for t in &mut self.targets {
                t.invalidate_fingerprints(&touched);
            }
        }
        // Phase 1: execute on every file system.
        let exceptions = self.cfg.abstraction.exceptions.clone();
        let sort_entries = self.cfg.abstraction.sort_entries;
        let mut outcomes: Vec<OpOutcome> = Vec::with_capacity(self.targets.len());
        for t in &mut self.targets {
            outcomes.push(execute_with(t.fs_mut(), op, &exceptions, sort_entries));
        }
        self.charge(self.cfg.syscall_cpu_ns * self.targets.len() as u64);
        // Phase 2: integrity check — return values and error codes.
        if outcomes.windows(2).any(|w| w[0] != w[1]) {
            let msg = self.describe_discrepancy("outcome", op, &outcomes);
            return self.violation(msg);
        }
        self.coverage.record(op, &outcomes[0]);
        // Phase 3: integrity check — abstract states (file data + metadata).
        let hashes = match self.hash_all() {
            Ok(h) => h,
            Err(e) => {
                let msg =
                    format!("state traversal failed after {op}: {e} (file system corrupted?)");
                return self.violation(msg);
            }
        };
        if hashes.windows(2).any(|w| w[0] != w[1]) {
            let msg = self.describe_discrepancy("abstract-state", op, &hashes);
            return self.violation(msg);
        }
        self.last_hash = Some(hashes[0]);
        self.push_prefix(hashes[0].as_u128());
        // Phase 4: unmount (remount strategies).
        for t in &mut self.targets {
            if let Err(e) = t.post_op() {
                let msg = format!("{}: post-op unmount failed: {e}", t.name());
                return self.violation(msg);
            }
        }
        // Phase 5: per-transition state tracking (SPIN reading the tracked
        // buffers; free for the checkpoint-API strategy).
        for t in &mut self.targets {
            if let Err(e) = t.track_state() {
                let msg = format!("{}: state tracking failed: {e}", t.name());
                return self.violation(msg);
            }
        }
        ApplyOutcome::Ok
    }

    fn abstract_state(&mut self) -> u128 {
        // Visited-set identity = the POSIX-observable abstraction plus the
        // opaque digests: two states that hash equal but differ in hidden
        // implementation state (e.g. stale bytes beyond EOF that a later
        // hole write exposes) must not be matched away by the explorer.
        // Cross-target comparisons stay on the pure hashes — targets may
        // legitimately differ in hidden state.
        self.pure_abstract_state() ^ self.opaque_digest_fold()
    }

    fn checkpoint(&mut self, id: StateId) -> Result<usize, String> {
        let mut total = 0usize;
        for t in &mut self.targets {
            total += t
                .save_state(id.0)
                .map_err(|e| format!("{}: checkpoint failed: {e}", t.name()))?;
        }
        self.charge_ckpt_spill();
        if self.cfg.crash_exploration {
            // Checkpointing syncs device-backed targets, so this state is a
            // new sync floor: the crash window restarts here, and a restore
            // of this checkpoint re-adopts it. The window stores *pure*
            // hashes (the oracle compares against `hash_all` results), so
            // the opaque-digest fold must stay out of it.
            let h = self.pure_abstract_state();
            self.ckpt_hashes.insert(id.0, h);
            self.prefix_hashes.clear();
            self.prefix_hashes.push(h);
        }
        Ok(total)
    }

    fn restore(&mut self, id: StateId) -> Result<(), String> {
        self.last_hash = None;
        for t in &mut self.targets {
            t.load_state(id.0).map_err(|e| {
                if e == Errno::ESTALE {
                    // Budget-driven eviction, not a malfunction: tag the
                    // message so explorers can tell the two apart.
                    format!("{}: restore failed: {e} {EVICTED_MARKER}", t.name())
                } else {
                    format!("{}: restore failed: {e}", t.name())
                }
            })?;
        }
        if self.cfg.crash_exploration {
            // Back on the checkpointed state: its window applies again. If
            // the record is gone the window starts empty — safe, because
            // the oracle always admits the pre-crash state.
            self.prefix_hashes.clear();
            if let Some(&h) = self.ckpt_hashes.get(&id.0) {
                self.prefix_hashes.push(h);
            }
        }
        self.charge_ckpt_spill();
        Ok(())
    }

    fn release(&mut self, id: StateId) {
        for t in &mut self.targets {
            let _ = t.drop_state(id.0);
        }
    }

    fn pin(&mut self, id: StateId) {
        for t in &mut self.targets {
            t.pin_state(id.0);
        }
    }

    fn unpin(&mut self, id: StateId) {
        for t in &mut self.targets {
            t.unpin_state(id.0);
        }
    }

    fn checkpoint_store_stats(&self) -> Option<CheckpointStoreStats> {
        let mut merged = CheckpointStoreStats::default();
        let mut any = false;
        for t in &self.targets {
            if let Some(s) = t.checkpoint_stats() {
                merged.merge(&s);
                any = true;
            }
        }
        any.then_some(merged)
    }

    fn crash_stats(&self) -> Option<CrashStats> {
        self.cfg.crash_exploration.then_some(CrashStats {
            crashes: self.crashes,
            recoveries: self.crash_recoveries,
            divergent_recoveries: self.crash_divergences,
        })
    }

    fn minimize(
        &mut self,
        trace: &[FsOp],
        message: &str,
    ) -> Option<(Vec<FsOp>, modelcheck::ShrinkStats)> {
        if !self.cfg.minimize_violations {
            return None;
        }
        let factory = self.factory.clone()?;
        crate::shrink::shrink_trace(
            factory.as_ref(),
            trace,
            message,
            &crate::shrink::ShrinkConfig::default(),
        )
        .map(|o| (o.trace, o.stats))
    }

    fn independent(&self, a: &FsOp, b: &FsOp) -> bool {
        if self.cfg.legacy_por_heuristic {
            // The original hand-written path-prefix heuristic, kept for
            // A/B comparison (`crash_explore` reports both).
            return crate::effect::heuristic_independent(a, b);
        }
        self.effects.independent(a, b)
    }
}

/// Replays a recorded operation trace against a fresh harness, reporting the
/// index and message of the first violating operation (the paper highlights
/// how precise traces make bugs easy to reproduce and fix, §6).
///
/// This answers "did *a* violation fire?", not "did *the recorded*
/// violation fire?" — with several seeded bugs a replay can trip a
/// different bug earlier in the trace. Callers confirming a specific
/// counterexample must compare messages: use [`replay_checked`].
pub fn replay(harness: &mut Mcfs, trace: &[FsOp]) -> Option<(usize, String)> {
    for (i, op) in trace.iter().enumerate() {
        match harness.apply(op) {
            ApplyOutcome::Violation(msg) => return Some((i, msg)),
            ApplyOutcome::Ok | ApplyOutcome::Prune(_) => {}
        }
    }
    None
}

/// Outcome of a message-checked replay ([`replay_checked`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// The first violation during replay carried exactly the expected
    /// message; the counterexample is confirmed at this op index.
    Reproduced { index: usize },
    /// A violation fired, but with a different message — a *different* bug
    /// tripped (possibly earlier in the trace). The counterexample is NOT
    /// confirmed; trusting it would misattribute the failure.
    DifferentViolation { index: usize, message: String },
    /// The whole trace replayed without any violation.
    NoViolation,
}

impl ReplayOutcome {
    /// Whether the replay confirmed the expected violation.
    pub fn reproduced(&self) -> bool {
        matches!(self, ReplayOutcome::Reproduced { .. })
    }
}

/// Replays `trace` and checks that the **first** violation to fire carries
/// exactly `expected` — the trustworthy confirmation the shrinker and the
/// crash-consistency tests need. Replay stops at the first violation either
/// way: after one fires the harness states have already diverged, so later
/// outcomes prove nothing.
pub fn replay_checked(harness: &mut Mcfs, trace: &[FsOp], expected: &str) -> ReplayOutcome {
    match replay(harness, trace) {
        Some((index, message)) if message == expected => ReplayOutcome::Reproduced { index },
        Some((index, message)) => ReplayOutcome::DifferentViolation { index, message },
        None => ReplayOutcome::NoViolation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::{CheckpointTarget, RemountMode, RemountTarget};
    use verifs::{BugConfig, VeriFs};
    use vfs::FileSystem;

    fn verifs_pair(bugs_on_second: BugConfig) -> Mcfs {
        let mut a = VeriFs::v2();
        a.mount().unwrap();
        let mut b = VeriFs::v2_with_bugs(bugs_on_second);
        b.mount().unwrap();
        Mcfs::new(
            vec![
                Box::new(CheckpointTarget::new(a)),
                Box::new(CheckpointTarget::new(b)),
            ],
            McfsConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn requires_two_targets() {
        let mut a = VeriFs::v2();
        a.mount().unwrap();
        let r = Mcfs::new(
            vec![Box::new(CheckpointTarget::new(a))],
            McfsConfig::default(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn identical_systems_never_diverge() {
        let mut m = verifs_pair(BugConfig::none());
        for op in m.ops() {
            if let ApplyOutcome::Violation(msg) = m.apply(&op) {
                panic!("false positive on {op}: {msg}")
            }
        }
    }

    #[test]
    fn checkpoint_restore_drives_the_pair() {
        let mut m = verifs_pair(BugConfig::none());
        let h0 = m.abstract_state();
        m.checkpoint(StateId(1)).unwrap();
        let create = FsOp::CreateFile {
            path: "/f0".into(),
            mode: 0o644,
        };
        assert!(matches!(m.apply(&create), ApplyOutcome::Ok));
        assert_ne!(m.abstract_state(), h0);
        m.restore(StateId(1)).unwrap();
        assert_eq!(m.abstract_state(), h0);
        m.release(StateId(1));
    }

    #[test]
    fn truncate_bug_is_detected_as_divergence() {
        let mut m = verifs_pair(BugConfig {
            v1_truncate_no_zero: true,
            ..BugConfig::default()
        });
        // Recreate the bug scenario: write, shrink, expand, compare.
        let script = [
            FsOp::CreateFile {
                path: "/f0".into(),
                mode: 0o644,
            },
            FsOp::WriteFile {
                path: "/f0".into(),
                offset: 0,
                size: 10,
                seed: 1,
            },
            FsOp::Truncate {
                path: "/f0".into(),
                size: 2,
            },
            FsOp::Truncate {
                path: "/f0".into(),
                size: 10,
            },
        ];
        let mut violated = false;
        for op in &script {
            if let ApplyOutcome::Violation(msg) = m.apply(op) {
                assert!(msg.contains("abstract-state"), "{msg}");
                violated = true;
                break;
            }
        }
        assert!(violated, "the truncate bug must be detected");
    }

    #[test]
    fn errno_differences_are_detected() {
        // A VeriFS2 with a tiny inode table vs a default one: creating many
        // files hits ENOSPC on one side only.
        let mut small_cfg = verifs::VeriFsConfig::v2();
        small_cfg.max_inodes = 4;
        let mut a = VeriFs::with_config(small_cfg);
        a.mount().unwrap();
        let mut b = VeriFs::v2();
        b.mount().unwrap();
        let mut m = Mcfs::new(
            vec![
                Box::new(CheckpointTarget::new(a)),
                Box::new(CheckpointTarget::new(b)),
            ],
            McfsConfig {
                equalize_free_space: false,
                ..McfsConfig::default()
            },
        )
        .unwrap();
        let mut violated = false;
        for i in 0..6 {
            let op = FsOp::CreateFile {
                path: format!("/file{i}"),
                mode: 0o644,
            };
            if let ApplyOutcome::Violation(msg) = m.apply(&op) {
                assert!(msg.contains("outcome"), "{msg}");
                assert!(msg.contains("ENOSPC"), "{msg}");
                violated = true;
                break;
            }
        }
        assert!(violated, "inode exhaustion asymmetry must be detected");
    }

    #[test]
    fn ext_pair_with_remount_strategy_explores_cleanly() {
        let e2 = fs_ext::ext2_on_ram(256 * 1024).unwrap();
        let e4 = fs_ext::ext4_on_ram(256 * 1024).unwrap();
        let mut m = Mcfs::new(
            vec![
                Box::new(RemountTarget::new(e2, RemountMode::PerOp)),
                Box::new(RemountTarget::new(e4, RemountMode::PerOp)),
            ],
            McfsConfig::default(),
        )
        .unwrap();
        // lost+found exists only on ext4: the exception list must hide it.
        let getdents = FsOp::Getdents { path: "/".into() };
        assert!(matches!(m.apply(&getdents), ApplyOutcome::Ok));
        // A few mutations and a checkpoint/restore cycle.
        m.checkpoint(StateId(0)).unwrap();
        for op in [
            FsOp::Mkdir {
                path: "/d0".into(),
                mode: 0o755,
            },
            FsOp::CreateFile {
                path: "/d0/f2".into(),
                mode: 0o644,
            },
            FsOp::WriteFile {
                path: "/d0/f2".into(),
                offset: 0,
                size: 100,
                seed: 3,
            },
        ] {
            match m.apply(&op) {
                ApplyOutcome::Ok => {}
                other => panic!("{op}: {other:?}"),
            }
        }
        let h_after = m.abstract_state();
        m.restore(StateId(0)).unwrap();
        assert_ne!(m.abstract_state(), h_after);
    }

    #[test]
    fn capability_intersection_excludes_v1_unsupported_ops() {
        let mut a = VeriFs::v1();
        a.mount().unwrap();
        let mut b = VeriFs::v2();
        b.mount().unwrap();
        let m = Mcfs::new(
            vec![
                Box::new(CheckpointTarget::new(a)),
                Box::new(CheckpointTarget::new(b)),
            ],
            McfsConfig {
                pool: PoolConfig::medium(),
                ..McfsConfig::default()
            },
        )
        .unwrap();
        assert!(m
            .op_pool()
            .iter()
            .all(|op| !matches!(op, FsOp::Rename { .. } | FsOp::Hardlink { .. })));
    }

    #[test]
    fn equalization_makes_enospc_symmetric() {
        // ext2 and ext4 on same-size devices have different usable capacity
        // (journal): without equalization, filling the disk diverges.
        let run = |equalize: bool| -> bool {
            let e2 = fs_ext::ext2_on_ram(128 * 1024).unwrap();
            let e4 = fs_ext::ext4_on_ram(128 * 1024).unwrap();
            let mut m = Mcfs::new(
                vec![
                    Box::new(RemountTarget::new(e2, RemountMode::OnRestore)),
                    Box::new(RemountTarget::new(e4, RemountMode::OnRestore)),
                ],
                McfsConfig {
                    equalize_free_space: equalize,
                    ..McfsConfig::default()
                },
            )
            .unwrap();
            // Write until the smaller one fills.
            let mut create_seen_violation = false;
            'outer: for i in 0..40 {
                let ops = [
                    FsOp::CreateFile {
                        path: format!("/fill{i}"),
                        mode: 0o644,
                    },
                    FsOp::WriteFile {
                        path: format!("/fill{i}"),
                        offset: 0,
                        size: 4096,
                        seed: 1,
                    },
                ];
                for op in ops {
                    if let ApplyOutcome::Violation(_) = m.apply(&op) {
                        create_seen_violation = true;
                        break 'outer;
                    }
                }
            }
            create_seen_violation
        };
        assert!(run(false), "without equalization, ENOSPC diverges");
        assert!(!run(true), "equalization removes the false positive");
    }

    #[test]
    fn majority_voting_names_the_suspect() {
        let mut a = VeriFs::v2();
        a.mount().unwrap();
        let mut b = VeriFs::v2();
        b.mount().unwrap();
        let mut c = VeriFs::v2_with_bugs(BugConfig {
            v2_size_only_on_capacity_growth: true,
            ..BugConfig::default()
        });
        c.mount().unwrap();
        let mut m = Mcfs::new(
            vec![
                Box::new(CheckpointTarget::new(a)),
                Box::new(CheckpointTarget::new(b)),
                Box::new(CheckpointTarget::new(c)),
            ],
            McfsConfig::default(),
        )
        .unwrap();
        // Trigger bug 4: create (capacity grows), append within capacity.
        let script = [
            FsOp::CreateFile {
                path: "/f0".into(),
                mode: 0o644,
            },
            FsOp::WriteFile {
                path: "/f0".into(),
                offset: 0,
                size: 10,
                seed: 1,
            },
            FsOp::WriteFile {
                path: "/f0".into(),
                offset: 10,
                size: 10,
                seed: 2,
            },
        ];
        let mut caught = None;
        for op in &script {
            if let ApplyOutcome::Violation(msg) = m.apply(op) {
                caught = Some(msg);
                break;
            }
        }
        let msg = caught.expect("bug 4 must diverge");
        assert!(msg.contains("majority vote"), "{msg}");
        assert!(msg.contains("suspect"), "{msg}");
    }

    #[test]
    fn incremental_and_full_hashing_agree_across_a_run() {
        // The tentpole cross-check at the harness level: the incremental
        // fingerprint path and a full per-op rehash must report identical
        // abstract states through mutations, hardlinks, renames, and a
        // checkpoint/restore round-trip.
        let script = [
            FsOp::Mkdir {
                path: "/d0".into(),
                mode: 0o755,
            },
            FsOp::CreateFile {
                path: "/d0/f1".into(),
                mode: 0o644,
            },
            FsOp::WriteFile {
                path: "/d0/f1".into(),
                offset: 0,
                size: 100,
                seed: 7,
            },
            FsOp::Hardlink {
                src: "/d0/f1".into(),
                dst: "/alias".into(),
            },
            FsOp::WriteFile {
                path: "/alias".into(),
                offset: 50,
                size: 20,
                seed: 9,
            },
            FsOp::Rename {
                src: "/d0".into(),
                dst: "/d1".into(),
            },
            FsOp::Truncate {
                path: "/alias".into(),
                size: 10,
            },
            FsOp::Unlink {
                path: "/d1/f1".into(),
            },
        ];
        let run = |incremental: bool| -> Vec<u128> {
            let mut a = VeriFs::v2();
            a.mount().unwrap();
            let mut b = VeriFs::v2();
            b.mount().unwrap();
            let mut m = Mcfs::new(
                vec![
                    Box::new(CheckpointTarget::new(a)),
                    Box::new(CheckpointTarget::new(b)),
                ],
                McfsConfig {
                    incremental_fingerprint: incremental,
                    ..McfsConfig::default()
                },
            )
            .unwrap();
            let mut hashes = vec![m.abstract_state()];
            m.checkpoint(StateId(42)).unwrap();
            for op in &script {
                assert!(matches!(m.apply(op), ApplyOutcome::Ok), "{op}");
                hashes.push(m.abstract_state());
            }
            m.restore(StateId(42)).unwrap();
            hashes.push(m.abstract_state());
            m.release(StateId(42));
            hashes
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn crash_op_joins_the_pool_only_when_enabled() {
        let m = verifs_pair(BugConfig::none());
        assert!(!m.op_pool().contains(&FsOp::Crash));
        let mut a = VeriFs::v2();
        a.mount().unwrap();
        let mut b = VeriFs::v2();
        b.mount().unwrap();
        let m = Mcfs::new(
            vec![
                Box::new(CheckpointTarget::new(a)),
                Box::new(CheckpointTarget::new(b)),
            ],
            McfsConfig {
                crash_exploration: true,
                ..McfsConfig::default()
            },
        )
        .unwrap();
        assert!(m.op_pool().contains(&FsOp::Crash));
    }

    #[test]
    fn crash_exploration_requires_crash_capable_targets() {
        let e2 = fs_ext::ext2_on_ram(256 * 1024).unwrap();
        let e4 = fs_ext::ext4_on_ram(256 * 1024).unwrap();
        let r = Mcfs::new(
            vec![
                Box::new(RemountTarget::new(e2, RemountMode::Never)),
                Box::new(RemountTarget::new(e4, RemountMode::Never)),
            ],
            McfsConfig {
                crash_exploration: true,
                ..McfsConfig::default()
            },
        );
        assert_eq!(r.err(), Some(Errno::ENOSYS));
    }

    #[test]
    fn identical_verifs_pair_survives_crashes() {
        let mut a = VeriFs::v2();
        a.mount().unwrap();
        let mut b = VeriFs::v2();
        b.mount().unwrap();
        let mut m = Mcfs::new(
            vec![
                Box::new(CheckpointTarget::new(a)),
                Box::new(CheckpointTarget::new(b)),
            ],
            McfsConfig {
                crash_exploration: true,
                ..McfsConfig::default()
            },
        )
        .unwrap();
        let script = [
            FsOp::CreateFile {
                path: "/f0".into(),
                mode: 0o644,
            },
            FsOp::Crash,
            FsOp::WriteFile {
                path: "/f0".into(),
                offset: 0,
                size: 10,
                seed: 1,
            },
            FsOp::Crash,
        ];
        for op in &script {
            assert!(matches!(m.apply(op), ApplyOutcome::Ok), "{op}");
        }
        let stats = m.crash_stats().expect("crash stats enabled");
        assert_eq!(stats.crashes, 2);
        assert_eq!(stats.recoveries, 2);
        assert_eq!(stats.divergent_recoveries, 0);
    }

    #[test]
    fn ext_pair_recovers_every_synced_op_across_a_crash() {
        // Per-op remount syncs after every operation, so a crash must lose
        // nothing: the recovered state equals the pre-crash state.
        let e2 = fs_ext::ext2_on_ram(256 * 1024).unwrap();
        let e4 = fs_ext::ext4_on_ram(256 * 1024).unwrap();
        let mut m = Mcfs::new(
            vec![
                Box::new(RemountTarget::new(e2, RemountMode::PerOp)),
                Box::new(RemountTarget::new(e4, RemountMode::PerOp)),
            ],
            McfsConfig {
                crash_exploration: true,
                ..McfsConfig::default()
            },
        )
        .unwrap();
        for op in [
            FsOp::Mkdir {
                path: "/d0".into(),
                mode: 0o755,
            },
            FsOp::CreateFile {
                path: "/d0/f1".into(),
                mode: 0o644,
            },
            FsOp::WriteFile {
                path: "/d0/f1".into(),
                offset: 0,
                size: 512,
                seed: 7,
            },
        ] {
            assert!(matches!(m.apply(&op), ApplyOutcome::Ok), "{op}");
        }
        let before = m.abstract_state();
        assert!(matches!(m.apply(&FsOp::Crash), ApplyOutcome::Ok));
        assert_eq!(m.abstract_state(), before, "synced ops must survive");
        let stats = m.crash_stats().unwrap();
        assert_eq!((stats.crashes, stats.recoveries), (1, 1));
    }

    #[test]
    fn fsck_op_joins_the_pool_only_when_supported() {
        let m = verifs_pair(BugConfig::none());
        assert!(!m.op_pool().contains(&FsOp::Fsck));
        assert!(m.fsck_stats().is_none());
        // VeriFS has no on-disk layout to repair.
        let mut a = VeriFs::v2();
        a.mount().unwrap();
        let mut b = VeriFs::v2();
        b.mount().unwrap();
        let r = Mcfs::new(
            vec![
                Box::new(CheckpointTarget::new(a)),
                Box::new(CheckpointTarget::new(b)),
            ],
            McfsConfig {
                fsck_exploration: true,
                ..McfsConfig::default()
            },
        );
        assert_eq!(r.err(), Some(Errno::ENOSYS));
    }

    #[test]
    fn ext_pair_explores_fsck_as_a_noop_on_consistent_volumes() {
        let e2 = fs_ext::ext2_on_ram(256 * 1024).unwrap();
        let e4 = fs_ext::ext4_on_ram(256 * 1024).unwrap();
        let mut m = Mcfs::new(
            vec![
                Box::new(RemountTarget::new(e2, RemountMode::Never)),
                Box::new(RemountTarget::new(e4, RemountMode::Never)),
            ],
            McfsConfig {
                fsck_exploration: true,
                ..McfsConfig::default()
            },
        )
        .unwrap();
        assert!(m.op_pool().contains(&FsOp::Fsck));
        for op in [
            FsOp::Mkdir {
                path: "/d0".into(),
                mode: 0o755,
            },
            FsOp::CreateFile {
                path: "/d0/f1".into(),
                mode: 0o644,
            },
            FsOp::WriteFile {
                path: "/d0/f1".into(),
                offset: 0,
                size: 512,
                seed: 7,
            },
        ] {
            assert!(matches!(m.apply(&op), ApplyOutcome::Ok), "{op}");
        }
        let before = m.abstract_state();
        assert!(matches!(m.apply(&FsOp::Fsck), ApplyOutcome::Ok));
        assert_eq!(m.abstract_state(), before, "fsck must preserve the state");
        // fsck mid-schedule must not wedge the run.
        assert!(matches!(
            m.apply(&FsOp::Unlink {
                path: "/d0/f1".into()
            }),
            ApplyOutcome::Ok
        ));
        let stats = m.fsck_stats().expect("fsck stats enabled");
        assert_eq!(stats.fscks, 1);
    }

    #[test]
    fn ext_jffs2_pair_survives_fsck_and_crash_interleaving() {
        let e2 = fs_ext::ext2_on_ram(256 * 1024).unwrap();
        let j = fs_jffs2::jffs2_on_mtdram(16 * 1024, 16).unwrap();
        let mut m = Mcfs::new(
            vec![
                Box::new(RemountTarget::new(e2, RemountMode::PerOp)),
                Box::new(RemountTarget::new(j, RemountMode::PerOp)),
            ],
            McfsConfig {
                crash_exploration: true,
                fsck_exploration: true,
                ..McfsConfig::default()
            },
        )
        .unwrap();
        let script = [
            FsOp::CreateFile {
                path: "/f0".into(),
                mode: 0o644,
            },
            FsOp::Fsck,
            FsOp::WriteFile {
                path: "/f0".into(),
                offset: 0,
                size: 64,
                seed: 3,
            },
            FsOp::Crash,
            FsOp::Fsck,
        ];
        for op in &script {
            let out = m.apply(op);
            assert!(matches!(out, ApplyOutcome::Ok), "{op}: {out:?}");
        }
        let stats = m.fsck_stats().unwrap();
        assert_eq!(stats.fscks, 2);
        assert_eq!(m.crash_stats().unwrap().crashes, 1);
    }

    #[test]
    fn violations_leave_per_op_targets_unmounted() {
        // Regression: every violation return must still run phase-4
        // cleanup, or per-op remount targets stay mounted and a subsequent
        // replay diverges from what exploration observed.
        let small = fs_ext::ext2_on_ram(128 * 1024).unwrap();
        let big = fs_ext::ext2_on_ram(512 * 1024).unwrap();
        let mut m = Mcfs::new(
            vec![
                Box::new(RemountTarget::new(small, RemountMode::PerOp)),
                Box::new(RemountTarget::new(big, RemountMode::PerOp)),
            ],
            McfsConfig {
                equalize_free_space: false,
                ..McfsConfig::default()
            },
        )
        .unwrap();
        let mut violated = false;
        for i in 0..40 {
            let ops = [
                FsOp::CreateFile {
                    path: format!("/fill{i}"),
                    mode: 0o644,
                },
                FsOp::WriteFile {
                    path: format!("/fill{i}"),
                    offset: 0,
                    size: 4096,
                    seed: 1,
                },
            ];
            for op in ops {
                if let ApplyOutcome::Violation(_) = m.apply(&op) {
                    violated = true;
                    break;
                }
            }
            if violated {
                break;
            }
        }
        assert!(violated, "capacity asymmetry must diverge");
        for t in &mut m.targets {
            assert!(
                !t.fs_mut().is_mounted(),
                "{}: left mounted after a violation",
                t.name()
            );
        }
    }

    #[test]
    fn replay_reproduces_recorded_traces() {
        let mut m = verifs_pair(BugConfig {
            v2_hole_no_zero: true,
            ..BugConfig::default()
        });
        let trace = vec![
            FsOp::CreateFile {
                path: "/f0".into(),
                mode: 0o644,
            },
            FsOp::WriteFile {
                path: "/f0".into(),
                offset: 0,
                size: 40,
                seed: 1,
            },
            FsOp::Truncate {
                path: "/f0".into(),
                size: 1,
            },
            FsOp::WriteFile {
                path: "/f0".into(),
                offset: 30,
                size: 4,
                seed: 2,
            },
        ];
        let hit = replay(&mut m, &trace);
        assert!(hit.is_some(), "the hole bug must reproduce on replay");
        let (idx, msg) = hit.unwrap();
        assert_eq!(idx, 3, "divergence at the hole-creating write");
        assert!(msg.contains("discrepancy"));
    }

    /// Regression for the trusting-replay bug: with a second seeded bug in
    /// the replay pair, the naive `replay` trips that *other* bug earlier in
    /// the trace and "confirms" the counterexample anyway. `replay_checked`
    /// compares messages and refuses.
    #[test]
    fn replay_checked_rejects_a_different_bug() {
        // The recorded trace: three ops exercising append-within-capacity
        // on /f1 (harmless for the hole bug), then the 4-op hole pattern
        // on /f0. Recorded against a hole-bug-only pair.
        let trace = vec![
            FsOp::CreateFile {
                path: "/f1".into(),
                mode: 0o644,
            },
            FsOp::WriteFile {
                path: "/f1".into(),
                offset: 0,
                size: 10,
                seed: 1,
            },
            FsOp::WriteFile {
                path: "/f1".into(),
                offset: 10,
                size: 10,
                seed: 2,
            },
            FsOp::CreateFile {
                path: "/f0".into(),
                mode: 0o644,
            },
            FsOp::WriteFile {
                path: "/f0".into(),
                offset: 0,
                size: 40,
                seed: 1,
            },
            FsOp::Truncate {
                path: "/f0".into(),
                size: 1,
            },
            FsOp::WriteFile {
                path: "/f0".into(),
                offset: 30,
                size: 4,
                seed: 2,
            },
        ];
        let mut recorder = verifs_pair(BugConfig {
            v2_hole_no_zero: true,
            ..BugConfig::default()
        });
        let (idx, msg) = replay(&mut recorder, &trace).expect("hole bug must fire");
        assert_eq!(idx, 6, "hole bug fires at the final write");

        // Replay in an environment that also carries the size bug: a
        // different violation fires earlier, at the /f1 append.
        let both = BugConfig {
            v2_hole_no_zero: true,
            v2_size_only_on_capacity_growth: true,
            ..BugConfig::default()
        };
        let naive = replay(&mut verifs_pair(both), &trace);
        let (naive_idx, naive_msg) = naive.expect("some violation fires");
        assert!(
            naive_idx < idx,
            "the second bug trips earlier ({naive_idx} < {idx}), yet naive \
             replay still reports success"
        );
        assert_ne!(naive_msg, msg, "and with a different diagnosis");

        // The checked replay tells the two apart.
        match replay_checked(&mut verifs_pair(both), &trace, &msg) {
            ReplayOutcome::DifferentViolation { index, message } => {
                assert_eq!(index, naive_idx);
                assert_eq!(message, naive_msg);
            }
            other => panic!("expected DifferentViolation, got {other:?}"),
        }
        // And still confirms against the faithful environment.
        let faithful = BugConfig {
            v2_hole_no_zero: true,
            ..BugConfig::default()
        };
        assert_eq!(
            replay_checked(&mut verifs_pair(faithful), &trace, &msg),
            ReplayOutcome::Reproduced { index: idx }
        );
    }
}
