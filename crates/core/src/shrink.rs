//! Counterexample minimization for [`FsOp`] traces.
//!
//! The file-system half of the delta-debugging minimizer: the generic
//! ddmin engine lives in [`modelcheck::ddmin_mask`]; this module supplies
//! the two hooks that make it sound for MCFS traces.
//!
//! **Dependency repair.** Removing an op subset can break the rest of the
//! trace for reasons that have nothing to do with the bug: a `write` whose
//! `create` vanished now just returns `ENOENT`. [`repair_mask`] re-adds,
//! for every kept op, the last preceding *producer* of each path it
//! consumes (`create`/`mkdir`/`rename`-dst/`hardlink`-dst/`symlink`), to a
//! fixpoint so ancestor directories chain in transitively. `Crash` markers
//! are anchored on the preceding mutation that establishes their
//! crash-window boundary: a kept `Crash` keeps its anchor, so the pair is
//! removed or retained as a unit (the anchor alone may outlive the crash —
//! the dependency is one-directional). Repair is an accelerator, not an
//! oracle: it only ever *re-adds* ops, and every candidate it lets through
//! is still validated by replay.
//!
//! **Same-message acceptance.** A candidate counts as reproducing only if a
//! *fresh* harness — built by the caller-supplied factory, never the live,
//! already-violated instance — replays it to a violation whose first
//! message equals the original exactly ([`replay_checked`]). This is what
//! makes the result trustworthy: a shorter trace that trips a *different*
//! bug (or the same bug with a different diagnosis) is rejected, and if the
//! full original trace does not reproduce at all, minimization refuses to
//! run rather than "minimize" a counterexample it cannot confirm.
//!
//! The result is 1-minimal *modulo repair*: removing any single op (plus
//! whatever repair re-adds for the remainder) either reconstructs the same
//! trace or no longer reproduces the violation.

use std::collections::HashMap;
use std::sync::Arc;

use modelcheck::{apply_mask, ddmin_mask, ShrinkStats};
use verifs::{BugConfig, VeriFs};
use vfs::{FileSystem, VfsResult};

use crate::harness::{replay_checked, HarnessFactory, Mcfs, McfsConfig};
use crate::pool::FsOp;
use crate::target::CheckpointTarget;

/// Minimization bounds.
#[derive(Debug, Clone)]
pub struct ShrinkConfig {
    /// Cap on oracle tests (candidate subtraces offered for replay; repeat
    /// candidates are answered from a cache without a fresh replay). When
    /// the budget runs out the best reproducing trace found so far is
    /// returned — every adopted candidate passed replay, so truncation
    /// never yields a non-reproducing "minimized" trace.
    pub max_candidates: u64,
}

impl Default for ShrinkConfig {
    fn default() -> Self {
        ShrinkConfig {
            max_candidates: 4096,
        }
    }
}

/// A successful minimization.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized trace: a subsequence of the original that reproduces a
    /// violation with the original message on a factory-fresh harness.
    pub trace: Vec<FsOp>,
    /// Work counters.
    pub stats: ShrinkStats,
}

/// The parent directory of `path`, when having one is meaningful (`None`
/// for the root and for the root's direct children — the root always
/// exists, no trace op produces it).
fn parent_of(path: &str) -> Option<&str> {
    let idx = path.rfind('/')?;
    if idx == 0 {
        None
    } else {
        Some(&path[..idx])
    }
}

/// Paths an op *consumes*: objects that must already exist for the op to
/// behave as it did in the original trace.
pub(crate) fn consumed_paths(op: &FsOp) -> Vec<&str> {
    match op {
        FsOp::CreateFile { path, .. } | FsOp::Mkdir { path, .. } => {
            parent_of(path).into_iter().collect()
        }
        FsOp::Symlink { linkpath, .. } => parent_of(linkpath).into_iter().collect(),
        FsOp::WriteFile { path, .. }
        | FsOp::Truncate { path, .. }
        | FsOp::Unlink { path }
        | FsOp::Rmdir { path }
        | FsOp::ReadFile { path, .. }
        | FsOp::Stat { path }
        | FsOp::Getdents { path }
        | FsOp::Chmod { path, .. }
        | FsOp::SetXattr { path, .. }
        | FsOp::RemoveXattr { path, .. }
        | FsOp::Access { path } => vec![path.as_str()],
        FsOp::Rename { src, dst } | FsOp::Hardlink { src, dst } => {
            let mut v = vec![src.as_str()];
            v.extend(parent_of(dst));
            v
        }
        FsOp::Crash | FsOp::Fsck => Vec::new(),
    }
}

/// Whether `op` *produces* `path` (makes it exist).
pub(crate) fn produces(op: &FsOp, path: &str) -> bool {
    match op {
        FsOp::CreateFile { path: p, .. } | FsOp::Mkdir { path: p, .. } => p == path,
        FsOp::Rename { dst, .. } | FsOp::Hardlink { dst, .. } => dst == path,
        FsOp::Symlink { linkpath, .. } => linkpath == path,
        _ => false,
    }
}

/// The index of the last producer of `path` before `at`, if any.
fn producer_before(trace: &[FsOp], at: usize, path: &str) -> Option<usize> {
    (0..at).rev().find(|&j| produces(&trace[j], path))
}

/// The crash-window anchor of a `Crash` at `at`: the nearest preceding
/// mutation, whose post-state establishes the boundary the recovery oracle
/// judged against. (A `Crash` is itself a mutation, so consecutive crashes
/// chain.)
fn crash_anchor(trace: &[FsOp], at: usize) -> Option<usize> {
    (0..at).rev().find(|&j| trace[j].is_mutation())
}

/// Dependency repair: flips removed ops back to *kept* until every kept op
/// has its producers and every kept `Crash` its boundary anchor. Only ever
/// re-adds (never removes), and runs to a fixpoint so chains — `write`
/// needs its `create`, the `create` needs its `mkdir` — close transitively.
pub fn repair_mask(trace: &[FsOp], mask: &mut [bool]) {
    loop {
        let mut changed = false;
        for i in 0..trace.len() {
            if !mask[i] {
                continue;
            }
            if matches!(trace[i], FsOp::Crash) {
                if let Some(j) = crash_anchor(trace, i) {
                    if !mask[j] {
                        mask[j] = true;
                        changed = true;
                    }
                }
                continue;
            }
            for p in consumed_paths(&trace[i]) {
                if let Some(j) = producer_before(trace, i, p) {
                    if !mask[j] {
                        mask[j] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// Minimizes `trace` down to a 1-minimal subsequence that still reproduces
/// a violation with exactly `message` when replayed on a factory-fresh
/// harness.
///
/// Returns `None` when the *full* trace does not reproduce `message` on a
/// fresh harness — the counterexample is not trustworthy (nondeterminism,
/// an unfaithful factory, or a replay tripping a different bug), and
/// "minimizing" it would lie. Every candidate replay builds a brand-new
/// harness via `factory`; repeat candidate masks are answered from a cache.
pub fn shrink_trace(
    factory: &HarnessFactory,
    trace: &[FsOp],
    message: &str,
    cfg: &ShrinkConfig,
) -> Option<ShrinkOutcome> {
    let n = trace.len();
    let mut cache: HashMap<Vec<bool>, bool> = HashMap::new();
    let mut replays = 0u64;
    let mut test = |mask: &[bool]| -> bool {
        if let Some(&hit) = cache.get(mask) {
            return hit;
        }
        let candidate = apply_mask(trace, mask);
        replays += 1;
        let ok = match factory() {
            Ok(mut fresh) => replay_checked(&mut fresh, &candidate, message).reproduced(),
            // A factory that cannot build is a factory that cannot confirm.
            Err(_) => false,
        };
        cache.insert(mask.to_vec(), ok);
        ok
    };

    // Trustworthiness gate: if the original trace doesn't replay to the
    // original message, nothing derived from it can be trusted.
    if !test(&vec![true; n]) {
        return None;
    }

    let mut repair = |mask: &mut Vec<bool>| repair_mask(trace, mask);
    let (mask, tests) = ddmin_mask(n, &mut repair, &mut test, cfg.max_candidates);

    let minimized = apply_mask(trace, &mask);
    Some(ShrinkOutcome {
        stats: ShrinkStats {
            ops_before: n,
            ops_after: minimized.len(),
            candidates_tried: tests + 1, // + the trustworthiness gate
            replays_run: replays,
        },
        trace: minimized,
    })
}

/// A deterministic factory for the canonical buggy-VeriFS pairing: a
/// correct VeriFS2 checked against a VeriFS2 carrying `bugs`. Rebuilding is
/// cheap (two RAM file systems) and bit-identical, which is exactly what
/// candidate replay needs.
pub fn buggy_verifs_factory(bugs: BugConfig, cfg: McfsConfig) -> Arc<HarnessFactory> {
    Arc::new(move || {
        let mut clean = VeriFs::v2();
        clean.mount()?;
        let mut buggy = VeriFs::v2_with_bugs(bugs);
        buggy.mount()?;
        Mcfs::new(
            vec![
                Box::new(CheckpointTarget::new(clean)),
                Box::new(CheckpointTarget::new(buggy)),
            ],
            cfg.clone(),
        )
    })
}

/// Builds the harness to *explore* from `factory`, with the factory
/// attached so violations found during exploration minimize themselves
/// ([`McfsConfig::minimize_violations`]).
pub fn harness_with_factory(factory: Arc<HarnessFactory>) -> VfsResult<Mcfs> {
    Ok((factory)()?.with_factory(factory))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op_create(p: &str) -> FsOp {
        FsOp::CreateFile {
            path: p.into(),
            mode: 0o644,
        }
    }

    fn op_write(p: &str, offset: u64, size: u64, seed: u8) -> FsOp {
        FsOp::WriteFile {
            path: p.into(),
            offset,
            size,
            seed,
        }
    }

    fn op_stat(p: &str) -> FsOp {
        FsOp::Stat { path: p.into() }
    }

    #[test]
    fn parent_of_walks_one_level() {
        assert_eq!(parent_of("/d0/f2"), Some("/d0"));
        assert_eq!(parent_of("/f0"), None);
        assert_eq!(parent_of("/"), None);
    }

    #[test]
    fn repair_readds_producer_chains() {
        let trace = vec![
            FsOp::Mkdir {
                path: "/d0".into(),
                mode: 0o755,
            },
            op_create("/d0/f2"),
            op_stat("/f0"),
            op_write("/d0/f2", 0, 10, 1),
        ];
        // Keep only the write: repair must chain back create and mkdir,
        // but not the unrelated stat.
        let mut mask = vec![false, false, false, true];
        repair_mask(&trace, &mut mask);
        assert_eq!(mask, vec![true, true, false, true]);
    }

    #[test]
    fn repair_uses_the_last_producer() {
        let trace = vec![
            op_create("/f0"),
            FsOp::Unlink { path: "/f0".into() },
            op_create("/f0"),
            op_write("/f0", 0, 10, 1),
        ];
        let mut mask = vec![false, false, false, true];
        repair_mask(&trace, &mut mask);
        assert_eq!(mask, vec![false, false, true, true], "nearest create wins");
    }

    #[test]
    fn repair_pins_rename_sources_and_dst_parents() {
        let trace = vec![
            FsOp::Mkdir {
                path: "/d0".into(),
                mode: 0o755,
            },
            op_create("/f0"),
            FsOp::Rename {
                src: "/f0".into(),
                dst: "/d0/f2".into(),
            },
            op_stat("/d0/f2"),
        ];
        let mut mask = vec![false, false, false, true];
        repair_mask(&trace, &mut mask);
        assert_eq!(
            mask,
            vec![true, true, true, true],
            "stat needs the rename, the rename its source and dst dir"
        );
    }

    #[test]
    fn repair_anchors_kept_crashes_but_not_vice_versa() {
        let trace = vec![
            op_create("/f0"),
            op_stat("/f0"),
            FsOp::Crash,
            op_stat("/f0"),
        ];
        // Crash kept without its anchor mutation: re-added.
        let mut mask = vec![false, false, true, false];
        repair_mask(&trace, &mut mask);
        assert_eq!(mask, vec![true, false, true, false]);
        // Anchor kept without the crash: legal, nothing re-added.
        let mut mask = vec![true, false, false, false];
        repair_mask(&trace, &mut mask);
        assert_eq!(mask, vec![true, false, false, false]);
    }

    #[test]
    fn shrink_refuses_a_trace_that_does_not_reproduce() {
        // Clean factory: no trace violates, so the full-trace gate fails.
        let factory = buggy_verifs_factory(BugConfig::none(), McfsConfig::default());
        let trace = vec![op_create("/f0"), op_write("/f0", 0, 10, 1)];
        let out = shrink_trace(
            factory.as_ref(),
            &trace,
            "some recorded message",
            &ShrinkConfig::default(),
        );
        assert!(out.is_none(), "an unreproducible trace must not minimize");
    }

    #[test]
    fn shrink_minimizes_the_hole_bug_trace() {
        let bugs = BugConfig {
            v2_hole_no_zero: true,
            ..BugConfig::default()
        };
        let factory = buggy_verifs_factory(bugs, McfsConfig::default());
        // The 4-op hole pattern buried under unrelated traffic.
        let trace = vec![
            FsOp::Mkdir {
                path: "/d0".into(),
                mode: 0o755,
            },
            op_create("/f1"),
            op_write("/f1", 0, 8, 3),
            op_create("/f0"),
            op_stat("/f1"),
            op_write("/f0", 0, 40, 1),
            FsOp::Getdents { path: "/".into() },
            FsOp::Truncate {
                path: "/f0".into(),
                size: 1,
            },
            op_stat("/f0"),
            op_write("/f0", 30, 4, 2),
        ];
        let mut recorder = (factory)().unwrap();
        let (idx, msg) = crate::harness::replay(&mut recorder, &trace).expect("bug fires");
        assert_eq!(idx, trace.len() - 1);
        let out = shrink_trace(factory.as_ref(), &trace, &msg, &ShrinkConfig::default())
            .expect("reproducible trace must minimize");
        assert!(
            out.trace.len() < trace.len(),
            "filler ops must be removed: {:?}",
            out.trace
        );
        assert!(out.trace.iter().all(|op| trace.contains(op)));
        assert_eq!(out.stats.ops_before, trace.len());
        assert_eq!(out.stats.ops_after, out.trace.len());
        assert!(out.stats.replays_run >= 1);
        assert!(out.stats.candidates_tried >= out.stats.replays_run);
        // The minimized trace reproduces the identical diagnosis when
        // replayed once more.
        let mut fresh = (factory)().unwrap();
        assert!(replay_checked(&mut fresh, &out.trace, &msg).reproduced());
    }
}
