//! Wire codec for [`FsOp`] traces.
//!
//! Implements [`modelcheck::OpCodec`] so swarm snapshots (visited set +
//! frontier of replayable op-prefixes, `modelcheck::pickle`) can persist
//! harness runs across process restarts. One tag byte per variant followed
//! by the variant's fields; strings are length-prefixed UTF-8 (the pickle
//! module's `put_str`/`ByteReader::str` framing), integers little-endian.
//!
//! The tag assignment is part of the on-disk format: new `FsOp` variants
//! must take fresh tags, and existing tags must never be reused for a
//! different shape — old snapshots have to keep decoding. Unknown tags
//! decode to [`PickleError::Corrupt`], which the loader surfaces instead of
//! misreading the rest of the stream.

use crate::interleave::SchedStep;
use crate::pool::FsOp;
use modelcheck::pickle::put_str;
use modelcheck::{ByteReader, OpCodec, PickleError};

/// Variant tags. Never renumber; append only.
const TAG_CREATE_FILE: u8 = 0;
const TAG_WRITE_FILE: u8 = 1;
const TAG_TRUNCATE: u8 = 2;
const TAG_MKDIR: u8 = 3;
const TAG_RMDIR: u8 = 4;
const TAG_UNLINK: u8 = 5;
const TAG_RENAME: u8 = 6;
const TAG_HARDLINK: u8 = 7;
const TAG_SYMLINK: u8 = 8;
const TAG_READ_FILE: u8 = 9;
const TAG_STAT: u8 = 10;
const TAG_GETDENTS: u8 = 11;
const TAG_CHMOD: u8 = 12;
const TAG_SET_XATTR: u8 = 13;
const TAG_REMOVE_XATTR: u8 = 14;
const TAG_ACCESS: u8 = 15;
const TAG_CRASH: u8 = 16;
const TAG_FSCK: u8 = 17;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u16(r: &mut ByteReader<'_>) -> Result<u16, PickleError> {
    let lo = r.u8()? as u16;
    let hi = r.u8()? as u16;
    Ok(lo | (hi << 8))
}

/// Stateless [`OpCodec`] for [`FsOp`]; pass `&FsOpCodec` wherever the pickle
/// layer wants a codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsOpCodec;

impl OpCodec<FsOp> for FsOpCodec {
    fn encode_op(&self, op: &FsOp, out: &mut Vec<u8>) {
        match op {
            FsOp::CreateFile { path, mode } => {
                out.push(TAG_CREATE_FILE);
                put_str(out, path);
                put_u16(out, *mode);
            }
            FsOp::WriteFile {
                path,
                offset,
                size,
                seed,
            } => {
                out.push(TAG_WRITE_FILE);
                put_str(out, path);
                put_u64(out, *offset);
                put_u64(out, *size);
                out.push(*seed);
            }
            FsOp::Truncate { path, size } => {
                out.push(TAG_TRUNCATE);
                put_str(out, path);
                put_u64(out, *size);
            }
            FsOp::Mkdir { path, mode } => {
                out.push(TAG_MKDIR);
                put_str(out, path);
                put_u16(out, *mode);
            }
            FsOp::Rmdir { path } => {
                out.push(TAG_RMDIR);
                put_str(out, path);
            }
            FsOp::Unlink { path } => {
                out.push(TAG_UNLINK);
                put_str(out, path);
            }
            FsOp::Rename { src, dst } => {
                out.push(TAG_RENAME);
                put_str(out, src);
                put_str(out, dst);
            }
            FsOp::Hardlink { src, dst } => {
                out.push(TAG_HARDLINK);
                put_str(out, src);
                put_str(out, dst);
            }
            FsOp::Symlink { target, linkpath } => {
                out.push(TAG_SYMLINK);
                put_str(out, target);
                put_str(out, linkpath);
            }
            FsOp::ReadFile { path, offset, size } => {
                out.push(TAG_READ_FILE);
                put_str(out, path);
                put_u64(out, *offset);
                put_u64(out, *size);
            }
            FsOp::Stat { path } => {
                out.push(TAG_STAT);
                put_str(out, path);
            }
            FsOp::Getdents { path } => {
                out.push(TAG_GETDENTS);
                put_str(out, path);
            }
            FsOp::Chmod { path, mode } => {
                out.push(TAG_CHMOD);
                put_str(out, path);
                put_u16(out, *mode);
            }
            FsOp::SetXattr { path, name, seed } => {
                out.push(TAG_SET_XATTR);
                put_str(out, path);
                put_str(out, name);
                out.push(*seed);
            }
            FsOp::RemoveXattr { path, name } => {
                out.push(TAG_REMOVE_XATTR);
                put_str(out, path);
                put_str(out, name);
            }
            FsOp::Access { path } => {
                out.push(TAG_ACCESS);
                put_str(out, path);
            }
            FsOp::Crash => out.push(TAG_CRASH),
            FsOp::Fsck => out.push(TAG_FSCK),
        }
    }

    fn decode_op(&self, r: &mut ByteReader<'_>) -> Result<FsOp, PickleError> {
        let tag = r.u8()?;
        Ok(match tag {
            TAG_CREATE_FILE => FsOp::CreateFile {
                path: r.str()?,
                mode: read_u16(r)?,
            },
            TAG_WRITE_FILE => FsOp::WriteFile {
                path: r.str()?,
                offset: r.u64()?,
                size: r.u64()?,
                seed: r.u8()?,
            },
            TAG_TRUNCATE => FsOp::Truncate {
                path: r.str()?,
                size: r.u64()?,
            },
            TAG_MKDIR => FsOp::Mkdir {
                path: r.str()?,
                mode: read_u16(r)?,
            },
            TAG_RMDIR => FsOp::Rmdir { path: r.str()? },
            TAG_UNLINK => FsOp::Unlink { path: r.str()? },
            TAG_RENAME => FsOp::Rename {
                src: r.str()?,
                dst: r.str()?,
            },
            TAG_HARDLINK => FsOp::Hardlink {
                src: r.str()?,
                dst: r.str()?,
            },
            TAG_SYMLINK => FsOp::Symlink {
                target: r.str()?,
                linkpath: r.str()?,
            },
            TAG_READ_FILE => FsOp::ReadFile {
                path: r.str()?,
                offset: r.u64()?,
                size: r.u64()?,
            },
            TAG_STAT => FsOp::Stat { path: r.str()? },
            TAG_GETDENTS => FsOp::Getdents { path: r.str()? },
            TAG_CHMOD => FsOp::Chmod {
                path: r.str()?,
                mode: read_u16(r)?,
            },
            TAG_SET_XATTR => FsOp::SetXattr {
                path: r.str()?,
                name: r.str()?,
                seed: r.u8()?,
            },
            TAG_REMOVE_XATTR => FsOp::RemoveXattr {
                path: r.str()?,
                name: r.str()?,
            },
            TAG_ACCESS => FsOp::Access { path: r.str()? },
            TAG_CRASH => FsOp::Crash,
            TAG_FSCK => FsOp::Fsck,
            other => {
                return Err(PickleError::Corrupt(format!("unknown FsOp tag {other}")));
            }
        })
    }
}

/// Wire codec for interleaved schedules: a [`SchedStep`] is its own tag,
/// the thread id, and the delegated [`FsOpCodec`] encoding of the op. Used
/// by swarm persistence so threaded runs kill-and-resume like sequential
/// ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadedFsOpCodec;

const TAG_SCHED_STEP: u8 = 18;

impl OpCodec<SchedStep> for ThreadedFsOpCodec {
    fn encode_op(&self, step: &SchedStep, out: &mut Vec<u8>) {
        out.push(TAG_SCHED_STEP);
        put_u16(out, step.tid);
        FsOpCodec.encode_op(&step.op, out);
    }

    fn decode_op(&self, r: &mut ByteReader<'_>) -> Result<SchedStep, PickleError> {
        let tag = r.u8()?;
        if tag != TAG_SCHED_STEP {
            return Err(PickleError::Corrupt(format!("unknown SchedStep tag {tag}")));
        }
        let tid = read_u16(r)?;
        let op = FsOpCodec.decode_op(r)?;
        Ok(SchedStep { tid, op })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<FsOp> {
        vec![
            FsOp::CreateFile {
                path: "/f0".into(),
                mode: 0o644,
            },
            FsOp::WriteFile {
                path: "/f0".into(),
                offset: 4096,
                size: 7,
                seed: 0xAB,
            },
            FsOp::Truncate {
                path: "/f0".into(),
                size: u64::MAX,
            },
            FsOp::Mkdir {
                path: "/d0".into(),
                mode: 0o755,
            },
            FsOp::Rmdir { path: "/d0".into() },
            FsOp::Unlink { path: "/f0".into() },
            FsOp::Rename {
                src: "/f0".into(),
                dst: "/d0/f1".into(),
            },
            FsOp::Hardlink {
                src: "/f0".into(),
                dst: "/l0".into(),
            },
            FsOp::Symlink {
                target: "../f0".into(),
                linkpath: "/s0".into(),
            },
            FsOp::ReadFile {
                path: "/f0".into(),
                offset: 0,
                size: 4096,
            },
            FsOp::Stat { path: "/f0".into() },
            FsOp::Getdents { path: "/".into() },
            FsOp::Chmod {
                path: "/f0".into(),
                mode: 0o7777,
            },
            FsOp::SetXattr {
                path: "/f0".into(),
                name: "user.k".into(),
                seed: 3,
            },
            FsOp::RemoveXattr {
                path: "/f0".into(),
                name: "user.k".into(),
            },
            FsOp::Access { path: "/f0".into() },
            FsOp::Crash,
            FsOp::Fsck,
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        let codec = FsOpCodec;
        for op in all_variants() {
            let mut buf = Vec::new();
            codec.encode_op(&op, &mut buf);
            let mut r = ByteReader::new(&buf);
            let back = codec.decode_op(&mut r).expect("decodes");
            assert_eq!(back, op);
            assert_eq!(r.remaining(), 0, "trailing bytes after {op:?}");
        }
    }

    #[test]
    fn concatenated_trace_round_trips() {
        let codec = FsOpCodec;
        let trace = all_variants();
        let mut buf = Vec::new();
        for op in &trace {
            codec.encode_op(op, &mut buf);
        }
        let mut r = ByteReader::new(&buf);
        let back: Vec<FsOp> = (0..trace.len())
            .map(|_| codec.decode_op(&mut r).unwrap())
            .collect();
        assert_eq!(back, trace);
    }

    #[test]
    fn unknown_tag_is_corrupt_not_garbage() {
        let codec = FsOpCodec;
        let buf = [0xFFu8, 0, 0];
        let mut r = ByteReader::new(&buf);
        assert!(matches!(
            codec.decode_op(&mut r),
            Err(PickleError::Corrupt(_))
        ));
    }

    #[test]
    fn non_ascii_paths_survive() {
        let codec = FsOpCodec;
        let op = FsOp::CreateFile {
            path: "/päth/文件".into(),
            mode: 0o600,
        };
        let mut buf = Vec::new();
        codec.encode_op(&op, &mut buf);
        let back = codec.decode_op(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(back, op);
    }

    #[test]
    fn sched_steps_round_trip_for_every_op_variant() {
        let codec = ThreadedFsOpCodec;
        let mut buf = Vec::new();
        let steps: Vec<SchedStep> = all_variants()
            .into_iter()
            .enumerate()
            .map(|(i, op)| SchedStep {
                tid: (i % 3) as u16,
                op,
            })
            .chain(std::iter::once(SchedStep::crash()))
            .collect();
        for step in &steps {
            codec.encode_op(step, &mut buf);
        }
        let mut r = ByteReader::new(&buf);
        for step in &steps {
            assert_eq!(&codec.decode_op(&mut r).unwrap(), step);
        }
    }

    #[test]
    fn sched_step_rejects_bare_fsop_bytes() {
        let mut buf = Vec::new();
        FsOpCodec.encode_op(&FsOp::Fsck, &mut buf);
        let mut r = ByteReader::new(&buf);
        assert!(matches!(
            ThreadedFsOpCodec.decode_op(&mut r),
            Err(PickleError::Corrupt(_))
        ));
    }
}
