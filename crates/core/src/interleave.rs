//! Concurrent-workload model checking: thread interleavings as the
//! nondeterminism source.
//!
//! [`ThreadedMcfs`] drives N logical threads, each with a fixed program of
//! POSIX ops, against one or more checked targets. The explorable
//! operation is a [`SchedStep`] — "thread `tid` issues its next op" — so
//! the state space is the set of interleavings of the per-thread programs,
//! optionally crossed with a crash pseudo-step between any two scheduled
//! ops. Steps execute atomically (one op runs to completion before the
//! next is scheduled), which models a kernel serializing the VFS layer;
//! what varies is the *order* in which threads win.
//!
//! Two oracles judge each schedule:
//!
//! * **Linearizability.** At every terminal state the per-thread observed
//!   results must match *some* sequential execution of the same ops on a
//!   fresh reference file system that respects each thread's program order
//!   and the real-time order of non-overlapping steps (Wing & Gong's
//!   algorithm, with checkpoint/restore pruning on the reference).
//! * **Crash prefix-consistency.** A crash fired between two scheduled
//!   steps must recover to a state reachable by *some* cut of the
//!   interleaved history — each thread stopped at some point at or after
//!   the last sync floor — re-executed sequentially on the reference.
//!
//! Dynamic POR: [`independent`](ModelSystem::independent) answers from the
//! *concurrent* effect matrix (strictly coarser than the sequential one —
//! outcome-sensitive pairs like `create`/`create` never commute), and
//! [`persistent_set`](ModelSystem::persistent_set) computes a
//! Godefroid-style source set by closing over future-conflicting threads.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

use blockdev::Clock;
use mdigest::Digest128;
use modelcheck::{
    apply_mask, ddmin_mask, ApplyOutcome, CheckpointStoreStats, CrashStats, ModelSystem,
    ShrinkStats, StateId, EVICTED_MARKER,
};
use verifs::VeriFs;
use vfs::{Errno, FileSystem, VfsResult};

use crate::abstraction::{abstract_state, AbstractionConfig};
use crate::effect::{EffectIndex, EffectProfile};
use crate::pool::{execute_with, FsOp, OpOutcome};
use crate::shrink::{consumed_paths, produces, ShrinkConfig};
use crate::target::{CheckedTarget, CheckpointTarget};

/// The pseudo-thread id of the crash scheduler: a [`SchedStep`] with this
/// tid power-cuts every target between two real steps. Never a valid
/// program thread.
pub const CRASH_TID: u16 = u16::MAX;

/// One scheduling decision: thread `tid` issues its next program op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedStep {
    /// Logical thread issuing the op ([`CRASH_TID`] for the crash step).
    pub tid: u16,
    /// The op issued — always the thread's next program op (kept inline so
    /// traces are self-contained and replayable without the program).
    pub op: FsOp,
}

impl SchedStep {
    /// The crash pseudo-step.
    pub fn crash() -> Self {
        SchedStep {
            tid: CRASH_TID,
            op: FsOp::Crash,
        }
    }

    /// Whether this is the crash pseudo-step.
    pub fn is_crash(&self) -> bool {
        self.tid == CRASH_TID
    }
}

impl fmt::Display for SchedStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_crash() {
            write!(f, "crash")
        } else {
            write!(f, "t{}:{}", self.tid, self.op)
        }
    }
}

/// A full interleaved schedule.
pub type ThreadedTrace = Vec<SchedStep>;

/// A deterministic rebuilder for threaded harnesses, parameterized on the
/// candidate schedule (the factory derives per-thread programs from it).
/// Counterexample minimization replays candidates against factory-fresh
/// instances only.
pub type ThreadedHarnessFactory = dyn Fn(&[SchedStep]) -> VfsResult<ThreadedMcfs> + Send + Sync;

/// Configuration for [`ThreadedMcfs`].
#[derive(Debug, Clone)]
pub struct ThreadedMcfsConfig {
    /// Abstraction-function settings (exception list etc.).
    pub abstraction: AbstractionConfig,
    /// Charge this much CPU time per syscall per target.
    pub syscall_cpu_ns: u64,
    /// Enable the crash pseudo-step between any two scheduled ops. Requires
    /// every target to support crash recovery.
    pub crash_exploration: bool,
    /// Check every terminal interleaving's observed results against a
    /// sequential reference execution. **On** by default — it is the point.
    pub check_linearizability: bool,
    /// Delta-debug violating schedules at record time (needs a factory,
    /// [`ThreadedMcfs::set_factory`]).
    pub minimize_violations: bool,
    /// Cap on thread-cut enumerations per crash (the cut lattice is
    /// `Π(pc_t − floor_t + 1)`); past the cap the crash oracle falls back
    /// to the interleaved prefix window alone.
    pub max_crash_cuts: usize,
}

impl Default for ThreadedMcfsConfig {
    fn default() -> Self {
        ThreadedMcfsConfig {
            abstraction: AbstractionConfig::default(),
            syscall_cpu_ns: 2_000,
            crash_exploration: false,
            check_linearizability: true,
            minimize_violations: false,
            max_crash_cuts: 1024,
        }
    }
}

/// Exploration counters specific to interleaved checking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterleaveStats {
    /// Terminal interleavings reached (every thread ran to completion).
    pub terminals: u64,
    /// Sequential candidate executions tried by the linearizability oracle.
    pub lin_candidates: u64,
    /// Crash pseudo-steps applied.
    pub crashes: u64,
    /// Crashes recovered to a consistent cut on every target.
    pub crash_recoveries: u64,
    /// Crashes where targets recovered validly but to different states.
    pub divergent_recoveries: u64,
}

/// Scheduler state saved alongside target checkpoints.
#[derive(Debug, Clone)]
struct SavedSched {
    pcs: Vec<usize>,
    history: Vec<(SchedStep, OpOutcome)>,
    prefix: Vec<u128>,
    floor: Vec<usize>,
}

/// N per-thread programs driven in every interleaving against one or more
/// checked targets, with linearizability and crash-cut oracles.
pub struct ThreadedMcfs {
    targets: Vec<Box<dyn CheckedTarget>>,
    programs: Vec<Vec<FsOp>>,
    setup: Vec<FsOp>,
    cfg: ThreadedMcfsConfig,
    clock: Option<Clock>,
    effects: EffectIndex,
    /// Per-thread program counter: ops already issued.
    pcs: Vec<usize>,
    /// Interleaved execution so far: each scheduled step with the outcome
    /// every target agreed on.
    history: Vec<(SchedStep, OpOutcome)>,
    /// Crash-oracle window: interleaved-prefix states since the last sync
    /// floor (plus the floor itself).
    prefix_hashes: Vec<u128>,
    /// Per-thread cut floor for the crash oracle: ops issued before the
    /// last sync point are durable and cannot be lost.
    floor: Vec<usize>,
    ckpt: HashMap<u64, SavedSched>,
    ckpt_hashes: HashMap<u64, u128>,
    last_hash: Option<Digest128>,
    /// Fingerprints of every terminal state reached (POR equivalence
    /// validation compares these across settings).
    final_states: BTreeSet<u128>,
    stats: InterleaveStats,
    factory: Option<Arc<ThreadedHarnessFactory>>,
}

impl ThreadedMcfs {
    /// Builds a threaded harness over `targets` running `programs` (one op
    /// list per thread) from an empty file system.
    ///
    /// # Errors
    ///
    /// `EINVAL` for an empty target or program list, too many threads, a
    /// setup op the targets disagree on, or initial-state disagreement;
    /// `ENOSYS` when crash exploration is requested and a target cannot
    /// crash; mount errors propagate.
    pub fn new(
        targets: Vec<Box<dyn CheckedTarget>>,
        programs: Vec<Vec<FsOp>>,
        cfg: ThreadedMcfsConfig,
    ) -> VfsResult<Self> {
        Self::with_clock_opt(targets, programs, Vec::new(), cfg, None)
    }

    /// Like [`new`](ThreadedMcfs::new) with a sequential `setup` prologue
    /// executed (and checked for agreement) before any thread runs.
    ///
    /// # Errors
    ///
    /// See [`new`](ThreadedMcfs::new).
    pub fn with_setup(
        targets: Vec<Box<dyn CheckedTarget>>,
        programs: Vec<Vec<FsOp>>,
        setup: Vec<FsOp>,
        cfg: ThreadedMcfsConfig,
    ) -> VfsResult<Self> {
        Self::with_clock_opt(targets, programs, setup, cfg, None)
    }

    /// Like [`with_setup`](ThreadedMcfs::with_setup) with a virtual clock:
    /// each thread charges its own clock lane, so accumulated per-thread
    /// CPU time is schedule-independent.
    ///
    /// # Errors
    ///
    /// See [`new`](ThreadedMcfs::new).
    pub fn with_clock(
        targets: Vec<Box<dyn CheckedTarget>>,
        programs: Vec<Vec<FsOp>>,
        setup: Vec<FsOp>,
        cfg: ThreadedMcfsConfig,
        clock: Clock,
    ) -> VfsResult<Self> {
        Self::with_clock_opt(targets, programs, setup, cfg, Some(clock))
    }

    fn with_clock_opt(
        mut targets: Vec<Box<dyn CheckedTarget>>,
        programs: Vec<Vec<FsOp>>,
        setup: Vec<FsOp>,
        cfg: ThreadedMcfsConfig,
        clock: Option<Clock>,
    ) -> VfsResult<Self> {
        if targets.is_empty() || programs.is_empty() || programs.len() >= CRASH_TID as usize {
            return Err(Errno::EINVAL);
        }
        if cfg.crash_exploration && !targets.iter().all(|t| t.supports_crash()) {
            return Err(Errno::ENOSYS);
        }
        for t in &mut targets {
            t.pre_op()?;
        }
        // The POR independence relation comes from every op any thread (or
        // the setup) can issue, plus the crash step when explored.
        let mut flat: Vec<FsOp> = setup.to_vec();
        flat.extend(programs.iter().flatten().cloned());
        if cfg.crash_exploration {
            flat.push(FsOp::Crash);
        }
        let kernel_caches = targets.iter_mut().any(|t| t.fs_mut().caches_metadata());
        let profile = EffectProfile::from_pool(&flat)
            .with_kernel_caches(kernel_caches)
            .with_atime(cfg.abstraction.include_atime);
        let effects = EffectIndex::new(&flat, profile);

        let thread_count = programs.len();
        let mut this = ThreadedMcfs {
            targets,
            programs,
            setup,
            cfg,
            clock,
            effects,
            pcs: vec![0; thread_count],
            history: Vec::new(),
            prefix_hashes: Vec::new(),
            floor: vec![0; thread_count],
            ckpt: HashMap::new(),
            ckpt_hashes: HashMap::new(),
            last_hash: None,
            final_states: BTreeSet::new(),
            stats: InterleaveStats::default(),
            factory: None,
        };
        this.run_setup()?;
        let hashes = this.hash_all()?;
        if hashes.iter().any(|h| *h != hashes[0]) {
            return Err(Errno::EINVAL);
        }
        this.last_hash = Some(hashes[0]);
        this.prefix_hashes = vec![hashes[0].as_u128()];
        for t in &mut this.targets {
            t.post_op()?;
        }
        Ok(this)
    }

    /// Builds a harness whose programs are derived from a recorded
    /// schedule: each thread's program is the subsequence of `schedule`
    /// ops carrying its tid. Crash exploration switches on automatically
    /// when the schedule contains a crash step. This is the replay and
    /// minimization entry point.
    ///
    /// # Errors
    ///
    /// See [`new`](ThreadedMcfs::new).
    pub fn from_schedule(
        targets: Vec<Box<dyn CheckedTarget>>,
        schedule: &[SchedStep],
        mut cfg: ThreadedMcfsConfig,
    ) -> VfsResult<Self> {
        let max_tid = schedule
            .iter()
            .filter(|s| !s.is_crash())
            .map(|s| s.tid as usize)
            .max()
            .ok_or(Errno::EINVAL)?;
        let mut programs = vec![Vec::new(); max_tid + 1];
        for step in schedule {
            if step.is_crash() {
                cfg.crash_exploration = true;
            } else {
                programs[step.tid as usize].push(step.op.clone());
            }
        }
        Self::with_clock_opt(targets, programs, Vec::new(), cfg, None)
    }

    /// Replays a schedule through [`apply`](ModelSystem::apply), returning
    /// the first violation (index and message) if one fires. A prune stops
    /// the replay (exploration never continues past a crash either).
    pub fn replay_schedule(&mut self, schedule: &[SchedStep]) -> Option<(usize, String)> {
        for (i, step) in schedule.iter().enumerate() {
            match self.apply(&step.clone()) {
                ApplyOutcome::Ok => {}
                ApplyOutcome::Prune(_) => return None,
                ApplyOutcome::Violation(msg) => return Some((i, msg)),
            }
        }
        None
    }

    /// Attaches the replay factory counterexample minimization validates
    /// against; [`ThreadedMcfsConfig::minimize_violations`] does nothing
    /// without it.
    pub fn set_factory(&mut self, factory: Arc<ThreadedHarnessFactory>) {
        self.factory = Some(factory);
    }

    /// Builder-style [`set_factory`](ThreadedMcfs::set_factory).
    #[must_use]
    pub fn with_factory(mut self, factory: Arc<ThreadedHarnessFactory>) -> Self {
        self.factory = Some(factory);
        self
    }

    /// Interleaving-specific counters.
    pub fn interleave_stats(&self) -> InterleaveStats {
        self.stats
    }

    /// Fingerprints of every terminal interleaving reached so far.
    pub fn final_states(&self) -> &BTreeSet<u128> {
        &self.final_states
    }

    /// The effect index backing POR decisions.
    pub fn effect_index(&self) -> &EffectIndex {
        &self.effects
    }

    fn thread_count(&self) -> usize {
        self.programs.len()
    }

    fn done(&self) -> bool {
        self.pcs
            .iter()
            .zip(&self.programs)
            .all(|(&pc, prog)| pc >= prog.len())
    }

    fn charge(&self, ns: u64) {
        if let Some(c) = &self.clock {
            c.advance_ns(ns);
        }
    }

    fn run_setup(&mut self) -> VfsResult<()> {
        let exceptions = self.cfg.abstraction.exceptions.clone();
        let sort = self.cfg.abstraction.sort_entries;
        for op in &self.setup.clone() {
            let outcomes: Vec<OpOutcome> = self
                .targets
                .iter_mut()
                .map(|t| execute_with(t.fs_mut(), op, &exceptions, sort))
                .collect();
            if outcomes.iter().any(|o| *o != outcomes[0]) {
                return Err(Errno::EINVAL);
            }
        }
        Ok(())
    }

    fn hash_all(&mut self) -> VfsResult<Vec<Digest128>> {
        let cfg = self.cfg.abstraction.clone();
        self.targets
            .iter_mut()
            .map(|t| abstract_state(t.fs_mut(), &cfg))
            .collect()
    }

    /// Best-effort cleanup wrapper around every violation return, so
    /// per-op remount targets are not left mounted mid-operation.
    fn violation(&mut self, msg: String) -> ApplyOutcome {
        if let Some(c) = &self.clock {
            c.clear_active_lane();
        }
        for t in &mut self.targets {
            let _ = t.post_op();
        }
        ApplyOutcome::Violation(msg)
    }

    fn describe_discrepancy<T: fmt::Debug + PartialEq>(
        &self,
        what: &str,
        step: &SchedStep,
        values: &[T],
    ) -> String {
        let mut msg = format!("{what} discrepancy on {step}:");
        for (t, v) in self.targets.iter().zip(values) {
            msg.push_str(&format!(
                "\n  {:<12} [{}] => {:?}",
                t.name(),
                t.strategy(),
                v
            ));
        }
        msg
    }

    fn push_prefix(&mut self, hash: u128) {
        if !self.cfg.crash_exploration {
            return;
        }
        if self.prefix_hashes.last() != Some(&hash) {
            self.prefix_hashes.push(hash);
        }
    }

    /// The POSIX-observable fingerprint (first target; all agree whenever
    /// apply succeeded).
    pub fn pure_abstract_state(&mut self) -> u128 {
        if let Some(h) = self.last_hash {
            return h.as_u128();
        }
        let _ = self.targets[0].pre_op();
        let cfg = self.cfg.abstraction.clone();
        let h = abstract_state(self.targets[0].fs_mut(), &cfg)
            .map(|d| d.as_u128())
            .unwrap_or(u128::MAX);
        let _ = self.targets[0].post_op();
        h
    }

    fn opaque_digest_fold(&mut self) -> u128 {
        let mut acc = 0u128;
        // mcfs-lint: allow(MC007, target order is fixed at construction; the index is part of the digest domain by design)
        for (i, t) in self.targets.iter_mut().enumerate() {
            if let Some(d) = t.fs_mut().opaque_state_digest() {
                let mut bytes = [0u8; 24];
                bytes[..8].copy_from_slice(&(i as u64).to_le_bytes());
                bytes[8..].copy_from_slice(&d.to_le_bytes());
                acc ^= mdigest::md5(&bytes).as_u128();
            }
        }
        acc
    }

    /// Serializes an outcome for the scheduler fingerprint. Stable across
    /// runs (no hashing of pointers or map order).
    fn encode_outcome(out: &mut Vec<u8>, o: &OpOutcome) {
        match o {
            OpOutcome::Ok => out.push(0),
            OpOutcome::Data(d) => {
                out.push(1);
                out.extend_from_slice(&(d.len() as u64).to_le_bytes());
                out.extend_from_slice(d);
            }
            OpOutcome::Attrs {
                ftype,
                mode,
                nlink,
                owner,
                size,
            } => {
                out.push(2);
                out.push(*ftype as u8);
                out.extend_from_slice(&mode.to_le_bytes());
                out.extend_from_slice(&nlink.to_le_bytes());
                out.extend_from_slice(&owner.0.to_le_bytes());
                out.extend_from_slice(&owner.1.to_le_bytes());
                match size {
                    Some(s) => {
                        out.push(1);
                        out.extend_from_slice(&s.to_le_bytes());
                    }
                    None => out.push(0),
                }
            }
            OpOutcome::Entries(es) => {
                out.push(3);
                out.extend_from_slice(&(es.len() as u64).to_le_bytes());
                for (name, ftype) in es {
                    out.extend_from_slice(&(name.len() as u64).to_le_bytes());
                    out.extend_from_slice(name.as_bytes());
                    out.push(*ftype as u8);
                }
            }
            OpOutcome::Bytes(b) => {
                out.push(4);
                out.extend_from_slice(&(b.len() as u64).to_le_bytes());
                out.extend_from_slice(b);
            }
            OpOutcome::Err(e) => {
                out.push(5);
                out.extend_from_slice(format!("{e:?}").as_bytes());
            }
        }
    }

    /// Scheduler-state fold mixed into the visited fingerprint: two states
    /// with identical file-system content but different program counters
    /// (or different per-thread observations) must not be matched away —
    /// the remaining work and the linearizability obligation differ. The
    /// per-step component is order-insensitive (XOR), so schedules that are
    /// permutations with identical per-thread observations *do* merge.
    fn sched_fold(&self) -> u128 {
        let mut pcs_bytes: Vec<u8> = b"sched-pcs".to_vec();
        for &pc in &self.pcs {
            pcs_bytes.extend_from_slice(&(pc as u64).to_le_bytes());
        }
        let mut acc = mdigest::md5(&pcs_bytes).as_u128();
        let mut per_thread_idx = vec![0u64; self.thread_count()];
        for (step, outcome) in &self.history {
            if step.is_crash() {
                continue;
            }
            let t = step.tid as usize;
            let mut bytes: Vec<u8> = b"step".to_vec();
            bytes.extend_from_slice(&(step.tid as u64).to_le_bytes());
            bytes.extend_from_slice(&per_thread_idx[t].to_le_bytes());
            Self::encode_outcome(&mut bytes, outcome);
            per_thread_idx[t] += 1;
            acc ^= mdigest::md5(&bytes).as_u128();
        }
        acc
    }

    /// The schedule executed so far (without outcomes).
    pub fn schedule(&self) -> ThreadedTrace {
        self.history.iter().map(|(s, _)| s.clone()).collect()
    }

    /// Executes one thread step on every target and checks lockstep
    /// agreement, then — at terminal states — the linearizability oracle.
    fn apply_step(&mut self, step: &SchedStep) -> ApplyOutcome {
        let t = step.tid as usize;
        // Stale steps (explorer replaying against a restored scheduler that
        // moved on) prune rather than corrupt.
        if t >= self.thread_count()
            || self.pcs[t] >= self.programs[t].len()
            || self.programs[t][self.pcs[t]] != step.op
        {
            return ApplyOutcome::Prune(format!("stale step {step}"));
        }
        self.last_hash = None;
        for tgt in &mut self.targets {
            if let Err(e) = tgt.pre_op() {
                let msg = format!("{}: pre-op mount failed: {e}", tgt.name());
                return self.violation(msg);
            }
        }
        if let Some(c) = &self.clock {
            c.set_active_lane(step.tid);
        }
        let exceptions = self.cfg.abstraction.exceptions.clone();
        let sort = self.cfg.abstraction.sort_entries;
        let mut outcomes = Vec::with_capacity(self.targets.len());
        for tgt in &mut self.targets {
            tgt.fs_mut().set_active_thread(step.tid);
            outcomes.push(execute_with(tgt.fs_mut(), &step.op, &exceptions, sort));
        }
        self.charge(self.cfg.syscall_cpu_ns * self.targets.len() as u64);
        if let Some(c) = &self.clock {
            c.clear_active_lane();
        }
        if outcomes.iter().any(|o| *o != outcomes[0]) {
            let msg = self.describe_discrepancy("outcome", step, &outcomes);
            return self.violation(msg);
        }
        let hashes = match self.hash_all() {
            Ok(h) => h,
            Err(e) => return self.violation(format!("abstraction failed after {step}: {e}")),
        };
        if hashes.iter().any(|h| *h != hashes[0]) {
            let msg = self.describe_discrepancy("state", step, &hashes);
            return self.violation(msg);
        }
        self.last_hash = Some(hashes[0]);
        self.push_prefix(hashes[0].as_u128());
        self.history.push((step.clone(), outcomes[0].clone()));
        self.pcs[t] += 1;
        for tgt in &mut self.targets {
            if let Err(e) = tgt.post_op() {
                let msg = format!("{}: post-op failed: {e}", tgt.name());
                return self.violation(msg);
            }
        }
        for tgt in &mut self.targets {
            let _ = tgt.track_state();
        }
        if self.done() {
            self.stats.terminals += 1;
            if self.cfg.check_linearizability {
                if let Err(msg) = self.check_linearizable() {
                    return self.violation(msg);
                }
            }
            let fp = ModelSystem::abstract_state(self);
            self.final_states.insert(fp);
        }
        ApplyOutcome::Ok
    }

    /// Wing & Gong linearizability check against a fresh sequential
    /// reference. Atomic steps make each op's invocation point the
    /// response point of its thread predecessor, so op A precedes op B iff
    /// A's history position is before B's *predecessor's* position; the
    /// oracle searches for any linearization respecting that partial order
    /// whose reference execution reproduces every observed outcome,
    /// pruning with checkpoint/restore on the reference.
    fn check_linearizable(&mut self) -> Result<(), String> {
        // Per-thread observation lists and history positions.
        let tc = self.thread_count();
        let mut expected: Vec<Vec<OpOutcome>> = vec![Vec::new(); tc];
        let mut pos: Vec<Vec<i64>> = vec![Vec::new(); tc];
        for (i, (step, outcome)) in self.history.iter().enumerate() {
            if step.is_crash() {
                continue;
            }
            expected[step.tid as usize].push(outcome.clone());
            pos[step.tid as usize].push(i as i64);
        }
        let total: usize = expected.iter().map(|v| v.len()).sum();
        if total == 0 {
            return Ok(());
        }
        let mut reference = CheckpointTarget::new(VeriFs::v2());
        reference
            .pre_op()
            .map_err(|e| format!("linearizability reference mount failed: {e}"))?;
        let exceptions = self.cfg.abstraction.exceptions.clone();
        let sort = self.cfg.abstraction.sort_entries;
        for op in &self.setup {
            execute_with(reference.fs_mut(), op, &exceptions, sort);
        }
        let mut lin_pcs = vec![0usize; tc];
        let mut tried = 0u64;
        let found = Self::lin_dfs(
            &mut reference,
            &self.programs,
            &expected,
            &pos,
            &mut lin_pcs,
            0,
            total,
            &exceptions,
            sort,
            &mut tried,
        )
        .map_err(|e| format!("linearizability reference failed: {e}"))?;
        self.stats.lin_candidates += tried;
        if found {
            Ok(())
        } else {
            // Number-free so a minimized schedule reproduces the same
            // message byte-for-byte.
            Err(
                "linearizability violation: no sequential execution of the threads' ops \
                 (respecting program order and real-time order) matches every thread's \
                 observed results"
                    .to_string(),
            )
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn lin_dfs(
        reference: &mut CheckpointTarget<VeriFs>,
        programs: &[Vec<FsOp>],
        expected: &[Vec<OpOutcome>],
        pos: &[Vec<i64>],
        lin_pcs: &mut [usize],
        placed: usize,
        total: usize,
        exceptions: &[String],
        sort: bool,
        tried: &mut u64,
    ) -> VfsResult<bool> {
        if placed == total {
            return Ok(true);
        }
        let key = placed as u64;
        reference.save_state(key)?;
        for t in 0..programs.len() {
            let k = lin_pcs[t];
            if k >= expected[t].len() {
                continue;
            }
            // Real-time order: a pending op A of another thread precedes
            // this op B iff A's response (its history position) came before
            // B's invocation (B's thread predecessor's position). Placing B
            // first would reorder them against the wall clock.
            let inv = if k == 0 { -1 } else { pos[t][k - 1] };
            let blocked = (0..programs.len())
                .any(|u| u != t && lin_pcs[u] < expected[u].len() && pos[u][lin_pcs[u]] < inv);
            if blocked {
                continue;
            }
            *tried += 1;
            let got = execute_with(reference.fs_mut(), &programs[t][k], exceptions, sort);
            if got == expected[t][k] {
                lin_pcs[t] = k + 1;
                let hit = Self::lin_dfs(
                    reference,
                    programs,
                    expected,
                    pos,
                    lin_pcs,
                    placed + 1,
                    total,
                    exceptions,
                    sort,
                    tried,
                )?;
                lin_pcs[t] = k;
                if hit {
                    let _ = reference.drop_state(key);
                    return Ok(true);
                }
            }
            reference.load_state(key)?;
        }
        let _ = reference.drop_state(key);
        Ok(false)
    }

    /// The crash pseudo-step: power-cut every target between two scheduled
    /// ops and check recovery against the set of *linearizable prefix*
    /// states — every interleaved prefix state since the sync floor, plus
    /// every per-thread cut of the history re-executed sequentially (a
    /// thread's issued-but-unsynced tail may be lost independently of the
    /// others').
    fn apply_crash(&mut self) -> ApplyOutcome {
        self.last_hash = None;
        self.stats.crashes += 1;
        for t in &mut self.targets {
            if let Err(e) = t.pre_op() {
                let msg = format!("{}: pre-crash mount failed: {e}", t.name());
                return self.violation(msg);
            }
        }
        let pre = match self.hash_all() {
            Ok(h) => h,
            Err(e) => return self.violation(format!("pre-crash abstraction failed: {e}")),
        };
        let mut allowed: BTreeSet<u128> = self.prefix_hashes.iter().copied().collect();
        allowed.insert(pre[0].as_u128());
        match self.crash_cut_states() {
            Ok(cuts) => allowed.extend(cuts),
            Err(e) => return self.violation(format!("crash-cut reference execution failed: {e}")),
        }
        for t in &mut self.targets {
            if let Err(e) = t.crash_remount() {
                let msg = format!("{}: crash recovery failed: {e}", t.name());
                return self.violation(msg);
            }
        }
        self.charge(self.cfg.syscall_cpu_ns * self.targets.len() as u64);
        let recovered = match self.hash_all() {
            Ok(h) => h,
            Err(e) => return self.violation(format!("post-crash abstraction failed: {e}")),
        };
        for (t, h) in self.targets.iter().zip(&recovered) {
            if !allowed.contains(&h.as_u128()) {
                let msg = format!(
                    "crash-consistency violation: {} recovered to a state matching no \
                     linearizable prefix of the interleaved history",
                    t.name()
                );
                return self.violation(msg);
            }
        }
        let diverged = recovered.iter().any(|h| *h != recovered[0]);
        for t in &mut self.targets {
            let _ = t.post_op();
        }
        if diverged {
            self.stats.divergent_recoveries += 1;
            ApplyOutcome::Prune("targets recovered to different (each valid) cut states".into())
        } else {
            self.stats.crash_recoveries += 1;
            // Post-crash, the scheduler's program counters no longer match
            // the recovered file-system state (a thread's tail may be
            // gone); interleaved exploration does not continue past a
            // verified crash.
            ApplyOutcome::Prune(
                "crash recovery verified; interleaved exploration does not continue past a crash"
                    .into(),
            )
        }
    }

    /// Reference states of every per-thread cut `floor ≤ c ≤ pc`: each
    /// thread's issued ops truncated at its cut, executed in the recorded
    /// schedule order on a fresh reference. Empty past
    /// [`ThreadedMcfsConfig::max_crash_cuts`].
    fn crash_cut_states(&mut self) -> VfsResult<Vec<u128>> {
        let tc = self.thread_count();
        let mut total = 1usize;
        for t in 0..tc {
            total = total.saturating_mul(self.pcs[t] - self.floor[t] + 1);
            if total > self.cfg.max_crash_cuts {
                return Ok(Vec::new());
            }
        }
        let exceptions = self.cfg.abstraction.exceptions.clone();
        let sort = self.cfg.abstraction.sort_entries;
        let abstraction = self.cfg.abstraction.clone();
        let mut out = Vec::with_capacity(total);
        let mut cut: Vec<usize> = self.floor.clone();
        loop {
            let mut reference = VeriFs::v2();
            reference.mount()?;
            for op in &self.setup {
                execute_with(&mut reference, op, &exceptions, sort);
            }
            let mut idx = vec![0usize; tc];
            for (step, _) in &self.history {
                if step.is_crash() {
                    continue;
                }
                let t = step.tid as usize;
                if idx[t] < cut[t] {
                    execute_with(&mut reference, &step.op, &exceptions, sort);
                }
                idx[t] += 1;
            }
            out.push(abstract_state(&mut reference, &abstraction)?.as_u128());
            // Mixed-radix increment over the cut lattice.
            let mut t = 0;
            loop {
                if t == tc {
                    return Ok(out);
                }
                if cut[t] < self.pcs[t] {
                    cut[t] += 1;
                    break;
                }
                cut[t] = self.floor[t];
                t += 1;
            }
        }
    }
}

impl ModelSystem for ThreadedMcfs {
    type Op = SchedStep;

    fn ops(&mut self) -> Vec<SchedStep> {
        let mut out = Vec::new();
        for (t, prog) in self.programs.iter().enumerate() {
            if self.pcs[t] < prog.len() {
                out.push(SchedStep {
                    tid: t as u16,
                    op: prog[self.pcs[t]].clone(),
                });
            }
        }
        if self.cfg.crash_exploration {
            out.push(SchedStep::crash());
        }
        out
    }

    fn apply(&mut self, op: &SchedStep) -> ApplyOutcome {
        if op.is_crash() {
            self.apply_crash()
        } else {
            self.apply_step(op)
        }
    }

    fn abstract_state(&mut self) -> u128 {
        self.pure_abstract_state() ^ self.opaque_digest_fold() ^ self.sched_fold()
    }

    fn checkpoint(&mut self, id: StateId) -> Result<usize, String> {
        let mut total = 0usize;
        for t in &mut self.targets {
            total += t
                .save_state(id.0)
                .map_err(|e| format!("{}: checkpoint failed: {e}", t.name()))?;
        }
        let h = self.pure_abstract_state();
        self.ckpt_hashes.insert(id.0, h);
        if self.cfg.crash_exploration {
            // Checkpointing syncs device-backed targets: new sync floor.
            self.prefix_hashes = vec![h];
            self.floor = self.pcs.clone();
        }
        self.ckpt.insert(
            id.0,
            SavedSched {
                pcs: self.pcs.clone(),
                history: self.history.clone(),
                prefix: self.prefix_hashes.clone(),
                floor: self.floor.clone(),
            },
        );
        Ok(total)
    }

    fn restore(&mut self, id: StateId) -> Result<(), String> {
        self.last_hash = None;
        for t in &mut self.targets {
            t.load_state(id.0).map_err(|e| {
                if e == Errno::ESTALE {
                    format!("{}: restore failed: {e} {EVICTED_MARKER}", t.name())
                } else {
                    format!("{}: restore failed: {e}", t.name())
                }
            })?;
        }
        let saved = self
            .ckpt
            .get(&id.0)
            .ok_or_else(|| format!("no scheduler state saved under {id}"))?;
        self.pcs = saved.pcs.clone();
        self.history = saved.history.clone();
        self.prefix_hashes = saved.prefix.clone();
        self.floor = saved.floor.clone();
        self.last_hash = self
            .ckpt_hashes
            .get(&id.0)
            .map(|h| Digest128::from_bytes(h.to_le_bytes()));
        Ok(())
    }

    fn release(&mut self, id: StateId) {
        for t in &mut self.targets {
            let _ = t.drop_state(id.0);
        }
        self.ckpt.remove(&id.0);
        self.ckpt_hashes.remove(&id.0);
    }

    fn pin(&mut self, id: StateId) {
        for t in &mut self.targets {
            t.pin_state(id.0);
        }
    }

    fn unpin(&mut self, id: StateId) {
        for t in &mut self.targets {
            t.unpin_state(id.0);
        }
    }

    fn checkpoint_store_stats(&self) -> Option<CheckpointStoreStats> {
        let mut acc = CheckpointStoreStats::default();
        let mut any = false;
        for t in &self.targets {
            if let Some(s) = t.checkpoint_stats() {
                acc.merge(&s);
                any = true;
            }
        }
        any.then_some(acc)
    }

    fn crash_stats(&self) -> Option<CrashStats> {
        self.cfg.crash_exploration.then_some(CrashStats {
            crashes: self.stats.crashes,
            recoveries: self.stats.crash_recoveries,
            divergent_recoveries: self.stats.divergent_recoveries,
        })
    }

    /// Concurrency independence: two steps of *different* threads whose
    /// ops commute under the concurrent effect relation (outcome-sensitive
    /// pairs never do). Same-thread steps are program-ordered and the
    /// crash step conflicts with everything.
    fn independent(&self, a: &SchedStep, b: &SchedStep) -> bool {
        if a.tid == b.tid || a.is_crash() || b.is_crash() {
            return false;
        }
        self.effects.independent_concurrent(&a.op, &b.op)
    }

    /// A source set: close `{first enabled thread}` under "some future op
    /// of thread u conflicts with an in-set thread's next op". Sound
    /// because enabledness is thread-local — a thread outside the set can
    /// never enable or disable an in-set thread's next op, only conflict
    /// with it, and conflicting threads are pulled in. Crash steps disable
    /// the reduction entirely (a crash commutes with nothing).
    fn persistent_set(&mut self, enabled: &[SchedStep]) -> Option<Vec<bool>> {
        if enabled.len() <= 1 || enabled.iter().any(|s| s.is_crash()) {
            return None;
        }
        let mut in_set = vec![false; enabled.len()];
        in_set[0] = true;
        loop {
            let mut changed = false;
            for (j, cand) in enabled.iter().enumerate() {
                if in_set[j] {
                    continue;
                }
                let tj = cand.tid as usize;
                let future = &self.programs[tj][self.pcs[tj]..];
                let conflicts = enabled.iter().enumerate().any(|(i, s)| {
                    in_set[i]
                        && future
                            .iter()
                            .any(|op| !self.effects.independent_concurrent(op, &s.op))
                });
                if conflicts {
                    in_set[j] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        if in_set.iter().all(|&b| b) {
            None
        } else {
            Some(in_set)
        }
    }

    fn minimize(
        &mut self,
        trace: &[SchedStep],
        message: &str,
    ) -> Option<(Vec<SchedStep>, ShrinkStats)> {
        if !self.cfg.minimize_violations {
            return None;
        }
        let factory = self.factory.clone()?;
        let out = shrink_threaded_trace(&*factory, trace, message, &ShrinkConfig::default())?;
        Some((out.schedule, out.stats))
    }
}

/// A successful schedule minimization.
#[derive(Debug, Clone)]
pub struct ThreadedShrinkOutcome {
    /// The minimized schedule: a subsequence of the original (so every
    /// thread's program order is preserved) that reproduces a violation
    /// with the original message on a factory-fresh harness.
    pub schedule: ThreadedTrace,
    /// Work counters.
    pub stats: ShrinkStats,
}

/// Dependency repair for interleaved schedules: re-adds, for every kept
/// step, the last preceding producer (on *any* thread — files are shared)
/// of each path its op consumes, and for every kept crash step its
/// nearest preceding mutation (the crash-window anchor), to a fixpoint.
/// Because repair and ddmin only ever remove or re-add *subsequence*
/// elements, each thread's program order is preserved by construction.
fn repair_sched_mask(schedule: &[SchedStep], mask: &mut [bool]) {
    loop {
        let mut changed = false;
        for i in 0..schedule.len() {
            if !mask[i] {
                continue;
            }
            if schedule[i].is_crash() {
                if let Some(j) = (0..i).rev().find(|&j| schedule[j].op.is_mutation()) {
                    if !mask[j] {
                        mask[j] = true;
                        changed = true;
                    }
                }
                continue;
            }
            for p in consumed_paths(&schedule[i].op) {
                if let Some(j) = (0..i).rev().find(|&j| produces(&schedule[j].op, p)) {
                    if !mask[j] {
                        mask[j] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// Minimizes a violating schedule to a 1-minimal subsequence reproducing a
/// violation with exactly `message` on a factory-fresh harness. Program
/// order per thread is preserved automatically (candidates are
/// subsequences). Returns `None` when the full schedule does not reproduce
/// on a fresh harness.
pub fn shrink_threaded_trace(
    factory: &ThreadedHarnessFactory,
    schedule: &[SchedStep],
    message: &str,
    cfg: &ShrinkConfig,
) -> Option<ThreadedShrinkOutcome> {
    let n = schedule.len();
    let mut cache: HashMap<Vec<bool>, bool> = HashMap::new();
    let mut replays = 0u64;
    let mut test = |mask: &[bool]| -> bool {
        if let Some(&hit) = cache.get(mask) {
            return hit;
        }
        let candidate = apply_mask(schedule, mask);
        replays += 1;
        let ok = match factory(&candidate) {
            Ok(mut fresh) => fresh
                .replay_schedule(&candidate)
                .map(|(_, msg)| msg == message)
                .unwrap_or(false),
            Err(_) => false,
        };
        cache.insert(mask.to_vec(), ok);
        ok
    };
    if !test(&vec![true; n]) {
        return None;
    }
    let mut repair = |mask: &mut Vec<bool>| repair_sched_mask(schedule, mask);
    let (mask, tests) = ddmin_mask(n, &mut repair, &mut test, cfg.max_candidates);
    let minimized = apply_mask(schedule, &mask);
    Some(ThreadedShrinkOutcome {
        stats: ShrinkStats {
            ops_before: n,
            ops_after: minimized.len(),
            candidates_tried: tests + 1,
            replays_run: replays,
        },
        schedule: minimized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use modelcheck::{DfsExplorer, ExploreConfig};
    use verifs::BugConfig;

    fn op_create(p: &str) -> FsOp {
        FsOp::CreateFile {
            path: p.into(),
            mode: 0o644,
        }
    }

    fn op_write(p: &str, offset: u64, size: u64, seed: u8) -> FsOp {
        FsOp::WriteFile {
            path: p.into(),
            offset,
            size,
            seed,
        }
    }

    fn op_read(p: &str, offset: u64, size: u64) -> FsOp {
        FsOp::ReadFile {
            path: p.into(),
            offset,
            size,
        }
    }

    fn op_trunc(p: &str, size: u64) -> FsOp {
        FsOp::Truncate {
            path: p.into(),
            size,
        }
    }

    fn clean_pair() -> Vec<Box<dyn CheckedTarget>> {
        let mut a = VeriFs::v2();
        a.mount().unwrap();
        let mut b = VeriFs::v2();
        b.mount().unwrap();
        vec![
            Box::new(CheckpointTarget::new(a)),
            Box::new(CheckpointTarget::new(b)),
        ]
    }

    fn buggy_single() -> Vec<Box<dyn CheckedTarget>> {
        let mut fs = VeriFs::v2_with_bugs(BugConfig::v2_hole());
        fs.mount().unwrap();
        vec![Box::new(CheckpointTarget::new(fs))]
    }

    fn disjoint_programs() -> Vec<Vec<FsOp>> {
        vec![
            vec![op_create("/a"), op_write("/a", 0, 8, 1)],
            vec![op_create("/b"), op_write("/b", 0, 8, 2)],
        ]
    }

    fn explore(programs: Vec<Vec<FsOp>>, por: bool, por_persistent: bool) -> (BTreeSet<u128>, u64) {
        let mut sys =
            ThreadedMcfs::new(clean_pair(), programs, ThreadedMcfsConfig::default()).unwrap();
        let report = DfsExplorer::new(ExploreConfig {
            max_depth: 8,
            por,
            por_persistent,
            ..ExploreConfig::default()
        })
        .run(&mut sys);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        (sys.final_states().clone(), report.stats.ops_executed)
    }

    #[test]
    fn por_settings_reach_identical_final_states() {
        let (base, full) = explore(disjoint_programs(), false, false);
        assert!(!base.is_empty());
        let mut reduced_best = full;
        for (por, pp) in [(true, false), (false, true), (true, true)] {
            let (states, ops) = explore(disjoint_programs(), por, pp);
            assert_eq!(states, base, "por={por} persistent={pp}");
            assert!(ops <= full, "por={por} persistent={pp}: {ops} > {full}");
            reduced_best = reduced_best.min(ops);
        }
        // Fully disjoint threads: POR must actually cut transitions.
        assert!(
            reduced_best < full,
            "POR never reduced transitions ({full})"
        );
    }

    #[test]
    fn racing_identical_creates_are_outcome_dependent_not_violations() {
        let programs = vec![vec![op_create("/f")], vec![op_create("/f")]];
        let mut sys =
            ThreadedMcfs::new(clean_pair(), programs, ThreadedMcfsConfig::default()).unwrap();
        let report = DfsExplorer::new(ExploreConfig {
            max_depth: 4,
            ..ExploreConfig::default()
        })
        .run(&mut sys);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        // Both orders run (the ops race — POR must not merge them) and the
        // loser observes EEXIST, so the two schedules are distinct states.
        assert_eq!(sys.interleave_stats().terminals, 2);
        assert_eq!(sys.final_states().len(), 2);
    }

    #[test]
    fn persistent_set_keeps_one_thread_for_disjoint_programs() {
        let mut sys = ThreadedMcfs::new(
            clean_pair(),
            disjoint_programs(),
            ThreadedMcfsConfig::default(),
        )
        .unwrap();
        let enabled = sys.ops();
        assert_eq!(enabled.len(), 2);
        let mask = sys.persistent_set(&enabled).expect("reduction applies");
        assert_eq!(mask, vec![true, false]);
    }

    #[test]
    fn persistent_set_disabled_under_crash_exploration() {
        let cfg = ThreadedMcfsConfig {
            crash_exploration: true,
            ..ThreadedMcfsConfig::default()
        };
        let mut sys = ThreadedMcfs::new(clean_pair(), disjoint_programs(), cfg).unwrap();
        let enabled = sys.ops();
        assert!(enabled.iter().any(|s| s.is_crash()));
        assert!(sys.persistent_set(&enabled).is_none());
    }

    fn hole_schedule() -> ThreadedTrace {
        let t0 = [
            op_create("/f0"),
            op_write("/f0", 0, 40, 1),
            op_trunc("/f0", 1),
            op_write("/f0", 30, 4, 2),
            op_read("/f0", 0, 40),
        ];
        let t1 = [op_create("/b"), FsOp::Stat { path: "/b".into() }];
        let mut sched: ThreadedTrace = t0
            .iter()
            .map(|op| SchedStep {
                tid: 0,
                op: op.clone(),
            })
            .collect();
        for (i, op) in t1.iter().enumerate() {
            sched.insert(
                2 * i + 1,
                SchedStep {
                    tid: 1,
                    op: op.clone(),
                },
            );
        }
        sched
    }

    #[test]
    fn hole_bug_fails_linearizability_and_replays() {
        let sched = hole_schedule();
        let mut sys =
            ThreadedMcfs::from_schedule(buggy_single(), &sched, ThreadedMcfsConfig::default())
                .unwrap();
        let (at, msg) = sys
            .replay_schedule(&sched)
            .expect("the stale-hole read has no sequential witness");
        assert_eq!(at, sched.len() - 1, "violates on the read");
        assert!(msg.contains("linearizability violation"), "{msg}");
        // Byte-identical reproduction on a second fresh harness.
        let mut again =
            ThreadedMcfs::from_schedule(buggy_single(), &sched, ThreadedMcfsConfig::default())
                .unwrap();
        assert_eq!(again.replay_schedule(&sched), Some((at, msg)));
    }

    #[test]
    fn threaded_shrink_drops_fillers_and_keeps_program_order() {
        let sched = hole_schedule();
        let factory = |s: &[SchedStep]| {
            ThreadedMcfs::from_schedule(buggy_single(), s, ThreadedMcfsConfig::default())
        };
        let mut sys = factory(&sched).unwrap();
        let (_, msg) = sys.replay_schedule(&sched).expect("violates");
        let out = shrink_threaded_trace(&factory, &sched, &msg, &ShrinkConfig::default())
            .expect("full schedule reproduces");
        assert!(out.schedule.len() < sched.len());
        assert!(out.schedule.iter().all(|s| s.tid == 0), "fillers removed");
        // Program order preserved: the minimized schedule is a subsequence
        // of thread 0's program.
        let prog: Vec<FsOp> = sched
            .iter()
            .filter(|s| s.tid == 0)
            .map(|s| s.op.clone())
            .collect();
        let mut cursor = 0;
        for step in &out.schedule {
            let at = prog[cursor..]
                .iter()
                .position(|op| *op == step.op)
                .expect("subsequence");
            cursor += at + 1;
        }
        // And the result still reproduces byte-identically.
        let mut fresh = factory(&out.schedule).unwrap();
        let (_, msg2) = fresh.replay_schedule(&out.schedule).expect("reproduces");
        assert_eq!(msg2, msg);
    }

    #[test]
    fn crash_step_recovers_to_a_thread_cut() {
        let cfg = ThreadedMcfsConfig {
            crash_exploration: true,
            ..ThreadedMcfsConfig::default()
        };
        let mut sys = ThreadedMcfs::new(clean_pair(), disjoint_programs(), cfg).unwrap();
        let steps = sys.ops();
        let first = steps[0].clone();
        assert!(matches!(sys.apply(&first), ApplyOutcome::Ok));
        match sys.apply(&SchedStep::crash()) {
            ApplyOutcome::Prune(_) => {}
            other => panic!("crash must prune after verifying recovery: {other:?}"),
        }
        assert_eq!(sys.interleave_stats().crashes, 1);
        assert_eq!(sys.interleave_stats().crash_recoveries, 1);
    }
}
