//! The file-system syscall engine: bounded operation/parameter pools and
//! operation execution.
//!
//! The paper's engine is a Promela `do ... od` loop whose entries issue
//! file-system operations with parameters drawn from a predefined bounded
//! pool (§4). Because exploration is bounded, so is the state space. The
//! engine issues *meta-operations* where a bare syscall would depend on
//! kernel state that remounting destroys: `create_file` creates then closes;
//! `write_file` opens, writes, and closes.
//!
//! Both valid and invalid sequences arise naturally (e.g. `unlink` of a
//! never-created path): invalid ones exercise error paths, "where bugs often
//! lurk" (§2), and their errnos are compared across file systems like any
//! other result.

use vfs::{
    AccessMode, Errno, FileMode, FileSystem, FileType, FsCapabilities, OpenFlags, VfsResult,
    XattrFlags,
};

/// One nondeterministic operation with concrete parameters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FsOp {
    /// Meta-op: `creat(path, mode)` then `close` (paper §4).
    CreateFile {
        /// Target path.
        path: String,
        /// Permission bits.
        mode: u16,
    },
    /// Meta-op: `open`, `lseek(offset)`, `write(size deterministic bytes)`,
    /// `close`.
    WriteFile {
        /// Target path.
        path: String,
        /// Absolute write offset.
        offset: u64,
        /// Bytes written.
        size: u64,
        /// Seed for the deterministic data pattern.
        seed: u8,
    },
    /// `truncate(path, size)`.
    Truncate {
        /// Target path.
        path: String,
        /// New size.
        size: u64,
    },
    /// `mkdir(path, mode)`.
    Mkdir {
        /// Target path.
        path: String,
        /// Permission bits.
        mode: u16,
    },
    /// `rmdir(path)`.
    Rmdir {
        /// Target path.
        path: String,
    },
    /// `unlink(path)`.
    Unlink {
        /// Target path.
        path: String,
    },
    /// `rename(src, dst)`.
    Rename {
        /// Source path.
        src: String,
        /// Destination path.
        dst: String,
    },
    /// `link(existing, new)`.
    Hardlink {
        /// Existing file.
        src: String,
        /// New link path.
        dst: String,
    },
    /// `symlink(target, linkpath)`.
    Symlink {
        /// Link target (stored verbatim).
        target: String,
        /// Where the link is created.
        linkpath: String,
    },
    /// Meta-op: `open`, `lseek`, `read(size)`, `close`; the data read is part
    /// of the compared outcome.
    ReadFile {
        /// Target path.
        path: String,
        /// Absolute read offset.
        offset: u64,
        /// Bytes to read.
        size: u64,
    },
    /// `lstat(path)`; the important attributes are compared.
    Stat {
        /// Target path.
        path: String,
    },
    /// `getdents(path)`; entries are sorted before comparison (§3.4).
    Getdents {
        /// Target path.
        path: String,
    },
    /// `chmod(path, mode)`.
    Chmod {
        /// Target path.
        path: String,
        /// New permission bits.
        mode: u16,
    },
    /// `setxattr(path, name, value)`.
    SetXattr {
        /// Target path.
        path: String,
        /// Attribute name.
        name: String,
        /// Seed for the deterministic value bytes.
        seed: u8,
    },
    /// `removexattr(path, name)`.
    RemoveXattr {
        /// Target path.
        path: String,
        /// Attribute name.
        name: String,
    },
    /// `access(path, R_OK|W_OK)`.
    Access {
        /// Target path.
        path: String,
    },
    /// Pseudo-op: a power cut and reboot between operations. All in-memory
    /// file-system state and unflushed device writes are lost, then every
    /// target remounts and its recovery runs (the crash oracle checks the
    /// recovered state is prefix-consistent). Only offered by the harness
    /// when crash exploration is enabled and every target supports it.
    Crash,
    /// Pseudo-op: run every target's scan-and-repair fsck between
    /// operations. The fsck oracle checks the repair changed nothing on a
    /// healthy volume, converged to the same abstract state on every
    /// target, and is idempotent (a second run right after reports clean).
    /// Only offered by the harness when fsck exploration is enabled and
    /// every target supports it.
    Fsck,
}

impl FsOp {
    /// Short operation name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            FsOp::CreateFile { .. } => "create_file",
            FsOp::WriteFile { .. } => "write_file",
            FsOp::Truncate { .. } => "truncate",
            FsOp::Mkdir { .. } => "mkdir",
            FsOp::Rmdir { .. } => "rmdir",
            FsOp::Unlink { .. } => "unlink",
            FsOp::Rename { .. } => "rename",
            FsOp::Hardlink { .. } => "link",
            FsOp::Symlink { .. } => "symlink",
            FsOp::ReadFile { .. } => "read_file",
            FsOp::Stat { .. } => "stat",
            FsOp::Getdents { .. } => "getdents",
            FsOp::Chmod { .. } => "chmod",
            FsOp::SetXattr { .. } => "setxattr",
            FsOp::RemoveXattr { .. } => "removexattr",
            FsOp::Access { .. } => "access",
            FsOp::Crash => "crash",
            FsOp::Fsck => "fsck",
        }
    }

    /// Whether the operation can mutate file-system state (read-only ops
    /// need no state checkpointing afterwards).
    pub fn is_mutation(&self) -> bool {
        !matches!(
            self,
            FsOp::ReadFile { .. } | FsOp::Stat { .. } | FsOp::Getdents { .. } | FsOp::Access { .. }
        )
    }

    /// Paths this operation touches — the conflict footprint used by
    /// partial-order reduction.
    pub fn touched_paths(&self) -> Vec<&str> {
        match self {
            FsOp::CreateFile { path, .. }
            | FsOp::WriteFile { path, .. }
            | FsOp::Truncate { path, .. }
            | FsOp::Mkdir { path, .. }
            | FsOp::Rmdir { path }
            | FsOp::Unlink { path }
            | FsOp::ReadFile { path, .. }
            | FsOp::Stat { path }
            | FsOp::Getdents { path }
            | FsOp::Chmod { path, .. }
            | FsOp::SetXattr { path, .. }
            | FsOp::RemoveXattr { path, .. }
            | FsOp::Access { path } => vec![path],
            FsOp::Rename { src, dst } | FsOp::Hardlink { src, dst } => vec![src, dst],
            FsOp::Symlink { target, linkpath } => vec![target, linkpath],
            // A crash touches *everything* unsynced; it has no path
            // footprint, and the harness's independence relation
            // special-cases it as dependent on every operation. Fsck
            // likewise scans and may rewrite the whole volume.
            FsOp::Crash | FsOp::Fsck => Vec::new(),
        }
    }

    /// Whether the capability set allows this op.
    pub fn allowed_by(&self, caps: FsCapabilities) -> bool {
        match self {
            FsOp::Rename { .. } => caps.rename,
            FsOp::Hardlink { .. } => caps.hardlink,
            FsOp::Symlink { .. } => caps.symlink,
            FsOp::SetXattr { .. } | FsOp::RemoveXattr { .. } => caps.xattr,
            FsOp::Access { .. } => caps.access,
            _ => true,
        }
    }
}

impl std::fmt::Display for FsOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsOp::CreateFile { path, mode } => write!(f, "create_file({path}, {mode:04o})"),
            FsOp::WriteFile {
                path,
                offset,
                size,
                seed,
            } => write!(
                f,
                "write_file({path}, off={offset}, len={size}, seed={seed})"
            ),
            FsOp::Truncate { path, size } => write!(f, "truncate({path}, {size})"),
            FsOp::Mkdir { path, mode } => write!(f, "mkdir({path}, {mode:04o})"),
            FsOp::Rmdir { path } => write!(f, "rmdir({path})"),
            FsOp::Unlink { path } => write!(f, "unlink({path})"),
            FsOp::Rename { src, dst } => write!(f, "rename({src}, {dst})"),
            FsOp::Hardlink { src, dst } => write!(f, "link({src}, {dst})"),
            FsOp::Symlink { target, linkpath } => write!(f, "symlink({target}, {linkpath})"),
            FsOp::ReadFile { path, offset, size } => {
                write!(f, "read_file({path}, off={offset}, len={size})")
            }
            FsOp::Stat { path } => write!(f, "stat({path})"),
            FsOp::Getdents { path } => write!(f, "getdents({path})"),
            FsOp::Chmod { path, mode } => write!(f, "chmod({path}, {mode:04o})"),
            FsOp::SetXattr { path, name, seed } => {
                write!(f, "setxattr({path}, {name}, seed={seed})")
            }
            FsOp::RemoveXattr { path, name } => write!(f, "removexattr({path}, {name})"),
            FsOp::Access { path } => write!(f, "access({path}, R_OK|W_OK)"),
            FsOp::Crash => write!(f, "crash"),
            FsOp::Fsck => write!(f, "fsck"),
        }
    }
}

/// The observable outcome of one operation — what the integrity check
/// compares across file systems (return values, error codes, data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutcome {
    /// Success with no interesting payload.
    Ok,
    /// Success returning data (read contents).
    Data(Vec<u8>),
    /// Success returning comparable stat attributes
    /// `(type char, mode, nlink, uid, gid, size or None for dirs)`.
    Attrs {
        /// File type character.
        ftype: char,
        /// Permission bits.
        mode: u16,
        /// Link count.
        nlink: u32,
        /// Owner uid/gid.
        owner: (u32, u32),
        /// Size; `None` for directories (implementation defined — §3.4).
        size: Option<u64>,
    },
    /// Success returning sorted directory entries `(name, type char)`.
    Entries(Vec<(String, char)>),
    /// Success returning a symlink target or xattr value.
    Bytes(Vec<u8>),
    /// Failure with an errno.
    Err(Errno),
}

impl OpOutcome {
    fn from_result<T>(r: VfsResult<T>, map: impl FnOnce(T) -> OpOutcome) -> OpOutcome {
        match r {
            Ok(v) => map(v),
            Err(e) => OpOutcome::Err(e),
        }
    }
}

/// Deterministic data pattern for writes: `size` bytes derived from `seed`.
pub fn pattern(seed: u8, size: u64) -> Vec<u8> {
    (0..size)
        .map(|i| {
            (seed as u64)
                .wrapping_mul(131)
                .wrapping_add(i.wrapping_mul(31)) as u8
        })
        .collect()
}

/// Executes `op` against one file system, translating meta-operations into
/// their syscall sequences and collecting the comparable outcome.
///
/// Entry lists are sorted (§3.4 workaround) and the names on `exceptions`
/// are filtered out of directory listings; directory sizes are suppressed.
pub fn execute(fs: &mut dyn FileSystem, op: &FsOp, exceptions: &[String]) -> OpOutcome {
    execute_with(fs, op, exceptions, true)
}

/// [`execute`] with the §3.4 getdents-sorting workaround toggleable —
/// `sort_entries = false` reintroduces the entry-order false positive for
/// the demonstration benchmark.
pub fn execute_with(
    fs: &mut dyn FileSystem,
    op: &FsOp,
    exceptions: &[String],
    sort_entries: bool,
) -> OpOutcome {
    match op {
        FsOp::CreateFile { path, mode } => match fs.create(path, FileMode::new(*mode)) {
            Ok(fd) => OpOutcome::from_result(fs.close(fd), |_| OpOutcome::Ok),
            Err(e) => OpOutcome::Err(e),
        },
        FsOp::WriteFile {
            path,
            offset,
            size,
            seed,
        } => {
            let fd = match fs.open(path, OpenFlags::write_only(), FileMode::REG_DEFAULT) {
                Ok(fd) => fd,
                Err(e) => return OpOutcome::Err(e),
            };
            let res = fs
                .lseek(fd, *offset)
                .and_then(|_| fs.write(fd, &pattern(*seed, *size)));
            let close = fs.close(fd);
            match (res, close) {
                (Ok(_), Ok(())) => OpOutcome::Ok,
                (Err(e), _) | (_, Err(e)) => OpOutcome::Err(e),
            }
        }
        FsOp::Truncate { path, size } => {
            OpOutcome::from_result(fs.truncate(path, *size), |_| OpOutcome::Ok)
        }
        FsOp::Mkdir { path, mode } => {
            OpOutcome::from_result(fs.mkdir(path, FileMode::new(*mode)), |_| OpOutcome::Ok)
        }
        FsOp::Rmdir { path } => OpOutcome::from_result(fs.rmdir(path), |_| OpOutcome::Ok),
        FsOp::Unlink { path } => OpOutcome::from_result(fs.unlink(path), |_| OpOutcome::Ok),
        FsOp::Rename { src, dst } => OpOutcome::from_result(fs.rename(src, dst), |_| OpOutcome::Ok),
        FsOp::Hardlink { src, dst } => OpOutcome::from_result(fs.link(src, dst), |_| OpOutcome::Ok),
        FsOp::Symlink { target, linkpath } => {
            OpOutcome::from_result(fs.symlink(target, linkpath), |_| OpOutcome::Ok)
        }
        FsOp::ReadFile { path, offset, size } => {
            let fd = match fs.open(path, OpenFlags::read_only(), FileMode::REG_DEFAULT) {
                Ok(fd) => fd,
                Err(e) => return OpOutcome::Err(e),
            };
            let mut buf = vec![0u8; *size as usize];
            let res = fs.lseek(fd, *offset).and_then(|_| fs.read(fd, &mut buf));
            let close = fs.close(fd);
            match (res, close) {
                (Ok(n), Ok(())) => {
                    buf.truncate(n);
                    OpOutcome::Data(buf)
                }
                (Err(e), _) | (_, Err(e)) => OpOutcome::Err(e),
            }
        }
        FsOp::Stat { path } => OpOutcome::from_result(fs.stat(path), |st| OpOutcome::Attrs {
            ftype: st.ftype.as_char(),
            mode: st.mode.bits(),
            nlink: st.nlink,
            owner: (st.uid, st.gid),
            // Directory sizes are implementation defined: ignored (§3.4).
            size: if st.ftype == FileType::Directory {
                None
            } else {
                Some(st.size)
            },
        }),
        FsOp::Getdents { path } => OpOutcome::from_result(fs.getdents(path), |mut entries| {
            // Sort and filter special entries before comparing (§3.4).
            entries.retain(|e| !exceptions.contains(&e.name));
            let mut names: Vec<(String, char)> = entries
                .into_iter()
                .map(|e| (e.name, e.ftype.as_char()))
                .collect();
            if sort_entries {
                names.sort();
            }
            OpOutcome::Entries(names)
        }),
        FsOp::Chmod { path, mode } => {
            OpOutcome::from_result(fs.chmod(path, FileMode::new(*mode)), |_| OpOutcome::Ok)
        }
        FsOp::SetXattr { path, name, seed } => OpOutcome::from_result(
            fs.setxattr(path, name, &pattern(*seed, 16), XattrFlags::Any),
            |_| OpOutcome::Ok,
        ),
        FsOp::RemoveXattr { path, name } => {
            OpOutcome::from_result(fs.removexattr(path, name), |_| OpOutcome::Ok)
        }
        FsOp::Access { path } => {
            let mode = AccessMode {
                read: true,
                write: true,
                exec: false,
            };
            OpOutcome::from_result(fs.access(path, mode), |_| OpOutcome::Ok)
        }
        // The harness intercepts `Crash` before per-file-system execution
        // (it is a whole-system event, not a syscall); against a single
        // file system it is a successful no-op.
        FsOp::Crash | FsOp::Fsck => OpOutcome::Ok,
    }
}

/// Bounded parameter pools from which the operation set is generated.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Candidate file paths.
    pub files: Vec<String>,
    /// Candidate directory paths.
    pub dirs: Vec<String>,
    /// Candidate write/truncate sizes.
    pub sizes: Vec<u64>,
    /// Candidate write/read offsets.
    pub offsets: Vec<u64>,
    /// Candidate permission modes.
    pub modes: Vec<u16>,
    /// Candidate xattr names.
    pub xattr_names: Vec<String>,
    /// Data-pattern seeds.
    pub seeds: Vec<u8>,
}

impl PoolConfig {
    /// A small pool for exhaustive DFS within tests: 2 files, 1 directory,
    /// tiny sizes.
    pub fn small() -> Self {
        PoolConfig {
            files: vec!["/f0".into(), "/f1".into(), "/d0/f2".into()],
            dirs: vec!["/d0".into()],
            sizes: vec![0, 10],
            offsets: vec![0],
            modes: vec![0o644],
            xattr_names: vec!["user.m0".into()],
            seeds: vec![1],
        }
    }

    /// The default pool: a few files across two directories, several sizes
    /// and offsets — comparable to the paper's bounded parameter space.
    pub fn medium() -> Self {
        PoolConfig {
            files: vec![
                "/f0".into(),
                "/f1".into(),
                "/d0/f2".into(),
                "/d0/d1/f3".into(),
            ],
            dirs: vec!["/d0".into(), "/d0/d1".into(), "/d2".into()],
            sizes: vec![0, 1, 100, 4096],
            offsets: vec![0, 50, 5000],
            modes: vec![0o644, 0o400],
            xattr_names: vec!["user.m0".into(), "user.m1".into()],
            seeds: vec![1, 2],
        }
    }

    /// Generates the full bounded operation set (before capability
    /// filtering).
    pub fn ops(&self) -> Vec<FsOp> {
        let mut out = Vec::new();
        for f in &self.files {
            for &m in &self.modes {
                out.push(FsOp::CreateFile {
                    path: f.clone(),
                    mode: m,
                });
            }
            for &size in &self.sizes {
                for &offset in &self.offsets {
                    for &seed in &self.seeds {
                        out.push(FsOp::WriteFile {
                            path: f.clone(),
                            offset,
                            size,
                            seed,
                        });
                    }
                    out.push(FsOp::ReadFile {
                        path: f.clone(),
                        offset,
                        size: size.max(16),
                    });
                }
                out.push(FsOp::Truncate {
                    path: f.clone(),
                    size,
                });
            }
            out.push(FsOp::Unlink { path: f.clone() });
            out.push(FsOp::Stat { path: f.clone() });
            for &m in &self.modes {
                out.push(FsOp::Chmod {
                    path: f.clone(),
                    mode: m,
                });
            }
            for name in &self.xattr_names {
                for &seed in &self.seeds {
                    out.push(FsOp::SetXattr {
                        path: f.clone(),
                        name: name.clone(),
                        seed,
                    });
                }
                out.push(FsOp::RemoveXattr {
                    path: f.clone(),
                    name: name.clone(),
                });
            }
            out.push(FsOp::Access { path: f.clone() });
        }
        for d in &self.dirs {
            for &m in &self.modes {
                out.push(FsOp::Mkdir {
                    path: d.clone(),
                    mode: m,
                });
            }
            out.push(FsOp::Rmdir { path: d.clone() });
            out.push(FsOp::Getdents { path: d.clone() });
            out.push(FsOp::Stat { path: d.clone() });
        }
        out.push(FsOp::Getdents { path: "/".into() });
        // Renames and links between the first few files/dirs.
        for (i, src) in self.files.iter().enumerate() {
            for dst in self.files.iter().skip(i + 1) {
                out.push(FsOp::Rename {
                    src: src.clone(),
                    dst: dst.clone(),
                });
                out.push(FsOp::Hardlink {
                    src: src.clone(),
                    dst: dst.clone(),
                });
            }
        }
        if let (Some(f), Some(l)) = (self.files.first(), self.files.get(1)) {
            out.push(FsOp::Symlink {
                target: f.clone(),
                linkpath: format!("{l}.ln"),
            });
            out.push(FsOp::Unlink {
                path: format!("{l}.ln"),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifs::VeriFs;

    #[test]
    fn pattern_is_deterministic_and_seed_sensitive() {
        assert_eq!(pattern(1, 16), pattern(1, 16));
        assert_ne!(pattern(1, 16), pattern(2, 16));
        assert_eq!(pattern(3, 0).len(), 0);
    }

    #[test]
    fn pool_generates_bounded_set() {
        let ops = PoolConfig::small().ops();
        assert!(!ops.is_empty());
        let again = PoolConfig::small().ops();
        assert_eq!(ops, again, "pool generation is deterministic");
        // Bounded: every path is from the pool.
        for op in &ops {
            for p in op.touched_paths() {
                assert!(p.starts_with('/'), "{op}");
            }
        }
    }

    #[test]
    fn capability_filter_removes_unsupported() {
        let caps_v1 = VeriFs::v1().capabilities();
        let ops = PoolConfig::medium().ops();
        let filtered: Vec<_> = ops.iter().filter(|o| o.allowed_by(caps_v1)).collect();
        assert!(filtered.iter().all(|o| !matches!(
            o,
            FsOp::Rename { .. }
                | FsOp::Hardlink { .. }
                | FsOp::Symlink { .. }
                | FsOp::SetXattr { .. }
                | FsOp::RemoveXattr { .. }
                | FsOp::Access { .. }
        )));
        assert!(filtered.len() < ops.len());
    }

    #[test]
    fn execute_create_write_read_roundtrip() {
        let mut fs = VeriFs::v2();
        use vfs::FileSystem;
        fs.mount().unwrap();
        let create = FsOp::CreateFile {
            path: "/f0".into(),
            mode: 0o644,
        };
        assert_eq!(execute(&mut fs, &create, &[]), OpOutcome::Ok);
        let write = FsOp::WriteFile {
            path: "/f0".into(),
            offset: 0,
            size: 10,
            seed: 1,
        };
        assert_eq!(execute(&mut fs, &write, &[]), OpOutcome::Ok);
        let read = FsOp::ReadFile {
            path: "/f0".into(),
            offset: 0,
            size: 16,
        };
        assert_eq!(
            execute(&mut fs, &read, &[]),
            OpOutcome::Data(pattern(1, 10))
        );
    }

    #[test]
    fn execute_invalid_sequences_report_errnos() {
        let mut fs = VeriFs::v2();
        use vfs::FileSystem;
        fs.mount().unwrap();
        let unlink = FsOp::Unlink {
            path: "/nope".into(),
        };
        assert_eq!(
            execute(&mut fs, &unlink, &[]),
            OpOutcome::Err(Errno::ENOENT)
        );
        let write = FsOp::WriteFile {
            path: "/nope".into(),
            offset: 0,
            size: 4,
            seed: 0,
        };
        assert_eq!(execute(&mut fs, &write, &[]), OpOutcome::Err(Errno::ENOENT));
    }

    #[test]
    fn getdents_outcome_is_sorted_and_filtered() {
        let mut fs = VeriFs::v2();
        use vfs::FileSystem;
        fs.mount().unwrap();
        for p in ["/zz", "/aa", "/lost+found"] {
            execute(
                &mut fs,
                &FsOp::CreateFile {
                    path: p.into(),
                    mode: 0o644,
                },
                &[],
            );
        }
        let out = execute(
            &mut fs,
            &FsOp::Getdents { path: "/".into() },
            &["lost+found".to_string()],
        );
        assert_eq!(
            out,
            OpOutcome::Entries(vec![("aa".into(), '-'), ("zz".into(), '-')])
        );
    }

    #[test]
    fn stat_outcome_suppresses_dir_size() {
        let mut fs = VeriFs::v2();
        use vfs::FileSystem;
        fs.mount().unwrap();
        execute(
            &mut fs,
            &FsOp::Mkdir {
                path: "/d".into(),
                mode: 0o755,
            },
            &[],
        );
        execute(
            &mut fs,
            &FsOp::CreateFile {
                path: "/d/x".into(),
                mode: 0o644,
            },
            &[],
        );
        match execute(&mut fs, &FsOp::Stat { path: "/d".into() }, &[]) {
            OpOutcome::Attrs { size, ftype, .. } => {
                assert_eq!(ftype, 'd');
                assert_eq!(size, None, "dir sizes are implementation defined");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn op_metadata_helpers() {
        let op = FsOp::Rename {
            src: "/a".into(),
            dst: "/b".into(),
        };
        assert_eq!(op.name(), "rename");
        assert!(op.is_mutation());
        assert_eq!(op.touched_paths(), vec!["/a", "/b"]);
        assert!(!FsOp::Stat { path: "/a".into() }.is_mutation());
        assert!(op.to_string().contains("/a"));
    }
}

#[cfg(test)]
mod more_pool_tests {
    use super::*;
    use verifs::VeriFs;
    use vfs::FileSystem;

    #[test]
    fn medium_pool_is_substantially_larger_than_small() {
        let small = PoolConfig::small().ops().len();
        let medium = PoolConfig::medium().ops().len();
        assert!(medium > small * 2, "{small} vs {medium}");
    }

    #[test]
    fn execute_with_unsorted_entries_reflects_fs_order() {
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        for name in ["/zz", "/aa"] {
            execute(
                &mut fs,
                &FsOp::CreateFile {
                    path: name.into(),
                    mode: 0o644,
                },
                &[],
            );
        }
        let op = FsOp::Getdents { path: "/".into() };
        // VeriFS returns sorted order natively (BTreeMap), so both calls
        // agree here; the unsorted variant's purpose is to surface orders
        // that differ across implementations (exercised in the
        // false_positives bench against ext/xfs).
        let sorted = execute_with(&mut fs, &op, &[], true);
        let raw = execute_with(&mut fs, &op, &[], false);
        assert_eq!(sorted, raw);
    }

    #[test]
    fn rename_and_symlink_ops_execute_end_to_end() {
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        assert_eq!(
            execute(
                &mut fs,
                &FsOp::CreateFile {
                    path: "/f0".into(),
                    mode: 0o644
                },
                &[]
            ),
            OpOutcome::Ok
        );
        assert_eq!(
            execute(
                &mut fs,
                &FsOp::Rename {
                    src: "/f0".into(),
                    dst: "/f1".into()
                },
                &[]
            ),
            OpOutcome::Ok
        );
        assert_eq!(
            execute(
                &mut fs,
                &FsOp::Symlink {
                    target: "/f1".into(),
                    linkpath: "/ln".into()
                },
                &[]
            ),
            OpOutcome::Ok
        );
        assert_eq!(
            execute(&mut fs, &FsOp::Stat { path: "/f0".into() }, &[]),
            OpOutcome::Err(Errno::ENOENT)
        );
        // Hardlink then stat: nlink visible in the comparable attrs.
        execute(
            &mut fs,
            &FsOp::Hardlink {
                src: "/f1".into(),
                dst: "/f2".into(),
            },
            &[],
        );
        match execute(&mut fs, &FsOp::Stat { path: "/f2".into() }, &[]) {
            OpOutcome::Attrs { nlink, .. } => assert_eq!(nlink, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn xattr_and_access_ops_execute() {
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        execute(
            &mut fs,
            &FsOp::CreateFile {
                path: "/f0".into(),
                mode: 0o644,
            },
            &[],
        );
        assert_eq!(
            execute(
                &mut fs,
                &FsOp::SetXattr {
                    path: "/f0".into(),
                    name: "user.a".into(),
                    seed: 1
                },
                &[]
            ),
            OpOutcome::Ok
        );
        assert_eq!(
            execute(
                &mut fs,
                &FsOp::RemoveXattr {
                    path: "/f0".into(),
                    name: "user.a".into()
                },
                &[]
            ),
            OpOutcome::Ok
        );
        assert_eq!(
            execute(
                &mut fs,
                &FsOp::RemoveXattr {
                    path: "/f0".into(),
                    name: "user.a".into()
                },
                &[]
            ),
            OpOutcome::Err(Errno::ENODATA)
        );
        assert_eq!(
            execute(&mut fs, &FsOp::Access { path: "/f0".into() }, &[]),
            OpOutcome::Ok
        );
        assert_eq!(
            execute(
                &mut fs,
                &FsOp::Access {
                    path: "/gone".into()
                },
                &[]
            ),
            OpOutcome::Err(Errno::ENOENT)
        );
    }

    #[test]
    fn display_round_trips_key_parameters() {
        let ops = PoolConfig::medium().ops();
        for op in &ops {
            let shown = op.to_string();
            // Every touched path appears in the rendering (reports must be
            // actionable).
            for p in op.touched_paths() {
                assert!(shown.contains(p), "{shown} missing {p}");
            }
        }
    }
}
