//! Canonical-iteration helpers for hash containers.
//!
//! `HashMap`/`HashSet` iteration order depends on the per-process
//! `RandomState` seed, so feeding it into anything replay-critical — a
//! fingerprint, a wire encoding, an oracle verdict — makes two otherwise
//! identical runs diverge. Wherever such a container must reach a
//! determinism-critical sink, iterate it through one of these helpers (or
//! collect into a `BTreeMap`/`BTreeSet` first). `mcfs-lint --source`
//! flags the raw iterations and names these helpers in its messages.
//!
//! The helpers borrow: they allocate only a `Vec` of references and sort
//! it, so a digest loop pays one `O(n log n)` sort, not a rebuild of the
//! container.

use std::collections::{HashMap, HashSet};
use std::hash::BuildHasher;

/// The entries of `map`, sorted by key.
pub fn sorted_pairs<K: Ord, V, S: BuildHasher>(map: &HashMap<K, V, S>) -> Vec<(&K, &V)> {
    let mut pairs: Vec<(&K, &V)> = map.iter().collect();
    pairs.sort_by(|a, b| a.0.cmp(b.0));
    pairs
}

/// The keys of `map`, sorted.
pub fn sorted_keys<K: Ord, V, S: BuildHasher>(map: &HashMap<K, V, S>) -> Vec<&K> {
    let mut keys: Vec<&K> = map.keys().collect();
    keys.sort();
    keys
}

/// The items of `set`, sorted.
pub fn sorted_items<T: Ord, S: BuildHasher>(set: &HashSet<T, S>) -> Vec<&T> {
    let mut items: Vec<&T> = set.iter().collect();
    items.sort();
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_and_keys_are_key_sorted() {
        let mut m = HashMap::new();
        for k in [9u32, 1, 5, 3, 7] {
            m.insert(k, k * 10);
        }
        let pairs = sorted_pairs(&m);
        assert_eq!(
            pairs.iter().map(|(k, _)| **k).collect::<Vec<_>>(),
            vec![1, 3, 5, 7, 9]
        );
        assert_eq!(*pairs[0].1, 10);
        assert_eq!(
            sorted_keys(&m).into_iter().copied().collect::<Vec<_>>(),
            vec![1, 3, 5, 7, 9]
        );
    }

    #[test]
    fn set_items_are_sorted() {
        let s: HashSet<&str> = ["pear", "apple", "fig"].into_iter().collect();
        assert_eq!(sorted_items(&s), vec![&"apple", &"fig", &"pear"]);
    }
}
