//! Interleaving-exploration scale: what dynamic partial-order reduction
//! buys on concurrent workloads, and what the full product space costs.
//!
//! For each seeded multi-thread workload the bench explores the complete
//! bounded interleaving space four ways — no POR, sleep sets, persistent
//! sets, both — and reports transitions expanded, distinct terminal
//! states, and throughput. Two acceptance checks run on every case:
//!
//! * **Soundness**: every POR setting reaches the *identical* terminal
//!   final-state set as the full search (reduction must only drop
//!   redundant orders, never outcomes).
//! * **Reduction** (disjoint workloads only): combined sleep + persistent
//!   sets expand **≥3×** fewer transitions than the full search — threads
//!   touching disjoint files are where commutation-based pruning must pay.
//!
//! Output: a human-readable table, then JSON (also written to
//! `BENCH_interleave.json`).
//!
//! Usage: `cargo run --release -p mcfs-bench --bin interleave_scale [--quick]`
//!
//! `--quick` trims thread programs to CI-smoke size.

use std::collections::BTreeSet;
use std::time::Instant;

use blockdev::RamDisk;
use fs_ext::{ExtConfig, ExtFs};
use mcfs::{
    CheckedTarget, CheckpointTarget, FsOp, RemountMode, RemountTarget, ThreadedMcfs,
    ThreadedMcfsConfig,
};
use mcfs_bench::print_table;
use modelcheck::{DfsExplorer, ExploreConfig};
use verifs::VeriFs;
use vfs::FileSystem;

/// One workload: a target factory plus per-thread programs.
struct Case {
    name: &'static str,
    targets: Box<dyn Fn() -> Vec<Box<dyn CheckedTarget>>>,
    programs: Vec<Vec<FsOp>>,
    /// Disjoint-thread workloads must show the ≥3× POR reduction.
    expect_reduction: bool,
}

struct Row {
    name: &'static str,
    threads: usize,
    ops: usize,
    full_transitions: u64,
    sleep_transitions: u64,
    persistent_transitions: u64,
    por_transitions: u64,
    states: usize,
    elapsed_s: f64,
}

impl Row {
    fn reduction(&self) -> f64 {
        self.full_transitions as f64 / self.por_transitions.max(1) as f64
    }

    fn states_per_s(&self) -> f64 {
        self.states as f64 / self.elapsed_s.max(1e-9)
    }
}

fn verifs_pair() -> Vec<Box<dyn CheckedTarget>> {
    let mut a = VeriFs::v2();
    a.mount().unwrap();
    let mut b = VeriFs::v2();
    b.mount().unwrap();
    vec![
        Box::new(CheckpointTarget::new(a)),
        Box::new(CheckpointTarget::new(b)),
    ]
}

fn ext2_single() -> Vec<Box<dyn CheckedTarget>> {
    let disk = RamDisk::new(1024, 256 * 1024).unwrap();
    let fs = ExtFs::format(disk, ExtConfig::ext2()).unwrap();
    vec![Box::new(RemountTarget::new(fs, RemountMode::PerOp))]
}

fn op_create(path: &str) -> FsOp {
    FsOp::CreateFile {
        path: path.into(),
        mode: 0o644,
    }
}

fn op_write(path: &str, seed: u8) -> FsOp {
    FsOp::WriteFile {
        path: path.into(),
        offset: 0,
        size: 8,
        seed,
    }
}

/// `threads` logical threads, each confined to its own file — the
/// workload where every cross-thread pair commutes and POR should
/// collapse the product space toward a single representative order.
fn disjoint_programs(threads: usize, ops_per_thread: usize) -> Vec<Vec<FsOp>> {
    (0..threads)
        .map(|t| {
            let path = format!("/t{t}");
            let mut prog = vec![op_create(&path)];
            if ops_per_thread > 1 {
                prog.push(op_write(&path, t as u8 + 1));
            }
            if ops_per_thread > 2 {
                prog.push(FsOp::Stat { path });
            }
            prog
        })
        .collect()
}

/// Three threads racing one path: the adversarial baseline where almost
/// nothing commutes and POR can prune only a little.
fn racing_programs() -> Vec<Vec<FsOp>> {
    vec![
        vec![op_create("/a"), op_write("/a", 1)],
        vec![FsOp::Truncate {
            path: "/a".into(),
            size: 2,
        }],
        vec![FsOp::Stat { path: "/a".into() }],
    ]
}

/// Explores the case exhaustively under one POR setting.
fn explore(case: &Case, por: bool, por_persistent: bool) -> (BTreeSet<u128>, u64) {
    let mut sys = ThreadedMcfs::new(
        (case.targets)(),
        case.programs.clone(),
        ThreadedMcfsConfig::default(),
    )
    .expect("threaded harness");
    let depth: usize = case.programs.iter().map(Vec::len).sum::<usize>() + 2;
    let report = DfsExplorer::new(ExploreConfig {
        max_depth: depth,
        por,
        por_persistent,
        ..ExploreConfig::default()
    })
    .run(&mut sys);
    assert!(
        report.violations.is_empty(),
        "{}: clean workload must not violate: {:?}",
        case.name,
        report.violations
    );
    (sys.final_states().clone(), report.stats.ops_executed)
}

fn run_case(case: &Case) -> Row {
    let start = Instant::now();
    let (base, full) = explore(case, false, false);
    let mut by_setting = [0u64; 3];
    for (k, (por, pp)) in [(true, false), (false, true), (true, true)]
        .into_iter()
        .enumerate()
    {
        let (states, ops) = explore(case, por, pp);
        assert_eq!(
            states, base,
            "{}: POR (sleep={por}, persistent={pp}) changed the final-state set",
            case.name
        );
        assert!(
            ops <= full,
            "{}: POR expanded more transitions than the full search",
            case.name
        );
        by_setting[k] = ops;
    }
    let row = Row {
        name: case.name,
        threads: case.programs.len(),
        ops: case.programs.iter().map(Vec::len).sum(),
        full_transitions: full,
        sleep_transitions: by_setting[0],
        persistent_transitions: by_setting[1],
        por_transitions: by_setting[2],
        states: base.len(),
        elapsed_s: start.elapsed().as_secs_f64(),
    };
    if case.expect_reduction {
        assert!(
            row.reduction() >= 3.0,
            "{}: acceptance requires >=3x fewer transitions with POR, got {:.1}x ({} -> {})",
            row.name,
            row.reduction(),
            row.full_transitions,
            row.por_transitions
        );
    }
    row
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let ops_per_thread = if quick { 2 } else { 3 };

    let mut cases = vec![
        Case {
            name: "verifs-disjoint",
            targets: Box::new(verifs_pair),
            programs: disjoint_programs(3, ops_per_thread),
            expect_reduction: true,
        },
        Case {
            name: "verifs-racing",
            targets: Box::new(verifs_pair),
            programs: racing_programs(),
            expect_reduction: false,
        },
    ];
    if !quick {
        cases.push(Case {
            name: "ext2-disjoint",
            targets: Box::new(ext2_single),
            programs: disjoint_programs(3, 2),
            expect_reduction: true,
        });
    }

    let rows: Vec<Row> = cases.iter().map(run_case).collect();

    let table: Vec<(String, String)> = rows
        .iter()
        .map(|r| {
            (
                r.name.to_string(),
                format!(
                    "{}t/{:>2}ops  {:>5} -> {:>4} transitions ({:>4.1}x)  {:>3} states  {:>7.0} st/s",
                    r.threads,
                    r.ops,
                    r.full_transitions,
                    r.por_transitions,
                    r.reduction(),
                    r.states,
                    r.states_per_s(),
                ),
            )
        })
        .collect();
    print_table("Interleaving exploration (full vs POR)", &table);

    let runs: String = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"case\": \"{}\", \"threads\": {}, \"ops\": {}, \
                 \"full_transitions\": {}, \"sleep_transitions\": {}, \
                 \"persistent_transitions\": {}, \"por_transitions\": {}, \
                 \"reduction\": {:.2}, \"final_states\": {}, \
                 \"final_state_sets_identical\": true, \"states_per_s\": {:.0}}}",
                r.name,
                r.threads,
                r.ops,
                r.full_transitions,
                r.sleep_transitions,
                r.persistent_transitions,
                r.por_transitions,
                r.reduction(),
                r.states,
                r.states_per_s(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!("{{\n  \"quick\": {quick},\n  \"runs\": [\n{runs}\n  ]\n}}");
    println!("\n{json}");
    std::fs::write("BENCH_interleave.json", format!("{json}\n"))
        .expect("write BENCH_interleave.json");
}
