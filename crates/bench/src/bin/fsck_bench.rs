//! Repair cost: what does pFSCK-style pass parallelism buy, and what does
//! adding the `Fsck` pseudo-op to the operation pool cost the explorer?
//!
//! **Section 1 — parallel repair speedup (virtual time).** An ext4 image
//! is populated, its derivable metadata (bitmaps, free counters, journal
//! area, dirty flag) scrambled, and the same repair run at 1, 2, 4, and 8
//! workers. The CPU-bound passes (inode scan, link counts) charge a shared
//! virtual clock per worker and cost the maximum over workers, so the
//! speedup is deterministic and machine-independent. The run asserts the
//! headline number: ≥1.5× at 4 workers.
//!
//! **Section 2 — fsck as an explorable operation.** The ext2-vs-ext4
//! pairing is explored under the same DFS budget with and without
//! `fsck_exploration`, comparing states/s and reporting how many repair
//! branches the three fsck oracles (repair safety, convergence,
//! idempotence) checked. Both runs must be violation-free.
//!
//! Output: a human-readable table, then JSON (also written to
//! `BENCH_fsck.json`).
//!
//! Usage: `cargo run --release -p mcfs-bench --bin fsck_bench [ops] [--quick]`

use analyze::{ext_derivable_corruptor, XorShift64};
use blockdev::{Clock, DeviceSnapshot, LatencyModel, RamDisk};
use fs_ext::{ExtConfig, ExtFs, FsckOptions};
use mcfs::{FsckStats, McfsConfig, PoolConfig, RemountMode};
use mcfs_bench::{measure_dfs, pair_ext2_ext4_cfg, print_table};
use vfs::{DeviceBacked, FileMode, FileSystem};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn snapshot_like(template: &DeviceSnapshot, img: &[u8]) -> DeviceSnapshot {
    let cs = template.chunk_size();
    let chunks = img.chunks(cs).map(|c| c.to_vec()).collect();
    DeviceSnapshot::from_chunks(template.block_size(), cs, chunks).expect("same geometry")
}

/// A populated ext4 volume with scrambled derivable metadata: real repair
/// work for every pass.
fn dirty_image(device_bytes: u64, files: usize) -> (ExtFs<RamDisk>, DeviceSnapshot) {
    let disk = RamDisk::new(1024, device_bytes).unwrap();
    // Scale the inode table with the workload: the inode scan and
    // link-count passes (the parallel section) walk every slot.
    let config = ExtConfig {
        inodes_count: (files as u32 * 2).clamp(64, 4096),
        ..ExtConfig::ext4()
    };
    let mut fs = ExtFs::format(disk, config).unwrap();
    fs.mount().unwrap();
    for d in 0..4 {
        fs.mkdir(&format!("/d{d}"), FileMode::DIR_DEFAULT).unwrap();
    }
    for i in 0..files {
        let fd = fs
            .create(&format!("/d{}/f{i}", i % 4), FileMode::REG_DEFAULT)
            .unwrap();
        fs.write(fd, &[i as u8; 200]).unwrap();
        fs.close(fd).unwrap();
    }
    fs.unmount().unwrap();
    let snap = fs.snapshot_device().unwrap();
    let mut img = snap.to_vec();
    let mut rng = XorShift64::new(0x0f5c_bec4);
    ext_derivable_corruptor(&mut img, &mut rng);
    let dirty = snapshot_like(&snap, &img);
    (fs, dirty)
}

struct RepairRow {
    workers: usize,
    virtual_ns: u64,
    repairs_made: u64,
    speedup: f64,
}

fn measure_repair(device_bytes: u64, files: usize) -> Vec<RepairRow> {
    let (mut fs, dirty) = dirty_image(device_bytes, files);
    let mut rows: Vec<RepairRow> = Vec::new();
    for &workers in &WORKER_COUNTS {
        fs.restore_device(&dirty).unwrap();
        let clock = Clock::new();
        let start = clock.now_ns();
        let report = fs
            .fsck_with(&FsckOptions::parallel(workers, clock.clone()))
            .expect("repair of derivable corruption");
        let virtual_ns = clock.now_ns() - start;
        assert!(
            report.repairs_made > 0,
            "scrambled metadata must need repairs"
        );
        // Every worker count converges to the same image: a second run
        // finds nothing (the idempotence oracle, at bench scale).
        assert!(
            fs.fsck_with(&FsckOptions::parallel(workers, Clock::new()))
                .expect("second run")
                .is_clean(),
            "repair at {workers} workers is not a fixed point"
        );
        let speedup = rows
            .first()
            .map(|base| base.virtual_ns as f64 / virtual_ns.max(1) as f64)
            .unwrap_or(1.0);
        rows.push(RepairRow {
            workers,
            virtual_ns,
            repairs_made: report.repairs_made,
            speedup,
        });
    }
    rows
}

struct ExploreRow {
    fsck_exploration: bool,
    ops_per_sec: f64,
    states_per_sec: f64,
    states_new: u64,
    fsck: FsckStats,
}

fn measure_explore(fsck_exploration: bool, budget: u64) -> ExploreRow {
    let cfg = McfsConfig {
        pool: PoolConfig::small(),
        fsck_exploration,
        ..McfsConfig::default()
    };
    let mut pairing =
        pair_ext2_ext4_cfg(LatencyModel::ram(), RemountMode::PerOp, cfg).expect("pairing");
    let (ops_per_sec, report) = measure_dfs(&mut pairing, budget);
    assert!(
        report.violations.is_empty(),
        "fsck exploration over correct file systems must be violation-free, \
         found: {}",
        report.violations[0]
    );
    let fsck = pairing.harness.fsck_stats().unwrap_or_default();
    if fsck_exploration {
        assert!(fsck.fscks > 0, "no fsck branches explored");
    }
    let states_per_sec =
        ops_per_sec * report.stats.states_new as f64 / report.stats.ops_executed.max(1) as f64;
    ExploreRow {
        fsck_exploration,
        ops_per_sec,
        states_per_sec,
        states_new: report.stats.states_new,
        fsck,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let budget: u64 = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(if quick { 200 } else { 1_200 });
    let (device_bytes, files) = if quick {
        (512 * 1024, 24)
    } else {
        (2 * 1024 * 1024, 96)
    };

    let repair_rows = measure_repair(device_bytes, files);
    let at4 = repair_rows
        .iter()
        .find(|r| r.workers == 4)
        .expect("4-worker row");
    assert!(
        at4.speedup >= 1.5,
        "parallel repair speedup at 4 workers is {:.2}x, need >= 1.5x",
        at4.speedup
    );
    let repair_table: Vec<(String, String)> = repair_rows
        .iter()
        .map(|r| {
            (
                format!("{} worker(s)", r.workers),
                format!(
                    "{:>12} virtual ns  {:>5.2}x  ({} repairs)",
                    r.virtual_ns, r.speedup, r.repairs_made
                ),
            )
        })
        .collect();
    print_table("Parallel repair (virtual time)", &repair_table);

    let explore_rows: Vec<ExploreRow> = [false, true]
        .iter()
        .map(|&on| measure_explore(on, budget))
        .collect();
    let explore_table: Vec<(String, String)> = explore_rows
        .iter()
        .map(|r| {
            (
                format!(
                    "ext2-vs-ext4 [fsck {}]",
                    if r.fsck_exploration { "on " } else { "off" }
                ),
                format!(
                    "{:>8.1} states/s  {:>8.1} ops/s  {} states, {} fscks ({} repairs)",
                    r.states_per_sec,
                    r.ops_per_sec,
                    r.states_new,
                    r.fsck.fscks,
                    r.fsck.repairs_made
                ),
            )
        })
        .collect();
    print_table("Fsck exploration throughput", &explore_table);

    let repair_json: String = repair_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"workers\": {}, \"virtual_ns\": {}, \"repairs_made\": {}, \
                 \"speedup\": {:.2}}}",
                r.workers, r.virtual_ns, r.repairs_made, r.speedup
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let explore_json: String = explore_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"pairing\": \"ext2-vs-ext4-ram\", \"fsck_exploration\": {}, \
                 \"ops_per_sec\": {:.1}, \"states_per_sec\": {:.1}, \"states_new\": {}, \
                 \"fscks\": {}, \"repairs_made\": {}, \"violations\": 0}}",
                r.fsck_exploration,
                r.ops_per_sec,
                r.states_per_sec,
                r.states_new,
                r.fsck.fscks,
                r.fsck.repairs_made
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"budget_ops\": {budget},\n  \"files\": {files},\n  \
         \"speedup\": {:.2},\n  \"repair\": [\n{repair_json}\n  ],\n  \
         \"exploration\": [\n{explore_json}\n  ]\n}}",
        at4.speedup
    );
    println!("\n{json}");
    std::fs::write("BENCH_fsck.json", format!("{json}\n")).expect("write BENCH_fsck.json");
}
