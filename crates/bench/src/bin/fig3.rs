//! Figure 3: operation rate and swap usage over a long MCFS run on VeriFS.
//!
//! The paper ran MCFS on VeriFS1 for two weeks: ~1,500 ops/s for the first
//! three days, then a sharp dip when SPIN resized its visited-state hash
//! table, then a gradual decline as checkpointed states spilled to swap,
//! and a rebound near day 13–14 when the RAM hit rate happened to be high.
//!
//! This binary reruns the experiment in compressed virtual time: the same
//! mechanisms (visited-table resizes, state-store growth, LRU swap) produce
//! the same series shape; the time axis is normalized to 14 "days".
//!
//! Usage: `cargo run --release -p mcfs-bench --bin fig3 [ops]`

use mcfs::PoolConfig;
use mcfs_bench::pair_verifs;
use modelcheck::{ExploreConfig, MemConfig, RandomWalk};

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);
    let mut pairing = pair_verifs(PoolConfig::medium()).expect("pairing");
    let cfg = ExploreConfig {
        max_depth: 25,
        max_ops: budget,
        stop_on_violation: true,
        retain_states: true,
        // Tight scaled budgets so the two-week dynamics appear within the
        // compressed run: small RAM, visited table resizing mid-run.
        mem: MemConfig {
            ram_bytes: 96 << 20,
            swap_bytes: 4 << 30,
            // Page-granular random swap I/O is far slower than streaming.
            swap_ns_per_mib: 20_000_000,
        },
        visited_capacity: 2_048,
        restart_spread: 0.6,
        backtrack_on_match: true,
        seed: 3,
        ..ExploreConfig::default()
    };
    let clock = pairing.clock.clone();
    let windows = 28usize; // half-day samples over 14 days
    let window_ops = (budget / windows as u64).max(1);
    let mut samples: Vec<(u64, u64, u64, u32)> = Vec::new(); // (ops, ns, swap, resizes)
    let mut last_mark = (0u64, clock.now_ns());
    let walk = RandomWalk::new(cfg).with_clock(clock.clone());
    let report = walk.run_observed(&mut pairing.harness, |stats| {
        if stats.ops_executed % window_ops == 0 {
            let now = clock.now_ns();
            samples.push((
                stats.ops_executed - last_mark.0,
                now - last_mark.1,
                stats.swapped_bytes,
                stats.resize_events,
            ));
            last_mark = (stats.ops_executed, now);
        }
    });

    println!("== Figure 3: rate and swap over a long VeriFS run ==");
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "day", "ops/s", "swap (MiB)", "resizes"
    );
    let total_ns: u64 = samples.iter().map(|s| s.1).sum::<u64>().max(1);
    let mut elapsed = 0u64;
    for (ops, ns, swap, resizes) in &samples {
        elapsed += ns;
        let day = 14.0 * elapsed as f64 / total_ns as f64;
        let rate = *ops as f64 * 1e9 / (*ns).max(1) as f64;
        let bar = "#".repeat((rate / 120.0) as usize);
        println!(
            "{day:>6.1} {rate:>12.1} {:>12.1} {resizes:>10}  {bar}",
            *swap as f64 / (1 << 20) as f64
        );
    }
    println!(
        "\nrun: {} ops, {} states, {} resize events, final hit rate {:.2}",
        report.stats.ops_executed,
        report.stats.states_new,
        report.stats.resize_events,
        report.stats.hit_rate
    );
    println!("paper shape: ~1500 ops/s plateau, resize dip around day 3, gradual");
    println!("decline as states spill to swap, partial rebound near day 13-14.");
    assert!(
        report.violations.is_empty(),
        "soak must be violation-free: {}",
        report.violations[0]
    );
}
