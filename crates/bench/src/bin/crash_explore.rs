//! Crash-consistency exploration cost: what does adding the
//! nondeterministic `Crash` pseudo-op to the operation pool do to
//! exploration throughput?
//!
//! Each pairing is explored twice under the same DFS budget — once with the
//! plain pool, once with crash exploration on — and the states/s rates are
//! compared in virtual time. The crash runs double as the acceptance check:
//! both pairings recover prefix-consistently from every injected power cut,
//! so the runs must be violation-free while reporting a non-zero crash
//! count.
//!
//! A second section compares the two partial-order-reduction relations —
//! the signature-derived independence relation against the legacy
//! path-prefix heuristic — by running the DFS to exhaustion at a small
//! depth under both. The derived relation must explore no more states
//! than the heuristic (it is a refinement: strictly more commuting pairs,
//! minus the aliasing-unsound ones).
//!
//! Output: a human-readable table, then JSON (also written to
//! `BENCH_crash.json`).
//!
//! Usage: `cargo run --release -p mcfs-bench --bin crash_explore [ops] [--quick]`
//!
//! `--quick` shrinks the budget to CI-smoke size.
//!
//! # Kill-and-resume mode
//!
//! `crash_explore --snapshot run.pickle [ops]` runs a bounded work-stealing
//! swarm over the VeriFS pairing (crash exploration on) and persists the
//! run — visited set, frontier of replayable op-prefixes, stats — to
//! `run.pickle` (atomic tempfile + rename, safe to SIGKILL). A later
//! `crash_explore --resume run.pickle` reloads the file and finishes the
//! exploration, re-exploring **zero** previously-visited states; the
//! process enforces that invariant and reports what the resume cost.

use blockdev::LatencyModel;
use mcfs::{FsOpCodec, McfsConfig, PoolConfig, RemountMode};
use mcfs_bench::{
    measure_dfs, measure_dfs_depth, pair_ext2_ext4_cfg, pair_verifs_cfg, print_table, Pairing,
};
use modelcheck::{
    load_snapshot, run_swarm_persistent, CrashStats, ExploreConfig, SwarmConfig, SwarmPersist,
    WorkerStrategy,
};
use vfs::VfsResult;

type PairingBuilder = Box<dyn Fn(McfsConfig) -> VfsResult<Pairing>>;

struct Row {
    pairing: &'static str,
    crash_exploration: bool,
    ops_per_sec: f64,
    states_per_sec: f64,
    states_new: u64,
    crash: CrashStats,
}

fn measure(
    label: &'static str,
    crash_exploration: bool,
    budget: u64,
    build: &dyn Fn(McfsConfig) -> VfsResult<Pairing>,
) -> Row {
    let cfg = McfsConfig {
        pool: PoolConfig::small(),
        crash_exploration,
        ..McfsConfig::default()
    };
    let mut pairing = build(cfg).expect("pairing");
    let (ops_per_sec, report) = measure_dfs(&mut pairing, budget);
    assert!(
        report.violations.is_empty(),
        "{label}: crash exploration over correct file systems must be \
         violation-free, found: {}",
        report.violations[0]
    );
    let crash = report.stats.crash.unwrap_or_default();
    if crash_exploration {
        assert!(crash.crashes > 0, "{label}: no crash branches explored");
        assert_eq!(
            crash.divergent_recoveries, 0,
            "{label}: identical implementations cannot diverge on recovery"
        );
    }
    let states_per_sec =
        ops_per_sec * report.stats.states_new as f64 / report.stats.ops_executed.max(1) as f64;
    Row {
        pairing: label,
        crash_exploration,
        ops_per_sec,
        states_per_sec,
        states_new: report.stats.states_new,
        crash,
    }
}

/// The fleet used by the `--snapshot` / `--resume` modes: a 2-worker
/// work-stealing DFS over the VeriFS pairing with crash exploration on.
fn resumable_cfg(max_ops: u64) -> SwarmConfig {
    SwarmConfig {
        workers: 2,
        base: ExploreConfig {
            max_depth: 3,
            max_ops,
            seed: 7,
            ..ExploreConfig::default()
        },
        shared_visited: true,
        strategies: vec![WorkerStrategy::Dfs],
    }
}

fn resumable_factory(_idx: usize) -> mcfs::Mcfs {
    let cfg = McfsConfig {
        pool: PoolConfig::small(),
        crash_exploration: true,
        ..McfsConfig::default()
    };
    pair_verifs_cfg(cfg).expect("pairing").harness
}

/// `--snapshot <file>`: bounded run, persisted atomically to `<file>`.
fn snapshot_mode(path: &str, budget: u64) {
    let report = run_swarm_persistent(
        &resumable_cfg(budget),
        resumable_factory,
        SwarmPersist {
            codec: &FsOpCodec,
            snapshot_path: Some(path.into()),
            snapshot_every: 50,
            resume: None,
        },
    );
    if let Some(e) = &report.persist_error {
        eprintln!("snapshot write failed: {e}");
        std::process::exit(1);
    }
    println!(
        "snapshot: {} states, {} ops, frontier persisted to {path}",
        report.total_states(),
        report.total_ops()
    );
    println!("resume with: crash_explore --resume {path}");
}

/// `--resume <file>`: reload and finish; zero re-explored states enforced.
fn resume_mode(path: &str) {
    let snap = match load_snapshot(std::path::Path::new(path), &FsOpCodec) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot load {path}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "resuming: {} visited states, {} frontier entries, generation {}",
        snap.visited.len(),
        snap.frontier.len(),
        snap.generation
    );
    let report = run_swarm_persistent(
        &resumable_cfg(u64::MAX),
        resumable_factory,
        SwarmPersist {
            codec: &FsOpCodec,
            snapshot_path: Some(path.into()),
            snapshot_every: 50,
            resume: Some(snap),
        },
    );
    let resumed_new: u64 = report.workers.iter().map(|w| w.stats.states_new).sum();
    let distinct = report.total_states();
    let reexplored = (report.baseline.states_new + resumed_new).saturating_sub(distinct);
    assert_eq!(
        reexplored, 0,
        "resume re-explored {reexplored} previously-visited states"
    );
    println!(
        "resumed: {} snapshot + {} new = {} distinct states \
         (0 re-explored, {} ops replayed to rebuild the frontier)",
        report.baseline.states_new,
        resumed_new,
        distinct,
        report.total_replayed()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let budget: u64 = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(if quick { 250 } else { 1_500 });
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    if let Some(path) = flag_value("--snapshot") {
        return snapshot_mode(&path, budget.min(400));
    }
    if let Some(path) = flag_value("--resume") {
        return resume_mode(&path);
    }

    let builders: Vec<(&'static str, PairingBuilder)> = vec![
        ("verifs1-vs-verifs2", Box::new(pair_verifs_cfg)),
        (
            "ext2-vs-ext4-ram",
            Box::new(|cfg| pair_ext2_ext4_cfg(LatencyModel::ram(), RemountMode::PerOp, cfg)),
        ),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (label, build) in &builders {
        for crash_exploration in [false, true] {
            rows.push(measure(label, crash_exploration, budget, build.as_ref()));
        }
    }

    let table: Vec<(String, String)> = rows
        .iter()
        .map(|r| {
            (
                format!(
                    "{} [crash {}]",
                    r.pairing,
                    if r.crash_exploration { "on " } else { "off" }
                ),
                format!(
                    "{:>8.1} states/s  {:>8.1} ops/s  {} states, {} crashes ({} recovered)",
                    r.states_per_sec,
                    r.ops_per_sec,
                    r.states_new,
                    r.crash.crashes,
                    r.crash.recoveries
                ),
            )
        })
        .collect();
    print_table("Crash exploration throughput", &table);

    let runs: String = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"pairing\": \"{}\", \"crash_exploration\": {}, \
                 \"ops_per_sec\": {:.1}, \"states_per_sec\": {:.1}, \
                 \"states_new\": {}, \"crashes\": {}, \"recoveries\": {}, \
                 \"divergent_recoveries\": {}, \"violations\": 0}}",
                r.pairing,
                r.crash_exploration,
                r.ops_per_sec,
                r.states_per_sec,
                r.states_new,
                r.crash.crashes,
                r.crash.recoveries,
                r.crash.divergent_recoveries,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    // POR relation comparison: exhaust the depth-bounded state space under
    // both relations so the state counts are directly comparable.
    struct PorRow {
        pairing: &'static str,
        legacy: bool,
        states_new: u64,
        ops_executed: u64,
    }
    let mut por_rows: Vec<PorRow> = Vec::new();
    for (label, build) in &builders {
        // The remount-per-op pairing is an order of magnitude slower per
        // transition, so it stays at depth 3.
        let depth = if *label == "verifs1-vs-verifs2" && !quick {
            4
        } else {
            3
        };
        for legacy in [false, true] {
            let cfg = McfsConfig {
                pool: PoolConfig::small(),
                legacy_por_heuristic: legacy,
                ..McfsConfig::default()
            };
            let mut pairing = build(cfg).expect("pairing");
            let (_, report) = measure_dfs_depth(&mut pairing, 5_000_000, depth);
            assert!(
                report.violations.is_empty(),
                "{label} [legacy {legacy}]: POR comparison run must be \
                 violation-free, found: {}",
                report.violations[0]
            );
            por_rows.push(PorRow {
                pairing: label,
                legacy,
                states_new: report.stats.states_new,
                ops_executed: report.stats.ops_executed,
            });
        }
        let derived = &por_rows[por_rows.len() - 2];
        let legacy = &por_rows[por_rows.len() - 1];
        assert!(
            derived.states_new <= legacy.states_new,
            "{label}: derived POR explored {} states, legacy heuristic {} — \
             the derived relation must not enlarge the reduced state space",
            derived.states_new,
            legacy.states_new
        );
    }
    let por_table: Vec<(String, String)> = por_rows
        .iter()
        .map(|r| {
            (
                format!(
                    "{} [{}]",
                    r.pairing,
                    if r.legacy { "legacy " } else { "derived" }
                ),
                format!(
                    "{:>7} states  {:>8} transitions",
                    r.states_new, r.ops_executed
                ),
            )
        })
        .collect();
    print_table("POR relation comparison (exhaustive)", &por_table);

    let por_runs: String = por_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"pairing\": \"{}\", \"relation\": \"{}\", \
                 \"states_new\": {}, \"ops_executed\": {}}}",
                r.pairing,
                if r.legacy { "legacy" } else { "derived" },
                r.states_new,
                r.ops_executed,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"budget_ops\": {budget},\n  \"runs\": [\n{runs}\n  ],\n  \
         \"por_comparison\": [\n{por_runs}\n  ]\n}}"
    );
    println!("\n{json}");
    std::fs::write("BENCH_crash.json", format!("{json}\n")).expect("write BENCH_crash.json");
}
