//! Crash-consistency exploration cost: what does adding the
//! nondeterministic `Crash` pseudo-op to the operation pool do to
//! exploration throughput?
//!
//! Each pairing is explored twice under the same DFS budget — once with the
//! plain pool, once with crash exploration on — and the states/s rates are
//! compared in virtual time. The crash runs double as the acceptance check:
//! both pairings recover prefix-consistently from every injected power cut,
//! so the runs must be violation-free while reporting a non-zero crash
//! count.
//!
//! A second section compares the two partial-order-reduction relations —
//! the signature-derived independence relation against the legacy
//! path-prefix heuristic — by running the DFS to exhaustion at a small
//! depth under both. The derived relation must explore no more states
//! than the heuristic (it is a refinement: strictly more commuting pairs,
//! minus the aliasing-unsound ones).
//!
//! Output: a human-readable table, then JSON (also written to
//! `BENCH_crash.json`).
//!
//! Usage: `cargo run --release -p mcfs-bench --bin crash_explore [ops] [--quick]`
//!
//! `--quick` shrinks the budget to CI-smoke size.

use blockdev::LatencyModel;
use mcfs::{McfsConfig, PoolConfig, RemountMode};
use mcfs_bench::{
    measure_dfs, measure_dfs_depth, pair_ext2_ext4_cfg, pair_verifs_cfg, print_table, Pairing,
};
use modelcheck::CrashStats;
use vfs::VfsResult;

type PairingBuilder = Box<dyn Fn(McfsConfig) -> VfsResult<Pairing>>;

struct Row {
    pairing: &'static str,
    crash_exploration: bool,
    ops_per_sec: f64,
    states_per_sec: f64,
    states_new: u64,
    crash: CrashStats,
}

fn measure(
    label: &'static str,
    crash_exploration: bool,
    budget: u64,
    build: &dyn Fn(McfsConfig) -> VfsResult<Pairing>,
) -> Row {
    let cfg = McfsConfig {
        pool: PoolConfig::small(),
        crash_exploration,
        ..McfsConfig::default()
    };
    let mut pairing = build(cfg).expect("pairing");
    let (ops_per_sec, report) = measure_dfs(&mut pairing, budget);
    assert!(
        report.violations.is_empty(),
        "{label}: crash exploration over correct file systems must be \
         violation-free, found: {}",
        report.violations[0]
    );
    let crash = report.stats.crash.unwrap_or_default();
    if crash_exploration {
        assert!(crash.crashes > 0, "{label}: no crash branches explored");
        assert_eq!(
            crash.divergent_recoveries, 0,
            "{label}: identical implementations cannot diverge on recovery"
        );
    }
    let states_per_sec =
        ops_per_sec * report.stats.states_new as f64 / report.stats.ops_executed.max(1) as f64;
    Row {
        pairing: label,
        crash_exploration,
        ops_per_sec,
        states_per_sec,
        states_new: report.stats.states_new,
        crash,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let budget: u64 = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(if quick { 250 } else { 1_500 });

    let builders: Vec<(&'static str, PairingBuilder)> = vec![
        ("verifs1-vs-verifs2", Box::new(pair_verifs_cfg)),
        (
            "ext2-vs-ext4-ram",
            Box::new(|cfg| pair_ext2_ext4_cfg(LatencyModel::ram(), RemountMode::PerOp, cfg)),
        ),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (label, build) in &builders {
        for crash_exploration in [false, true] {
            rows.push(measure(label, crash_exploration, budget, build.as_ref()));
        }
    }

    let table: Vec<(String, String)> = rows
        .iter()
        .map(|r| {
            (
                format!(
                    "{} [crash {}]",
                    r.pairing,
                    if r.crash_exploration { "on " } else { "off" }
                ),
                format!(
                    "{:>8.1} states/s  {:>8.1} ops/s  {} states, {} crashes ({} recovered)",
                    r.states_per_sec,
                    r.ops_per_sec,
                    r.states_new,
                    r.crash.crashes,
                    r.crash.recoveries
                ),
            )
        })
        .collect();
    print_table("Crash exploration throughput", &table);

    let runs: String = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"pairing\": \"{}\", \"crash_exploration\": {}, \
                 \"ops_per_sec\": {:.1}, \"states_per_sec\": {:.1}, \
                 \"states_new\": {}, \"crashes\": {}, \"recoveries\": {}, \
                 \"divergent_recoveries\": {}, \"violations\": 0}}",
                r.pairing,
                r.crash_exploration,
                r.ops_per_sec,
                r.states_per_sec,
                r.states_new,
                r.crash.crashes,
                r.crash.recoveries,
                r.crash.divergent_recoveries,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    // POR relation comparison: exhaust the depth-bounded state space under
    // both relations so the state counts are directly comparable.
    struct PorRow {
        pairing: &'static str,
        legacy: bool,
        states_new: u64,
        ops_executed: u64,
    }
    let mut por_rows: Vec<PorRow> = Vec::new();
    for (label, build) in &builders {
        // The remount-per-op pairing is an order of magnitude slower per
        // transition, so it stays at depth 3.
        let depth = if *label == "verifs1-vs-verifs2" && !quick {
            4
        } else {
            3
        };
        for legacy in [false, true] {
            let cfg = McfsConfig {
                pool: PoolConfig::small(),
                legacy_por_heuristic: legacy,
                ..McfsConfig::default()
            };
            let mut pairing = build(cfg).expect("pairing");
            let (_, report) = measure_dfs_depth(&mut pairing, 5_000_000, depth);
            assert!(
                report.violations.is_empty(),
                "{label} [legacy {legacy}]: POR comparison run must be \
                 violation-free, found: {}",
                report.violations[0]
            );
            por_rows.push(PorRow {
                pairing: label,
                legacy,
                states_new: report.stats.states_new,
                ops_executed: report.stats.ops_executed,
            });
        }
        let derived = &por_rows[por_rows.len() - 2];
        let legacy = &por_rows[por_rows.len() - 1];
        assert!(
            derived.states_new <= legacy.states_new,
            "{label}: derived POR explored {} states, legacy heuristic {} — \
             the derived relation must not enlarge the reduced state space",
            derived.states_new,
            legacy.states_new
        );
    }
    let por_table: Vec<(String, String)> = por_rows
        .iter()
        .map(|r| {
            (
                format!(
                    "{} [{}]",
                    r.pairing,
                    if r.legacy { "legacy " } else { "derived" }
                ),
                format!("{:>7} states  {:>8} transitions", r.states_new, r.ops_executed),
            )
        })
        .collect();
    print_table("POR relation comparison (exhaustive)", &por_table);

    let por_runs: String = por_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"pairing\": \"{}\", \"relation\": \"{}\", \
                 \"states_new\": {}, \"ops_executed\": {}}}",
                r.pairing,
                if r.legacy { "legacy" } else { "derived" },
                r.states_new,
                r.ops_executed,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"budget_ops\": {budget},\n  \"runs\": [\n{runs}\n  ],\n  \
         \"por_comparison\": [\n{por_runs}\n  ]\n}}"
    );
    println!("\n{json}");
    std::fs::write("BENCH_crash.json", format!("{json}\n")).expect("write BENCH_crash.json");
}
