//! Counterexample-minimization cost and effectiveness: how far does the
//! delta-debugging shrinker cut real violating traces, and how many
//! replays does it spend doing it?
//!
//! Two seeded cases, both acceptance checks for the shrinker:
//!
//! * **buggy-verifs-hole** — a ≥40-op trace against VeriFS2 with paper
//!   bug 3 reintroduced, where the 4-op hole pattern is buried in
//!   unrelated traffic. Minimization must recover (close to) the 4-op
//!   core: a ≥5× shrink.
//! * **ext2-torn-write** — a crash trace from a clean-vs-torn-device ext2
//!   pair, where the tear targets the *second write to one data block*
//!   (an address-filtered [`FaultPlan`]). Targeting matters: per-op
//!   remount writes the superblock around every operation, so an
//!   ordinal-only tear is pinned to the full trace — dropping *any* op
//!   shifts the ordinal, changes the diagnosis, and the same-message rule
//!   correctly rejects the candidate (an honest 1.0× "shrink"). With the
//!   tear pinned to the torn block instead, the read-only ballast between
//!   first write and overwrite shrinks away while both writes stay
//!   load-bearing.
//!
//! Output: a human-readable table, then JSON (also written to
//! `BENCH_shrink.json`).
//!
//! Usage: `cargo run --release -p mcfs-bench --bin shrink_bench [--quick]`
//!
//! `--quick` shrinks the traces and the tear search to CI-smoke size.

use std::sync::Arc;

use blockdev::{FaultKind, FaultPlan, FaultyDevice, RamDisk};
use fs_ext::{ExtConfig, ExtFs};
use mcfs::{
    buggy_verifs_factory, replay, replay_checked, shrink_trace, FsOp, HarnessFactory, Mcfs,
    McfsConfig, PoolConfig, RemountMode, RemountTarget, ShrinkConfig,
};
use mcfs_bench::print_table;
use verifs::BugConfig;
use vfs::VfsResult;

struct Row {
    case: &'static str,
    ops_before: usize,
    ops_after: usize,
    candidates_tried: u64,
    replays_run: u64,
}

impl Row {
    fn ratio(&self) -> f64 {
        self.ops_before as f64 / self.ops_after.max(1) as f64
    }
}

fn op_create(path: &str) -> FsOp {
    FsOp::CreateFile {
        path: path.into(),
        mode: 0o644,
    }
}

fn op_write(path: &str, offset: u64, size: u64, seed: u8) -> FsOp {
    FsOp::WriteFile {
        path: path.into(),
        offset,
        size,
        seed,
    }
}

/// A ≥`filler`+4-op trace hiding the hole bug's 4-op core in unrelated
/// traffic on other paths. The final pattern op (the hole-creating write)
/// is the last op, so the whole trace is the recorded violation prefix.
fn buried_hole_trace(filler: usize) -> Vec<FsOp> {
    let noise = |i: usize| -> FsOp {
        match i % 6 {
            0 => op_create("/f1"),
            1 => op_write("/f1", 0, 16 + (i as u64 % 5) * 8, 3),
            2 => FsOp::Stat { path: "/f1".into() },
            3 => FsOp::Getdents { path: "/".into() },
            4 => FsOp::ReadFile {
                path: "/f1".into(),
                offset: 0,
                size: 16,
            },
            _ => FsOp::Access { path: "/f1".into() },
        }
    };
    let pattern = [
        op_create("/f0"),
        op_write("/f0", 0, 40, 1),
        FsOp::Truncate {
            path: "/f0".into(),
            size: 1,
        },
        op_write("/f0", 30, 4, 2),
    ];
    let mut trace: Vec<FsOp> = (0..filler).map(noise).collect();
    // Spread the pattern through the noise; the hole write stays last.
    for (k, op) in pattern.into_iter().enumerate() {
        let at = ((k + 1) * filler / 4).min(trace.len());
        trace.insert(at + k, op);
    }
    trace
}

fn minimize_case(case: &'static str, factory: &Arc<HarnessFactory>, trace: &[FsOp]) -> Row {
    let mut recorder = (factory)().expect("factory builds");
    let (idx, msg) = replay(&mut recorder, trace).expect("seeded trace must violate");
    let recorded = &trace[..=idx];
    let out = shrink_trace(factory.as_ref(), recorded, &msg, &ShrinkConfig::default())
        .expect("a reproducing trace must minimize");
    // Trustworthy replay is part of the acceptance: the minimized trace
    // reproduces the identical diagnosis on another fresh pair.
    let mut fresh = (factory)().expect("factory rebuilds");
    assert!(
        replay_checked(&mut fresh, &out.trace, &msg).reproduced(),
        "{case}: minimized trace must reproduce the same message"
    );
    Row {
        case,
        ops_before: out.stats.ops_before,
        ops_after: out.stats.ops_after,
        candidates_tried: out.stats.candidates_tried,
        replays_run: out.stats.replays_run,
    }
}

/// An ext2 whose device tears according to `plan`, armed after format so
/// the plan's write ordinal counts from a deterministic point.
fn ext2_torn(plan: FaultPlan) -> ExtFs<FaultyDevice<RamDisk>> {
    let cfg = ExtConfig::ext2();
    let disk = RamDisk::new(cfg.block_size, 256 * 1024).unwrap();
    let mut fs = ExtFs::format(FaultyDevice::new(disk, FaultPlan::none()), cfg).unwrap();
    fs.device_mut().set_plan(plan);
    fs
}

/// Clean ext2 vs torn ext2, both per-op remounted — rebuilt identically on
/// every call, so candidate replays see the identical tear. The plan tears
/// the second write to block `addr`: the first write to `/a`'s data block
/// passes, the overwrite at the end of the trace tears.
fn torn_factory(addr: u64) -> Arc<HarnessFactory> {
    Arc::new(move || -> VfsResult<Mcfs> {
        let clean = ext2_torn(FaultPlan::none());
        let torn = ext2_torn(
            FaultPlan::eio(FaultKind::Write, 1, 1)
                .with_torn_bytes(17)
                .at_addr(addr),
        );
        Mcfs::new(
            vec![
                Box::new(RemountTarget::new(clean, RemountMode::PerOp)),
                Box::new(RemountTarget::new(torn, RemountMode::PerOp)),
            ],
            McfsConfig {
                pool: PoolConfig::small(),
                // A tearing device mutates state *underneath* the file
                // system, so path-level fingerprint invalidation (which only
                // reacts to the ops themselves) would cache over the torn
                // block and never observe it.
                incremental_fingerprint: false,
                ..McfsConfig::default()
            },
        )
    })
}

/// Create and fill `/a`, hold a long read-only stretch, then overwrite
/// `/a` — the second write to its data block, which the targeted plan
/// tears during the post-op unmount sync. A trailing `Stat` remounts and
/// observes the torn block. The reads in the middle are shrinkable; both
/// writes are load-bearing (dropping the first makes the overwrite the
/// block's *first* write, so the tear never fires).
fn torn_trace(reads: usize) -> Vec<FsOp> {
    let mut ops = vec![op_create("/a"), op_write("/a", 0, 600, 1)];
    for i in 0..reads {
        ops.push(match i % 4 {
            0 => FsOp::Stat { path: "/a".into() },
            1 => FsOp::ReadFile {
                path: "/a".into(),
                offset: 0,
                size: 64,
            },
            2 => FsOp::Getdents { path: "/".into() },
            _ => FsOp::Access { path: "/a".into() },
        });
    }
    ops.push(op_write("/a", 0, 600, 2));
    ops.push(FsOp::Stat { path: "/a".into() });
    ops
}

/// Finds the block address of `/a`'s data by scanning: the tear must fire
/// on the overwrite and be seen by the observer, i.e. the violation lands
/// on the trace's final op.
fn find_torn_block(trace: &[FsOp], max_blocks: u64) -> Option<u64> {
    for addr in 0..max_blocks {
        let factory = torn_factory(addr);
        let Ok(mut m) = (factory)() else { continue };
        if let Some((idx, _)) = replay(&mut m, trace) {
            if idx == trace.len() - 1 {
                return Some(addr);
            }
        }
    }
    None
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let (hole_filler, torn_reads) = if quick { (32, 20) } else { (36, 30) };

    let mut rows = Vec::new();

    let hole_factory = buggy_verifs_factory(BugConfig::v2_hole(), McfsConfig::default());
    let hole = buried_hole_trace(hole_filler);
    assert!(quick || hole.len() >= 40, "headline case is a ≥40-op trace");
    rows.push(minimize_case("buggy-verifs-hole", &hole_factory, &hole));

    let torn = torn_trace(torn_reads);
    let addr = find_torn_block(&torn, 256)
        .expect("some block address must carry /a's data and tear on overwrite");
    rows.push(minimize_case("ext2-torn-write", &torn_factory(addr), &torn));

    for r in &rows {
        assert!(
            r.ratio() >= 5.0,
            "{}: acceptance requires a >=5x shrink, got {:.1}x ({} -> {} ops)",
            r.case,
            r.ratio(),
            r.ops_before,
            r.ops_after
        );
    }

    let table: Vec<(String, String)> = rows
        .iter()
        .map(|r| {
            (
                r.case.to_string(),
                format!(
                    "{:>3} -> {:>2} ops ({:>4.1}x)  {:>4} candidates, {:>4} replays",
                    r.ops_before,
                    r.ops_after,
                    r.ratio(),
                    r.candidates_tried,
                    r.replays_run
                ),
            )
        })
        .collect();
    print_table("Trace minimization", &table);

    let runs: String = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"case\": \"{}\", \"ops_before\": {}, \"ops_after\": {}, \
                 \"shrink_ratio\": {:.2}, \"candidates_tried\": {}, \"replays_run\": {}}}",
                r.case,
                r.ops_before,
                r.ops_after,
                r.ratio(),
                r.candidates_tried,
                r.replays_run,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!("{{\n  \"quick\": {quick},\n  \"runs\": [\n{runs}\n  ]\n}}");
    println!("\n{json}");
    std::fs::write("BENCH_shrink.json", format!("{json}\n")).expect("write BENCH_shrink.json");
}
