//! Figure 2: model-checking speed comparison across file-system pairings.
//!
//! Regenerates the paper's bar chart as a table: operations/second (virtual
//! time) for Ext2-vs-Ext4 on RAM/SSD/HDD, Ext4-vs-XFS, Ext4-vs-JFFS2, and
//! VeriFS1-vs-VeriFS2. The paper's qualitative results to match:
//! VeriFS ≈ 5.8× faster than Ext2-vs-Ext4 (RAM); Ext4-vs-XFS ≈ 11× slower
//! (swap-bound); HDD ≈ 20× and SSD ≈ 18× slower than RAM.
//!
//! Usage: `cargo run --release --bin fig2 [ops-budget]`

use blockdev::LatencyModel;
use mcfs::{PoolConfig, RemountMode};
use mcfs_bench::{
    measure_dfs, pair_ext2_ext4, pair_ext4_jffs2, pair_ext4_xfs, pair_verifs, print_table,
};

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3_000);
    let pool = PoolConfig::small;

    let mut rows = Vec::new();
    let mut baseline = None;
    let mut results = Vec::new();

    type PairingBuilder = Box<dyn FnOnce() -> vfs::VfsResult<mcfs_bench::Pairing>>;
    let pairings: Vec<(&str, PairingBuilder)> = vec![
        (
            "ext2-vs-ext4-ram",
            Box::new(move || pair_ext2_ext4(LatencyModel::ram(), RemountMode::PerOp, pool())),
        ),
        (
            "ext2-vs-ext4-ssd",
            Box::new(move || pair_ext2_ext4(LatencyModel::ssd(), RemountMode::PerOp, pool())),
        ),
        (
            "ext2-vs-ext4-hdd",
            Box::new(move || pair_ext2_ext4(LatencyModel::hdd(), RemountMode::PerOp, pool())),
        ),
        (
            "ext4-vs-xfs-ram",
            Box::new(move || pair_ext4_xfs(RemountMode::PerOp, pool())),
        ),
        ("ext4-vs-jffs2", Box::new(move || pair_ext4_jffs2(pool()))),
        ("verifs1-vs-verifs2", Box::new(move || pair_verifs(pool()))),
    ];

    for (key, build) in pairings {
        let mut pairing = build().expect("pairing construction");
        let (ops_per_sec, report) = measure_dfs(&mut pairing, budget);
        if key == "ext2-vs-ext4-ram" {
            baseline = Some(ops_per_sec);
        }
        results.push((pairing.label.clone(), key, ops_per_sec, report));
    }

    let base = baseline.expect("baseline row ran");
    for (label, _, ops_per_sec, report) in &results {
        rows.push((
            label.clone(),
            format!(
                "{ops_per_sec:>10.1} ops/s   {:>6.2}x vs baseline   ({} ops, {} states, swap {} MiB)",
                ops_per_sec / base,
                report.stats.ops_executed,
                report.stats.states_new,
                report.stats.swap_traffic_bytes >> 20,
            ),
        ));
    }
    print_table("Figure 2: model-checking speed (virtual time)", &rows);

    println!("\npaper shape: VeriFS ≈ 5.8x the RAM baseline; Ext4-vs-XFS ≈ 1/11x;");
    println!("             HDD ≈ 1/20x; SSD ≈ 1/18x.");
}
