//! Work-stealing swarm scaling and kill-and-resume overhead.
//!
//! The classic swarm (seed-diversified random walks) parallelizes trivially
//! but duplicates work; the work-stealing frontier parallelizes the *same*
//! depth-bounded DFS across workers, each expansion done exactly once
//! fleet-wide. This bench measures how aggregate throughput scales with the
//! fleet size, in **virtual time**: every worker owns a virtual clock that
//! its harness charges per operation, and the fleet's elapsed time is the
//! busiest worker's clock — on an N-worker fleet with perfect balance that
//! is 1/N of the single-worker time, regardless of how many physical CPUs
//! the host has. (Wall-clock would measure the host, not the algorithm;
//! this container has one CPU.)
//!
//! A second section measures what resuming from a [`modelcheck::pickle`]
//! snapshot costs: an interrupted run's visited set and frontier are
//! reloaded, frontier prefixes are replayed to rebuild concrete states, and
//! the sum of both phases' virtual times is compared against one
//! uninterrupted run. The resumed phase must re-discover **zero**
//! previously-visited states.
//!
//! Output: human-readable tables, then JSON (also written to
//! `BENCH_swarm.json`).
//!
//! Usage: `cargo run --release -p mcfs-bench --bin swarm_scale [--quick]`

use std::sync::Mutex;

use blockdev::{Clock, LatencyModel};
use mcfs::{FsOp, FsOpCodec, Mcfs, McfsConfig, PoolConfig, RemountMode};
use mcfs_bench::{pair_ext2_ext4_cfg, pair_verifs_cfg, print_table, Pairing};
use modelcheck::{
    load_snapshot, run_swarm, run_swarm_persistent, ExploreConfig, SwarmConfig, SwarmPersist,
    SwarmReport, WorkerStrategy,
};
use vfs::VfsResult;

type PairingBuilder = Box<dyn Fn(McfsConfig) -> VfsResult<Pairing> + Sync>;

struct ScaleRow {
    pairing: &'static str,
    workers: usize,
    states: u64,
    virtual_ms: f64,
    states_per_sec: f64,
    speedup: f64,
}

struct ResumeRow {
    pairing: &'static str,
    baseline_states: u64,
    resumed_new: u64,
    distinct: u64,
    reexplored: u64,
    replayed_ops: u64,
    uninterrupted_ms: f64,
    two_phase_ms: f64,
    overhead_frac: f64,
}

fn swarm_cfg(workers: usize, max_depth: usize, max_ops: u64) -> SwarmConfig {
    SwarmConfig {
        workers,
        base: ExploreConfig {
            max_depth,
            max_ops,
            seed: 7,
            ..ExploreConfig::default()
        },
        shared_visited: true,
        strategies: vec![WorkerStrategy::Dfs],
    }
}

/// Runs a fleet, returning the report plus the fleet's virtual elapsed time
/// (the busiest worker's clock) in nanoseconds.
fn run_timed(
    cfg: &SwarmConfig,
    build: &PairingBuilder,
    harness_cfg: &McfsConfig,
    persist: Option<SwarmPersist<'_, FsOp>>,
) -> (SwarmReport<FsOp>, u64) {
    let clocks: Mutex<Vec<Clock>> = Mutex::new(Vec::new());
    let factory = |_idx: usize| -> Mcfs {
        let pairing = build(harness_cfg.clone()).expect("pairing builds");
        clocks.lock().unwrap().push(pairing.clock.clone());
        pairing.harness
    };
    let report = match persist {
        Some(p) => run_swarm_persistent(cfg, factory, p),
        None => run_swarm(cfg, factory),
    };
    let elapsed = clocks
        .lock()
        .unwrap()
        .iter()
        .map(|c| c.now_ns())
        .max()
        .unwrap_or(1)
        .max(1);
    (report, elapsed)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");

    let harness_cfg = McfsConfig {
        pool: PoolConfig::small(),
        ..McfsConfig::default()
    };
    let builders: Vec<(&'static str, usize, PairingBuilder)> = vec![
        (
            "verifs1-vs-verifs2",
            if quick { 3 } else { 4 },
            Box::new(pair_verifs_cfg),
        ),
        (
            "ext2-vs-ext4-ram",
            3,
            Box::new(|cfg| pair_ext2_ext4_cfg(LatencyModel::ram(), RemountMode::PerOp, cfg)),
        ),
    ];
    let worker_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };

    // Section 1: scaling. Every fleet size exhausts the same depth-bounded
    // space (shared visited, work-stealing frontier), so states/s ratios
    // reduce to virtual-elapsed ratios.
    let mut scale_rows: Vec<ScaleRow> = Vec::new();
    for (label, depth, build) in &builders {
        let mut single_rate = 0.0;
        for &workers in worker_counts {
            let cfg = swarm_cfg(workers, *depth, u64::MAX);
            let (report, elapsed) = run_timed(&cfg, build, &harness_cfg, None);
            assert!(
                !report.found_violation(),
                "{label}: scaling run must be violation-free"
            );
            let states = report.total_states();
            let rate = states as f64 * 1e9 / elapsed as f64;
            if workers == 1 {
                single_rate = rate;
            }
            scale_rows.push(ScaleRow {
                pairing: label,
                workers,
                states,
                virtual_ms: elapsed as f64 / 1e6,
                states_per_sec: rate,
                speedup: if single_rate > 0.0 {
                    rate / single_rate
                } else {
                    1.0
                },
            });
        }
        // Same exhaustive space at every fleet size.
        let counts: Vec<u64> = scale_rows
            .iter()
            .filter(|r| r.pairing == *label)
            .map(|r| r.states)
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "{label}: fleet sizes explored different spaces: {counts:?}"
        );
        if !quick {
            let at4 = scale_rows
                .iter()
                .find(|r| r.pairing == *label && r.workers == 4)
                .expect("4-worker row");
            assert!(
                at4.speedup >= 3.0,
                "{label}: aggregate states/s at 4 workers is only {:.2}x the \
                 single-worker rate (acceptance floor: 3x)",
                at4.speedup
            );
        }
    }

    let table: Vec<(String, String)> = scale_rows
        .iter()
        .map(|r| {
            (
                format!("{} x{}", r.pairing, r.workers),
                format!(
                    "{:>9.1} states/s  {:>7} states  {:>9.2} virt-ms  {:>5.2}x",
                    r.states_per_sec, r.states, r.virtual_ms, r.speedup
                ),
            )
        })
        .collect();
    print_table("Work-stealing swarm scaling (virtual time)", &table);

    // Section 2: kill-and-resume. Interrupt a 2-worker run with a tight op
    // budget, snapshot, resume from the file, and compare against one
    // uninterrupted run of the same space.
    let mut resume_rows: Vec<ResumeRow> = Vec::new();
    let snap_dir = std::env::temp_dir().join("mcfs-swarm-scale");
    std::fs::create_dir_all(&snap_dir).expect("temp dir");
    for (label, depth, build) in &builders {
        let full_cfg = swarm_cfg(2, *depth, u64::MAX);
        let (control, control_ns) = run_timed(&full_cfg, build, &harness_cfg, None);
        let full_states = control.total_states();

        let path = snap_dir.join(format!("{label}.pickle"));
        let _ = std::fs::remove_file(&path);
        // Interrupt roughly mid-run.
        let cut_ops = (control.total_ops() / 2).max(10);
        let (phase1, phase1_ns) = run_timed(
            &swarm_cfg(2, *depth, cut_ops),
            build,
            &harness_cfg,
            Some(SwarmPersist {
                codec: &FsOpCodec,
                snapshot_path: Some(path.clone()),
                snapshot_every: 0,
                resume: None,
            }),
        );
        assert!(
            phase1.persist_error.is_none(),
            "{label}: snapshot failed: {:?}",
            phase1.persist_error
        );
        let snap = load_snapshot(&path, &FsOpCodec).expect("snapshot loads");
        let baseline_states = snap.stats.states_new;
        let (phase2, phase2_ns) = run_timed(
            &full_cfg,
            build,
            &harness_cfg,
            Some(SwarmPersist {
                codec: &FsOpCodec,
                snapshot_path: Some(path.clone()),
                snapshot_every: 0,
                resume: Some(snap),
            }),
        );
        let resumed_new: u64 = phase2.workers.iter().map(|w| w.stats.states_new).sum();
        let distinct = phase2.total_states();
        // Anything re-explored would be re-counted as new by some worker.
        let reexplored = (baseline_states + resumed_new).saturating_sub(distinct);
        assert_eq!(
            reexplored, 0,
            "{label}: resumed run re-explored {reexplored} previously-visited states"
        );
        assert_eq!(
            distinct, full_states,
            "{label}: two-phase run lost states ({distinct} vs {full_states})"
        );
        let two_phase_ns = phase1_ns + phase2_ns;
        resume_rows.push(ResumeRow {
            pairing: label,
            baseline_states,
            resumed_new,
            distinct,
            reexplored,
            replayed_ops: phase2.total_replayed(),
            uninterrupted_ms: control_ns as f64 / 1e6,
            two_phase_ms: two_phase_ns as f64 / 1e6,
            overhead_frac: two_phase_ns as f64 / control_ns.max(1) as f64 - 1.0,
        });
        let _ = std::fs::remove_file(&path);
    }

    let table: Vec<(String, String)> = resume_rows
        .iter()
        .map(|r| {
            (
                r.pairing.to_string(),
                format!(
                    "{:>4} snap + {:>4} resumed = {:>5} states, 0 re-explored, \
                     {:>5} ops replayed, {:>+6.1}% virtual-time overhead",
                    r.baseline_states,
                    r.resumed_new,
                    r.distinct,
                    r.replayed_ops,
                    r.overhead_frac * 100.0
                ),
            )
        })
        .collect();
    print_table("Kill-and-resume overhead (vs uninterrupted)", &table);

    let scale_json: String = scale_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"pairing\": \"{}\", \"workers\": {}, \"states\": {}, \
                 \"virtual_ms\": {:.3}, \"states_per_sec\": {:.1}, \"speedup\": {:.3}}}",
                r.pairing, r.workers, r.states, r.virtual_ms, r.states_per_sec, r.speedup
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let resume_json: String = resume_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"pairing\": \"{}\", \"baseline_states\": {}, \"resumed_new\": {}, \
                 \"distinct\": {}, \"reexplored\": {}, \"replayed_ops\": {}, \
                 \"uninterrupted_ms\": {:.3}, \"two_phase_ms\": {:.3}, \
                 \"overhead_frac\": {:.4}}}",
                r.pairing,
                r.baseline_states,
                r.resumed_new,
                r.distinct,
                r.reexplored,
                r.replayed_ops,
                r.uninterrupted_ms,
                r.two_phase_ms,
                r.overhead_frac
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"quick\": {quick},\n  \"scale\": [\n{scale_json}\n  ],\n  \
         \"resume\": [\n{resume_json}\n  ]\n}}"
    );
    println!("\n{json}");
    std::fs::write("BENCH_swarm.json", format!("{json}\n")).expect("write BENCH_swarm.json");
}
