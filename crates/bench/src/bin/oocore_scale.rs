//! Out-of-core exploration scaling: exhaustive runs whose visited set is a
//! multiple of the RAM budget.
//!
//! Section 1 exhausts the same depth-bounded VeriFS space under RAM budgets
//! of ∞ (all in memory), 1×, 1/4× and 1/10× of the visited set's modelled
//! size, reporting states/s in **virtual time** (spill page traffic charges
//! the shared clock at the budget's `ns_per_mib`). Acceptance: the 1/10×
//! run must stay above 50% of the in-memory rate, classify the identical
//! state count, and the memmodel predictor's swap traffic must land within
//! 20% of the measured spill traffic — the model is validated against the
//! machinery, not the other way round.
//!
//! Section 2 squeezes an ext2/ext4 run's checkpoint pool under a byte
//! budget with the spill tier attached: eviction pressure must demote
//! device snapshots to disk (COW-chunk deduplicated) and promote them back
//! on restore instead of failing with `ESTALE`.
//!
//! Results go to `BENCH_oocore.json`.
//!
//! Usage: `cargo run --release -p mcfs-bench --bin oocore_scale [--quick]`

use blockdev::LatencyModel;
use mcfs::{McfsConfig, PoolConfig, RemountMode};
use mcfs_bench::{pair_ext2_ext4_cfg, pair_verifs, print_table};
use modelcheck::{DfsExplorer, ExploreConfig, ExploreReport, MemBudget, RandomWalk, StopReason};

struct Row {
    budget_label: &'static str,
    ram_bytes: u64,
    states: u64,
    virtual_ms: f64,
    states_per_sec: f64,
    rate_ratio: f64,
    pages_written: u64,
    pages_read: u64,
    measured_swap_bytes: u64,
    predicted_swap_bytes: u64,
    model_error: f64,
    bloom_skips: u64,
}

fn run_dfs(depth: usize, budget: Option<MemBudget>) -> ExploreReport<mcfs::FsOp> {
    let mut pairing = pair_verifs(PoolConfig::small()).expect("verifs pairing");
    let explorer = DfsExplorer::new(ExploreConfig {
        max_depth: depth,
        max_ops: u64::MAX,
        seed: 42,
        mem_budget: budget,
        ..ExploreConfig::default()
    })
    .with_clock(pairing.clock.clone());
    let report = explorer.run(&mut pairing.harness);
    assert!(
        matches!(report.stop, StopReason::Exhausted),
        "scaling run must exhaust, stopped with {:?}",
        report.stop
    );
    report
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let depth = if quick { 3 } else { 4 };

    // ----- Section 1: visited-set scaling -------------------------------
    let baseline = run_dfs(depth, None);
    let set_bytes = baseline.stats.visited_peak_bytes;
    let base_rate = baseline.stats.states_new as f64 * 1e9 / baseline.stats.virtual_ns as f64;
    assert!(set_bytes > 0, "baseline must report the visited-set size");

    let budgets: [(&'static str, Option<u64>); 4] = [
        ("inf", None),
        ("1x", Some(set_bytes)),
        ("1/4x", Some(set_bytes / 4)),
        ("1/10x", Some(set_bytes / 10)),
    ];
    let mut rows = Vec::new();
    for (label, ram) in budgets {
        let report = match ram {
            None => run_dfs(depth, None),
            Some(bytes) => run_dfs(depth, Some(MemBudget::new(bytes))),
        };
        let s = &report.stats;
        assert_eq!(
            s.states_new, baseline.stats.states_new,
            "{label}: budgeted run classified a different state count"
        );
        let rate = s.states_new as f64 * 1e9 / s.virtual_ns as f64;
        let spill = s.spill.unwrap_or_default();
        rows.push(Row {
            budget_label: label,
            ram_bytes: ram.unwrap_or(0),
            states: s.states_new,
            virtual_ms: s.virtual_ns as f64 / 1e6,
            states_per_sec: rate,
            rate_ratio: rate / base_rate,
            pages_written: spill.pages_written,
            pages_read: spill.pages_read,
            measured_swap_bytes: spill.measured_swap_bytes(),
            predicted_swap_bytes: spill.predicted_swap_bytes,
            model_error: spill.model_error(),
            bloom_skips: spill.bloom_skips,
        });
    }

    let table: Vec<(String, String)> = rows
        .iter()
        .map(|r| {
            (
                format!("{} ({} B RAM)", r.budget_label, r.ram_bytes),
                format!(
                    "{} states, {:.2} virt-ms, {:.0} states/s ({:.0}% of in-mem), \
                     {} pg out / {} pg in, model err {:.1}%",
                    r.states,
                    r.virtual_ms,
                    r.states_per_sec,
                    r.rate_ratio * 100.0,
                    r.pages_written,
                    r.pages_read,
                    r.model_error * 100.0
                ),
            )
        })
        .collect();
    print_table(
        &format!("Out-of-core visited set (depth {depth}, VeriFS pairing)"),
        &table,
    );

    let tenth = rows.last().expect("1/10x row");
    assert!(
        tenth.pages_written > 0,
        "the 1/10x budget must actually spill pages"
    );
    assert!(
        tenth.rate_ratio > 0.5,
        "1/10x-budget run fell to {:.1}% of the in-memory rate \
         (acceptance floor: 50%)",
        tenth.rate_ratio * 100.0
    );
    for r in &rows {
        if r.measured_swap_bytes > 0 {
            assert!(
                r.model_error <= 0.20,
                "{}: memmodel predicted {} B of swap traffic vs {} B measured \
                 ({:.1}% error, acceptance ceiling: 20%)",
                r.budget_label,
                r.predicted_swap_bytes,
                r.measured_swap_bytes,
                r.model_error * 100.0
            );
        }
    }

    // ----- Section 2: checkpoint-pool demotion --------------------------
    // A spread-restart random walk keeps *unpinned* restart checkpoints
    // resident (DFS pins its whole spine, so it never exercises demotion).
    // Squeezing the pool to roughly two device snapshots with the spill
    // tier attached must demote snapshots to disk under pressure and
    // promote them back on restore instead of ESTALE-ing the walk back to
    // the root.
    let ckpt_budget = 600 << 10;
    let walk_ops = if quick { 800 } else { 4_000 };
    let mut pairing = pair_ext2_ext4_cfg(
        LatencyModel::ram(),
        RemountMode::PerOp,
        McfsConfig {
            pool: PoolConfig::small(),
            checkpoint_budget_bytes: Some(ckpt_budget),
            mem_budget: Some(MemBudget::new(64 << 10)),
            ..McfsConfig::default()
        },
    )
    .expect("ext pairing");
    let walk = RandomWalk::new(ExploreConfig {
        max_depth: 5,
        max_ops: walk_ops,
        seed: 42,
        restart_spread: 0.5,
        ..ExploreConfig::default()
    })
    .with_clock(pairing.clock.clone());
    let report = walk.run_observed(&mut pairing.harness, |_| {});
    assert!(
        matches!(report.stop, StopReason::OpBudget),
        "the walk must run out its op budget, stopped with {:?}",
        report.stop
    );
    let ckpt = report
        .stats
        .checkpoint_store
        .expect("remount targets report pool stats");
    assert!(
        ckpt.demotions > 0,
        "the squeezed pool must demote snapshots (stats: {ckpt:?})"
    );
    assert!(
        ckpt.promotions > 0,
        "restored restart targets must promote back from disk (stats: {ckpt:?})"
    );
    print_table(
        "Checkpoint-pool spill (ext2 vs ext4, 600 KiB pool budget)",
        &[
            ("demotions".into(), ckpt.demotions.to_string()),
            ("promotions".into(), ckpt.promotions.to_string()),
            ("hard evictions".into(), ckpt.evictions.to_string()),
            (
                "unique bytes on disk".into(),
                format!("{} (COW-chunk deduplicated)", ckpt.spilled_bytes),
            ),
        ],
    );

    // ----- JSON ---------------------------------------------------------
    let scale_json: String = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"budget\": \"{}\", \"ram_bytes\": {}, \"states\": {}, \
                 \"virtual_ms\": {:.3}, \"states_per_sec\": {:.1}, \
                 \"rate_ratio\": {:.4}, \"pages_written\": {}, \"pages_read\": {}, \
                 \"measured_swap_bytes\": {}, \"predicted_swap_bytes\": {}, \
                 \"model_error\": {:.4}, \"bloom_skips\": {}}}",
                r.budget_label,
                r.ram_bytes,
                r.states,
                r.virtual_ms,
                r.states_per_sec,
                r.rate_ratio,
                r.pages_written,
                r.pages_read,
                r.measured_swap_bytes,
                r.predicted_swap_bytes,
                r.model_error,
                r.bloom_skips
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"quick\": {quick},\n  \"depth\": {depth},\n  \
         \"visited_set_bytes\": {set_bytes},\n  \"scale\": [\n{scale_json}\n  ],\n  \
         \"checkpoint_spill\": {{\"demotions\": {}, \"promotions\": {}, \
         \"evictions\": {}, \"spilled_bytes\": {}}}\n}}",
        ckpt.demotions, ckpt.promotions, ckpt.evictions, ckpt.spilled_bytes
    );
    println!("\n{json}");
    std::fs::write("BENCH_oocore.json", format!("{json}\n")).expect("write BENCH_oocore.json");
}
