//! §3.4's false-positive workarounds, demonstrated one at a time.
//!
//! Each workaround is disabled in isolation to show the false positive it
//! prevents, then re-enabled to show the clean run: directory-size
//! reporting, getdents ordering, special folders (`lost+found`), and
//! capacity equalization.
//!
//! Usage: `cargo run --release -p mcfs-bench --bin false_positives`

use blockdev::LatencyModel;
use mcfs::{
    AbstractionConfig, CheckedTarget, FsOp, Mcfs, McfsConfig, RemountMode, RemountTarget,
    EQUALIZE_DUMMY,
};
use mcfs_bench::{ext_on, print_table, xfs_on};
use modelcheck::{ApplyOutcome, ModelSystem};

fn ext4_vs_xfs(cfg: McfsConfig) -> Result<Mcfs, vfs::Errno> {
    let clock = blockdev::Clock::new();
    let e4 = ext_on(
        fs_ext::ExtConfig::ext4(),
        LatencyModel::ram(),
        clock.clone(),
    )?;
    let xfs = xfs_on(LatencyModel::ram(), clock.clone())?;
    let targets: Vec<Box<dyn CheckedTarget>> = vec![
        Box::new(RemountTarget::new(e4, RemountMode::OnRestore).with_clock(clock.clone())),
        Box::new(RemountTarget::new(xfs, RemountMode::OnRestore).with_clock(clock.clone())),
    ];
    Mcfs::with_clock(targets, cfg, clock)
}

fn ran_clean(harness: &mut Mcfs, script: &[FsOp]) -> Result<(), String> {
    for op in script {
        if let ApplyOutcome::Violation(msg) = harness.apply(op) {
            return Err(msg);
        }
    }
    Ok(())
}

fn main() {
    let mut rows = Vec::new();
    let script = vec![
        FsOp::Mkdir {
            path: "/d0".into(),
            mode: 0o755,
        },
        FsOp::CreateFile {
            path: "/d0/f2".into(),
            mode: 0o644,
        },
        FsOp::CreateFile {
            path: "/f0".into(),
            mode: 0o644,
        },
        FsOp::CreateFile {
            path: "/f1".into(),
            mode: 0o644,
        },
        FsOp::Stat { path: "/d0".into() },
        FsOp::Getdents { path: "/".into() },
    ];

    // 1. Directory sizes: ext reports block multiples, XFS entry-based.
    //    With sizes hashed, even the empty roots disagree — the harness
    //    reports the discrepancy at construction.
    {
        let bad_cfg = McfsConfig {
            abstraction: AbstractionConfig {
                include_dir_sizes: true,
                ..AbstractionConfig::default()
            },
            ..McfsConfig::default()
        };
        let off = match ext4_vs_xfs(bad_cfg) {
            Err(_) => true, // initial states already diverge
            Ok(mut harness) => ran_clean(&mut harness, &script).is_err(),
        };
        let mut harness = ext4_vs_xfs(McfsConfig::default()).expect("harness");
        let on = ran_clean(&mut harness, &script).is_ok();
        rows.push((
            "ignore directory sizes".to_string(),
            format!("workaround off: false positive = {off}; on: clean = {on}"),
        ));
        assert!(off && on);
    }

    // 2. getdents ordering: ext returns creation order, XFS hash order.
    {
        let mut bad_cfg = McfsConfig::default();
        bad_cfg.abstraction.sort_entries = false;
        // Comparing raw getdents output needs the sort disabled in the op
        // outcome too; the abstraction flag governs both demonstrations via
        // traversal order, so drive a direct comparison through Getdents.
        let mut harness = ext4_vs_xfs(bad_cfg).expect("harness");
        let mut off = false;
        for op in &script {
            if let ApplyOutcome::Violation(_) = harness.apply(op) {
                off = true;
                break;
            }
        }
        let mut harness = ext4_vs_xfs(McfsConfig::default()).expect("harness");
        let on = ran_clean(&mut harness, &script).is_ok();
        rows.push((
            "sort getdents output".to_string(),
            format!("workaround off: false positive = {off}; on: clean = {on}"),
        ));
        assert!(on);
    }

    // 3. Special folders: ext4's lost+found vs everyone else.
    {
        let bad_cfg = McfsConfig {
            abstraction: AbstractionConfig {
                exceptions: vec![EQUALIZE_DUMMY.to_string()], // no lost+found!
                ..AbstractionConfig::default()
            },
            ..McfsConfig::default()
        };
        // With lost+found visible, the initial states differ and harness
        // construction itself reports the discrepancy.
        let off = ext4_vs_xfs(bad_cfg).is_err();
        let on = ext4_vs_xfs(McfsConfig::default()).is_ok();
        rows.push((
            "special-folder exception list".to_string(),
            format!("workaround off: false positive = {off}; on: clean = {on}"),
        ));
        assert!(off && on);
    }

    // 4. Capacity equalization: fill the disk and watch ENOSPC timing.
    //    ext2 vs ext4 share a block size but differ in usable capacity
    //    (ext4's journal) — the paper's exact scenario.
    {
        let run = |equalize: bool| -> bool {
            let cfg = McfsConfig {
                equalize_free_space: equalize,
                ..McfsConfig::default()
            };
            let clock = blockdev::Clock::new();
            let e2 = ext_on(
                fs_ext::ExtConfig::ext2(),
                LatencyModel::ram(),
                clock.clone(),
            )
            .expect("format");
            let e4 = ext_on(
                fs_ext::ExtConfig::ext4(),
                LatencyModel::ram(),
                clock.clone(),
            )
            .expect("format");
            let targets: Vec<Box<dyn CheckedTarget>> = vec![
                Box::new(RemountTarget::new(e2, RemountMode::OnRestore).with_clock(clock.clone())),
                Box::new(RemountTarget::new(e4, RemountMode::OnRestore).with_clock(clock.clone())),
            ];
            let mut harness = Mcfs::with_clock(targets, cfg, clock).expect("harness");
            // The paper's symptom: "calling write can succeed on one file
            // system and fail on another" near full. Grow one file until
            // both sides fill.
            if let ApplyOutcome::Violation(_) = harness.apply(&FsOp::CreateFile {
                path: "/fill".into(),
                mode: 0o644,
            }) {
                return true;
            }
            for i in 0..90u64 {
                let op = FsOp::WriteFile {
                    path: "/fill".into(),
                    offset: i * 4096,
                    size: 4096,
                    seed: 1,
                };
                if let ApplyOutcome::Violation(_) = harness.apply(&op) {
                    return true;
                }
            }
            false
        };
        let off = run(false);
        let on = run(true);
        rows.push((
            "free-space equalization".to_string(),
            format!(
                "workaround off: false positive = {off}; on: clean = {}",
                !on
            ),
        ));
        assert!(off && !on);
    }

    print_table("Section 3.4: false-positive workarounds", &rows);
    println!("\nAll four workarounds individually necessary and sufficient.");
}
