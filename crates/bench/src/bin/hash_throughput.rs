//! Measures the two halves of the swarm hot-path optimization, emitting
//! machine-readable JSON:
//!
//! 1. **Incremental abstract-state fingerprinting** — ops/sec of
//!    mutate-then-rehash on a 200-file, depth-6 tree with a full rehash per
//!    operation vs the [`mcfs::FingerprintCache`] incremental path. The
//!    incremental hash folds cached per-path digests and only recomputes
//!    the touched paths, so the per-op cost drops from O(total tree bytes)
//!    to O(touched bytes) + O(tree entries).
//! 2. **Shared sharded visited set** — duplicate states expanded by a
//!    private-visited-set swarm vs a swarm sharing one
//!    [`modelcheck::ShardedVisited`], at an equal per-worker op budget.
//!    Each worker records every abstract state it sees, so the global
//!    distinct count (the union) is exact and
//!    `duplicates = Σ states_new − distinct`.
//!
//! Unlike the figure benches this one measures **real** wall-clock time:
//! the fingerprint cache is a genuine CPU optimization, not a modeled cost.
//!
//! Usage: `cargo run --release -p mcfs-bench --bin hash_throughput [iters] [--quick]`
//!
//! `--quick` shrinks the iteration counts to CI-smoke size.

use std::collections::HashSet;
use std::time::Instant;

use mcfs::{
    abstract_state, abstract_state_cached, AbstractionConfig, CheckedTarget, CheckpointTarget,
    FingerprintCache, FsOp, Mcfs, McfsConfig, PoolConfig,
};
use modelcheck::{
    ApplyOutcome, CheckpointStoreStats, ExploreConfig, ModelSystem, RandomWalk, ShardedVisited,
    StateId, VisitedSet,
};
use verifs::VeriFs;
use vfs::{FileMode, FileSystem, OpenFlags};

/// Files in the benchmark tree (acceptance: 200).
const TREE_FILES: usize = 200;
/// Path depth of every file (acceptance: 6 components).
const TREE_DEPTH: usize = 6;
/// Bytes of content per file.
const FILE_BYTES: usize = 2048;

/// Builds a VeriFS2 holding `TREE_FILES` files, each at depth `TREE_DEPTH`,
/// and returns the file paths.
fn build_tree() -> (VeriFs, Vec<String>) {
    mcfs_bench::verifs_tree(TREE_FILES, TREE_DEPTH, FILE_BYTES)
}

/// One benchmark mutation: rewrite a slice of file `i % TREE_FILES`.
fn mutate(fs: &mut VeriFs, paths: &[String], i: usize) {
    let path = &paths[i % paths.len()];
    let fd = fs
        .open(path, OpenFlags::write_only(), FileMode::REG_DEFAULT)
        .expect("open");
    fs.write(fd, &[i as u8; 32]).expect("write");
    fs.close(fd).expect("close");
}

struct HashBench {
    full_ops_per_sec: f64,
    incremental_ops_per_sec: f64,
    speedup: f64,
    hashes_agree: bool,
}

fn bench_hashing(iters: usize) -> HashBench {
    let cfg = AbstractionConfig::default();

    // Full rehash: the pre-optimization behavior, O(tree bytes) per op.
    let (mut fs, paths) = build_tree();
    let mut full_hashes = Vec::with_capacity(iters);
    let start = Instant::now();
    for i in 0..iters {
        mutate(&mut fs, &paths, i);
        full_hashes.push(abstract_state(&mut fs, &cfg).expect("hash"));
    }
    let full_elapsed = start.elapsed();

    // Incremental: invalidate the touched path, reuse every other digest.
    let (mut fs, paths) = build_tree();
    let mut cache = FingerprintCache::new();
    let _ = abstract_state_cached(&mut fs, &cfg, &mut cache).expect("warm-up hash");
    let mut incr_hashes = Vec::with_capacity(iters);
    let start = Instant::now();
    for i in 0..iters {
        cache.invalidate_op(&mut fs, &[&paths[i % paths.len()]]);
        mutate(&mut fs, &paths, i);
        incr_hashes.push(abstract_state_cached(&mut fs, &cfg, &mut cache).expect("hash"));
    }
    let incr_elapsed = start.elapsed();

    let full_ops_per_sec = iters as f64 / full_elapsed.as_secs_f64().max(1e-9);
    let incremental_ops_per_sec = iters as f64 / incr_elapsed.as_secs_f64().max(1e-9);
    HashBench {
        full_ops_per_sec,
        incremental_ops_per_sec,
        speedup: incremental_ops_per_sec / full_ops_per_sec,
        hashes_agree: full_hashes == incr_hashes,
    }
}

/// An [`Mcfs`] wrapper that records every abstract state the explorer
/// observes, so the union across workers gives the exact global distinct
/// count.
struct Recording {
    inner: Mcfs,
    seen: HashSet<u128>,
}

impl ModelSystem for Recording {
    type Op = FsOp;

    fn ops(&mut self) -> Vec<FsOp> {
        self.inner.ops()
    }

    fn apply(&mut self, op: &FsOp) -> ApplyOutcome {
        self.inner.apply(op)
    }

    fn abstract_state(&mut self) -> u128 {
        let h = self.inner.abstract_state();
        self.seen.insert(h);
        h
    }

    fn checkpoint(&mut self, id: StateId) -> Result<usize, String> {
        self.inner.checkpoint(id)
    }

    fn restore(&mut self, id: StateId) -> Result<(), String> {
        self.inner.restore(id)
    }

    fn release(&mut self, id: StateId) {
        self.inner.release(id)
    }

    fn pin(&mut self, id: StateId) {
        self.inner.pin(id)
    }

    fn unpin(&mut self, id: StateId) {
        self.inner.unpin(id)
    }

    fn checkpoint_store_stats(&self) -> Option<CheckpointStoreStats> {
        self.inner.checkpoint_store_stats()
    }

    fn independent(&self, a: &FsOp, b: &FsOp) -> bool {
        self.inner.independent(a, b)
    }
}

fn build_harness() -> Mcfs {
    let mut a = VeriFs::v2();
    a.mount().expect("mount");
    let mut b = VeriFs::v2();
    b.mount().expect("mount");
    let targets: Vec<Box<dyn CheckedTarget>> = vec![
        Box::new(CheckpointTarget::new(a)),
        Box::new(CheckpointTarget::new(b)),
    ];
    Mcfs::new(
        targets,
        McfsConfig {
            pool: PoolConfig::small(),
            ..McfsConfig::default()
        },
    )
    .expect("harness")
}

struct SwarmDedup {
    states_expanded: u64,
    distinct_states: u64,
    duplicate_states: u64,
}

/// Runs `workers` diversified random walks at an equal per-worker budget,
/// either each with a private visited set or all sharing one sharded set.
fn swarm_dedup(shared: bool, workers: usize, budget: u64) -> SwarmDedup {
    let shared_set = ShardedVisited::new(1 << 12, workers.max(8));
    let results: Vec<(u64, HashSet<u128>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|idx| {
                let mut set = shared_set.clone();
                scope.spawn(move || {
                    let walk = RandomWalk::new(ExploreConfig {
                        max_depth: 5,
                        max_ops: budget,
                        seed: 100 + idx as u64,
                        ..ExploreConfig::default()
                    });
                    let mut sys = Recording {
                        inner: build_harness(),
                        seen: HashSet::new(),
                    };
                    let report = if shared {
                        walk.run_resumable(&mut sys, &mut set, |_| {})
                    } else {
                        let mut private = VisitedSet::new(1 << 12);
                        walk.run_resumable(&mut sys, &mut private, |_| {})
                    };
                    (report.stats.states_new, sys.seen)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    let states_expanded: u64 = results.iter().map(|(n, _)| n).sum();
    let mut union: HashSet<u128> = HashSet::new();
    for (_, seen) in &results {
        union.extend(seen);
    }
    let distinct_states = union.len() as u64;
    SwarmDedup {
        states_expanded,
        distinct_states,
        duplicate_states: states_expanded.saturating_sub(distinct_states),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let iters: usize = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(if quick { 80 } else { 240 });
    let hash = bench_hashing(iters);

    let workers = 4;
    let budget = if quick { 600 } else { 1_500 };
    let private = swarm_dedup(false, workers, budget);
    let shared = swarm_dedup(true, workers, budget);

    println!("{{");
    println!("  \"hash_throughput\": {{");
    println!("    \"tree_files\": {TREE_FILES},");
    println!("    \"tree_depth\": {TREE_DEPTH},");
    println!("    \"file_bytes\": {FILE_BYTES},");
    println!("    \"iterations\": {iters},");
    println!(
        "    \"full_rehash_ops_per_sec\": {:.1},",
        hash.full_ops_per_sec
    );
    println!(
        "    \"incremental_ops_per_sec\": {:.1},",
        hash.incremental_ops_per_sec
    );
    println!("    \"speedup\": {:.2},", hash.speedup);
    println!("    \"hashes_agree\": {}", hash.hashes_agree);
    println!("  }},");
    println!("  \"swarm_dedup\": {{");
    println!("    \"workers\": {workers},");
    println!("    \"ops_budget_per_worker\": {budget},");
    for (label, r, comma) in [("private", &private, ","), ("shared_sharded", &shared, "")] {
        println!("    \"{label}\": {{");
        println!("      \"states_expanded\": {},", r.states_expanded);
        println!("      \"distinct_states\": {},", r.distinct_states);
        println!("      \"duplicate_states\": {}", r.duplicate_states);
        println!("    }}{comma}");
    }
    println!("  }}");
    println!("}}");

    assert!(
        hash.hashes_agree,
        "incremental and full hashing must agree on every iteration"
    );
    assert!(
        hash.speedup >= 5.0,
        "incremental fingerprinting must be >= 5x full rehash (got {:.2}x)",
        hash.speedup
    );
    assert!(
        shared.duplicate_states < private.duplicate_states,
        "the shared sharded set must expand strictly fewer duplicates \
         (shared {} vs private {})",
        shared.duplicate_states,
        private.duplicate_states
    );
}
