//! §6's remount ablation: MCFS "without the inter-operation remounts".
//!
//! The paper measures Ext2-vs-Ext4 at 316 ops/s without remounts (38% faster
//! than with) and Ext4-vs-XFS 70% faster. This binary reruns both pairings
//! in `RemountMode::PerOp` and `RemountMode::OnRestore` and prints the
//! speedups.
//!
//! Measured with the long-run randomized driver (restores happen only on
//! walk restarts, as in the paper's multi-day averages).
//!
//! Usage: `cargo run --release -p mcfs-bench --bin remount_ablation [ops]`

use blockdev::LatencyModel;
use mcfs::{PoolConfig, RemountMode};
use mcfs_bench::{measure_walk, pair_ext2_ext4, pair_ext4_xfs, print_table};

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3_000);
    let mut rows = Vec::new();

    let run = |mode: RemountMode, xfs: bool| -> f64 {
        let mut pairing = if xfs {
            pair_ext4_xfs(mode, PoolConfig::small()).expect("pairing")
        } else {
            pair_ext2_ext4(LatencyModel::ram(), mode, PoolConfig::small()).expect("pairing")
        };
        measure_walk(&mut pairing, budget, 7).0
    };

    for (label, xfs, paper) in [
        (
            "Ext2 vs Ext4 (RAM)",
            false,
            "paper: 229 -> 316 ops/s (+38%)",
        ),
        ("Ext4 vs XFS (RAM)", true, "paper: ~20 -> 34 ops/s (+70%)"),
    ] {
        let with = run(RemountMode::PerOp, xfs);
        let without = run(RemountMode::OnRestore, xfs);
        rows.push((
            label.to_string(),
            format!(
                "{with:>8.1} -> {without:>8.1} ops/s  (+{:.0}%)   [{paper}]",
                (without / with - 1.0) * 100.0
            ),
        ));
    }
    print_table("Section 6: speed without inter-operation remounts", &rows);
}
