//! §5's state-tracking strategy comparison, plus the copy-on-write
//! checkpoint microbenchmarks.
//!
//! The paper tried, in order: CRIU process snapshots (refused for FUSE file
//! systems because they hold `/dev/fuse`; works for a Ganesha-like plain
//! server), LightVM-style VM snapshots (universal but 30 ms + 20 ms per
//! checkpoint/restore, limiting MCFS to 20–30 ops/s), and finally the
//! in-file-system checkpoint/restore API (VeriFS) that motivates the paper.
//! Kernel file systems use device snapshots + remounts as the baseline.
//!
//! On top of the strategy table (measured in virtual time), this bench
//! measures the **wall-clock** win of structural-sharing checkpoints:
//!
//! 1. **Checkpoint/restore latency** — a 200-file, depth-6 VeriFS2 tree,
//!    checkpointed and restored repeatedly. The deep-clone baseline is
//!    reconstructed with [`VeriFs::materialize_cow`] (which pays the full
//!    copy a non-COW checkpoint would); the COW path is a refcount bump.
//! 2. **Resident bytes** — a depth-50 DFS backtrack spine of checkpoints
//!    over the same tree. Logical bytes are what 50 deep clones would hold;
//!    resident bytes are what the structural-sharing pool actually holds.
//!
//! Everything is emitted as JSON on stdout (after the human-readable table)
//! and written to `BENCH_snapshot.json`.
//!
//! Usage: `cargo run --release -p mcfs-bench --bin snapshot_compare [ops] [--quick]`
//!
//! `--quick` shrinks the budgets to CI-smoke size.

use std::time::Instant;

use blockdev::{Clock, LatencyModel};
use mcfs::{
    CheckedTarget, CheckpointTarget, CriuTarget, Mcfs, McfsConfig, PoolConfig, RemountMode,
    VmTarget,
};
use mcfs_bench::{
    ext_on, measure_dfs, pair_ext2_ext4, pair_verifs, print_table, verifs_fuse, verifs_tree,
};
use verifs::{BugConfig, VeriFs};
use vfs::{FileMode, FileSystem, FsCheckpoint, OpenFlags};

/// Files in the COW benchmark tree (acceptance: 200).
const TREE_FILES: usize = 200;
/// Path depth of every file (acceptance: 6 components).
const TREE_DEPTH: usize = 6;
/// Bytes of content per file.
const FILE_BYTES: usize = 4096;
/// Checkpoint-spine depth for the resident-bytes measurement.
const SPINE_DEPTH: usize = 50;

/// One benchmark mutation between checkpoints: rewrite a slice of one file.
fn touch(fs: &mut VeriFs, paths: &[String], i: usize) {
    let path = &paths[i % paths.len()];
    let fd = fs
        .open(path, OpenFlags::write_only(), FileMode::REG_DEFAULT)
        .expect("open");
    fs.write(fd, &[i as u8; 32]).expect("write");
    fs.close(fd).expect("close");
}

struct CowLatency {
    rounds: usize,
    deep_checkpoint_ns: u128,
    cow_checkpoint_ns: u128,
    checkpoint_speedup: f64,
    deep_restore_ns: u128,
    cow_restore_ns: u128,
    restore_speedup: f64,
}

/// Measures mean per-call checkpoint/restore latency, deep-clone baseline vs
/// copy-on-write, on identical trees and mutation sequences.
fn bench_cow_latency(rounds: usize) -> CowLatency {
    // Deep-clone baseline: checkpoint, then force every shared allocation
    // apart again — the copy a snapshot-by-value implementation pays.
    let (mut fs, paths) = verifs_tree(TREE_FILES, TREE_DEPTH, FILE_BYTES);
    let mut deep_ckpt = 0u128;
    for k in 0..rounds {
        touch(&mut fs, &paths, k);
        let t = Instant::now();
        fs.checkpoint(k as u64).expect("checkpoint");
        fs.materialize_cow();
        deep_ckpt += t.elapsed().as_nanos();
    }
    let mut deep_restore = 0u128;
    for k in 0..rounds {
        let t = Instant::now();
        fs.restore_keep(k as u64).expect("restore");
        fs.materialize_cow();
        deep_restore += t.elapsed().as_nanos();
    }

    // COW: the checkpoint is a refcount bump, the restore an O(1) swap.
    let (mut fs, paths) = verifs_tree(TREE_FILES, TREE_DEPTH, FILE_BYTES);
    let mut cow_ckpt = 0u128;
    for k in 0..rounds {
        touch(&mut fs, &paths, k);
        let t = Instant::now();
        fs.checkpoint(k as u64).expect("checkpoint");
        cow_ckpt += t.elapsed().as_nanos();
    }
    let mut cow_restore = 0u128;
    for k in 0..rounds {
        let t = Instant::now();
        fs.restore_keep(k as u64).expect("restore");
        cow_restore += t.elapsed().as_nanos();
    }

    let per = |total: u128| total / rounds.max(1) as u128;
    CowLatency {
        rounds,
        deep_checkpoint_ns: per(deep_ckpt),
        cow_checkpoint_ns: per(cow_ckpt),
        checkpoint_speedup: deep_ckpt as f64 / cow_ckpt.max(1) as f64,
        deep_restore_ns: per(deep_restore),
        cow_restore_ns: per(cow_restore),
        restore_speedup: deep_restore as f64 / cow_restore.max(1) as f64,
    }
}

struct SpineResidency {
    depth: usize,
    logical_bytes: usize,
    resident_bytes: usize,
    reduction: f64,
}

/// Builds a DFS-style backtrack spine of checkpoints — one per depth level,
/// each after a small mutation — and compares what 50 deep clones would hold
/// (the logical bytes) against what the sharing pool actually holds.
fn bench_spine_residency() -> SpineResidency {
    let (mut fs, paths) = verifs_tree(TREE_FILES, TREE_DEPTH, FILE_BYTES);
    for d in 0..SPINE_DEPTH {
        touch(&mut fs, &paths, d);
        fs.checkpoint(d as u64).expect("checkpoint");
    }
    let logical_bytes = fs.snapshot_bytes();
    let resident_bytes = fs.snapshot_resident_bytes();
    SpineResidency {
        depth: SPINE_DEPTH,
        logical_bytes,
        resident_bytes,
        reduction: logical_bytes as f64 / resident_bytes.max(1) as f64,
    }
}

/// Runs the paper's five-strategy comparison, returning `(name, outcome)`
/// rows measured in virtual time.
fn strategy_table(budget: u64) -> Vec<(String, String)> {
    let mut rows: Vec<(String, String)> = Vec::new();

    // 1. CRIU on a FUSE file system: refused at the first checkpoint
    //    because the daemon process holds /dev/fuse.
    {
        struct FuseProcess(fusesim::FuseMount<VeriFs>);
        impl snapshot::Snapshotable for FuseProcess {
            fn memory_image(&self) -> Vec<u8> {
                Vec::new() // never reached: the handle check refuses first
            }
            fn restore_image(&mut self, _image: &[u8]) -> Result<(), String> {
                Ok(())
            }
            fn handles(&self) -> Vec<snapshot::ProcessHandle> {
                self.0
                    .daemon()
                    .device_handles()
                    .iter()
                    .map(|h| match h {
                        fusesim::DeviceHandle::Char(p) => {
                            snapshot::ProcessHandle::CharDevice(p.clone())
                        }
                        fusesim::DeviceHandle::Block(p) => {
                            snapshot::ProcessHandle::BlockDevice(p.clone())
                        }
                    })
                    .collect()
            }
        }
        let clock = Clock::new();
        let proc = FuseProcess(verifs_fuse(1, BugConfig::none(), clock.clone()));
        let mut engine = snapshot::CriuEngine::new(Some(clock));
        let outcome = match engine.checkpoint(1, &proc) {
            Err(e) => format!("REFUSED ({e}) — as the paper found for FUSE"),
            Ok(()) => "unexpectedly worked".to_string(),
        };
        rows.push(("criu + FUSE file system".into(), outcome));
    }

    // 2. CRIU on a Ganesha-like plain user-space server (no device handles).
    {
        let clock = Clock::new();
        let mut fs = VeriFs::v1();
        fs.mount().expect("mount");
        let targets: Vec<Box<dyn CheckedTarget>> = vec![
            Box::new(CriuTarget::new(fs, vec![], Some(clock.clone()), 1 << 20)),
            Box::new(CheckpointTarget::new(verifs_fuse(
                2,
                BugConfig::none(),
                clock.clone(),
            ))),
        ];
        let harness = Mcfs::with_clock(targets, McfsConfig::default(), clock.clone());
        let mut pairing = mcfs_bench::Pairing {
            label: "criu".into(),
            harness: harness.expect("harness"),
            clock,
        };
        let (ops_per_sec, _) = measure_dfs(&mut pairing, budget);
        rows.push((
            "criu + Ganesha-like server".into(),
            format!("{ops_per_sec:>8.1} ops/s (works: no device handles)"),
        ));
    }

    // 3. LightVM-style VM snapshots around a kernel file system.
    {
        let clock = Clock::new();
        let e2 = ext_on(
            fs_ext::ExtConfig::ext2(),
            LatencyModel::ram(),
            clock.clone(),
        )
        .expect("format");
        let e4 = ext_on(
            fs_ext::ExtConfig::ext4(),
            LatencyModel::ram(),
            clock.clone(),
        )
        .expect("format");
        let targets: Vec<Box<dyn CheckedTarget>> = vec![
            Box::new(VmTarget::new(e2, clock.clone(), 256 * 1024)),
            Box::new(VmTarget::new(e4, clock.clone(), 256 * 1024)),
        ];
        let harness = Mcfs::with_clock(targets, McfsConfig::default(), clock.clone());
        let mut pairing = mcfs_bench::Pairing {
            label: "vm".into(),
            harness: harness.expect("harness"),
            clock,
        };
        let (ops_per_sec, _) = measure_dfs(&mut pairing, budget);
        rows.push((
            "LightVM-style VM snapshots".into(),
            format!("{ops_per_sec:>8.1} ops/s (paper: 20-30 ops/s)"),
        ));
    }

    // 4. Device snapshots + remounts (kernel file systems).
    {
        let mut pairing =
            pair_ext2_ext4(LatencyModel::ram(), RemountMode::PerOp, PoolConfig::small())
                .expect("pairing");
        let (ops_per_sec, _) = measure_dfs(&mut pairing, budget);
        rows.push((
            "device snapshot + remount".into(),
            format!("{ops_per_sec:>8.1} ops/s (paper: ~229 ops/s)"),
        ));
    }

    // 5. The paper's proposal: the checkpoint/restore API (VeriFS).
    {
        let mut pairing = pair_verifs(PoolConfig::small()).expect("pairing");
        let (ops_per_sec, _) = measure_dfs(&mut pairing, budget);
        rows.push((
            "checkpoint/restore API".into(),
            format!("{ops_per_sec:>8.1} ops/s (paper: ~1330 ops/s, the winner)"),
        ));
    }

    rows
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let budget: u64 = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(if quick { 300 } else { 2_000 });
    let rounds = if quick { 12 } else { 50 };

    let rows = strategy_table(budget);
    print_table("Section 5: state-tracking strategies", &rows);

    let latency = bench_cow_latency(rounds);
    let spine = bench_spine_residency();

    let strategies: String = rows
        .iter()
        .map(|(k, v)| {
            format!(
                "    {{\"strategy\": \"{}\", \"outcome\": \"{}\"}}",
                k.replace('"', "'"),
                v.trim().replace('"', "'")
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n\
         \x20 \"strategies\": [\n{strategies}\n  ],\n\
         \x20 \"cow_checkpoint\": {{\n\
         \x20   \"tree_files\": {TREE_FILES},\n\
         \x20   \"tree_depth\": {TREE_DEPTH},\n\
         \x20   \"file_bytes\": {FILE_BYTES},\n\
         \x20   \"rounds\": {rounds},\n\
         \x20   \"deep_checkpoint_ns\": {deep_ckpt},\n\
         \x20   \"cow_checkpoint_ns\": {cow_ckpt},\n\
         \x20   \"checkpoint_speedup\": {ckpt_speedup:.2},\n\
         \x20   \"deep_restore_ns\": {deep_restore},\n\
         \x20   \"cow_restore_ns\": {cow_restore},\n\
         \x20   \"restore_speedup\": {restore_speedup:.2}\n\
         \x20 }},\n\
         \x20 \"dfs_spine\": {{\n\
         \x20   \"depth\": {spine_depth},\n\
         \x20   \"checkpoint_logical_bytes\": {logical},\n\
         \x20   \"checkpoint_resident_bytes\": {resident},\n\
         \x20   \"resident_reduction\": {reduction:.2}\n\
         \x20 }}\n\
         }}",
        rounds = latency.rounds,
        deep_ckpt = latency.deep_checkpoint_ns,
        cow_ckpt = latency.cow_checkpoint_ns,
        ckpt_speedup = latency.checkpoint_speedup,
        deep_restore = latency.deep_restore_ns,
        cow_restore = latency.cow_restore_ns,
        restore_speedup = latency.restore_speedup,
        spine_depth = spine.depth,
        logical = spine.logical_bytes,
        resident = spine.resident_bytes,
        reduction = spine.reduction,
    );
    println!("\n{json}");
    std::fs::write("BENCH_snapshot.json", format!("{json}\n")).expect("write BENCH_snapshot.json");

    assert!(
        latency.checkpoint_speedup >= 10.0,
        "COW checkpoints must be >= 10x deep clones (got {:.1}x)",
        latency.checkpoint_speedup
    );
    assert!(
        spine.reduction >= 5.0,
        "the depth-{} spine must hold >= 5x less than deep clones \
         (logical {} vs resident {})",
        spine.depth,
        spine.logical_bytes,
        spine.resident_bytes
    );
}
