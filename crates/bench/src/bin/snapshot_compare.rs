//! §5's state-tracking strategy comparison.
//!
//! The paper tried, in order: CRIU process snapshots (refused for FUSE file
//! systems because they hold `/dev/fuse`; works for a Ganesha-like plain
//! server), LightVM-style VM snapshots (universal but 30 ms + 20 ms per
//! checkpoint/restore, limiting MCFS to 20–30 ops/s), and finally the
//! in-file-system checkpoint/restore API (VeriFS) that motivates the paper.
//! Kernel file systems use device snapshots + remounts as the baseline.
//!
//! Usage: `cargo run --release -p mcfs-bench --bin snapshot_compare [ops]`

use blockdev::{Clock, LatencyModel};
use mcfs::{
    CheckedTarget, CheckpointTarget, CriuTarget, Mcfs, McfsConfig, PoolConfig, RemountMode,
    VmTarget,
};
use mcfs_bench::{ext_on, measure_dfs, pair_ext2_ext4, pair_verifs, print_table, verifs_fuse};
use verifs::{BugConfig, VeriFs};
use vfs::FileSystem;

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let mut rows: Vec<(String, String)> = Vec::new();

    // 1. CRIU on a FUSE file system: refused at the first checkpoint
    //    because the daemon process holds /dev/fuse.
    {
        struct FuseProcess(fusesim::FuseMount<VeriFs>);
        impl snapshot::Snapshotable for FuseProcess {
            fn memory_image(&self) -> Vec<u8> {
                Vec::new() // never reached: the handle check refuses first
            }
            fn restore_image(&mut self, _image: &[u8]) -> Result<(), String> {
                Ok(())
            }
            fn handles(&self) -> Vec<snapshot::ProcessHandle> {
                self.0
                    .daemon()
                    .device_handles()
                    .iter()
                    .map(|h| match h {
                        fusesim::DeviceHandle::Char(p) => {
                            snapshot::ProcessHandle::CharDevice(p.clone())
                        }
                        fusesim::DeviceHandle::Block(p) => {
                            snapshot::ProcessHandle::BlockDevice(p.clone())
                        }
                    })
                    .collect()
            }
        }
        let clock = Clock::new();
        let proc = FuseProcess(verifs_fuse(1, BugConfig::none(), clock.clone()));
        let mut engine = snapshot::CriuEngine::new(Some(clock));
        let outcome = match engine.checkpoint(1, &proc) {
            Err(e) => format!("REFUSED ({e}) — as the paper found for FUSE"),
            Ok(()) => "unexpectedly worked".to_string(),
        };
        rows.push(("criu + FUSE file system".into(), outcome));
    }

    // 2. CRIU on a Ganesha-like plain user-space server (no device handles).
    {
        let clock = Clock::new();
        let mut fs = VeriFs::v1();
        fs.mount().expect("mount");
        let targets: Vec<Box<dyn CheckedTarget>> = vec![
            Box::new(CriuTarget::new(fs, vec![], Some(clock.clone()), 1 << 20)),
            Box::new(CheckpointTarget::new(verifs_fuse(
                2,
                BugConfig::none(),
                clock.clone(),
            ))),
        ];
        let harness = Mcfs::with_clock(targets, McfsConfig::default(), clock.clone());
        let mut pairing = mcfs_bench::Pairing {
            label: "criu".into(),
            harness: harness.expect("harness"),
            clock,
        };
        let (ops_per_sec, _) = measure_dfs(&mut pairing, budget);
        rows.push((
            "criu + Ganesha-like server".into(),
            format!("{ops_per_sec:>8.1} ops/s (works: no device handles)"),
        ));
    }

    // 3. LightVM-style VM snapshots around a kernel file system.
    {
        let clock = Clock::new();
        let e2 = ext_on(
            fs_ext::ExtConfig::ext2(),
            LatencyModel::ram(),
            clock.clone(),
        )
        .expect("format");
        let e4 = ext_on(
            fs_ext::ExtConfig::ext4(),
            LatencyModel::ram(),
            clock.clone(),
        )
        .expect("format");
        let targets: Vec<Box<dyn CheckedTarget>> = vec![
            Box::new(VmTarget::new(e2, clock.clone(), 256 * 1024)),
            Box::new(VmTarget::new(e4, clock.clone(), 256 * 1024)),
        ];
        let harness = Mcfs::with_clock(targets, McfsConfig::default(), clock.clone());
        let mut pairing = mcfs_bench::Pairing {
            label: "vm".into(),
            harness: harness.expect("harness"),
            clock,
        };
        let (ops_per_sec, _) = measure_dfs(&mut pairing, budget);
        rows.push((
            "LightVM-style VM snapshots".into(),
            format!("{ops_per_sec:>8.1} ops/s (paper: 20-30 ops/s)"),
        ));
    }

    // 4. Device snapshots + remounts (kernel file systems).
    {
        let mut pairing =
            pair_ext2_ext4(LatencyModel::ram(), RemountMode::PerOp, PoolConfig::small())
                .expect("pairing");
        let (ops_per_sec, _) = measure_dfs(&mut pairing, budget);
        rows.push((
            "device snapshot + remount".into(),
            format!("{ops_per_sec:>8.1} ops/s (paper: ~229 ops/s)"),
        ));
    }

    // 5. The paper's proposal: the checkpoint/restore API (VeriFS).
    {
        let mut pairing = pair_verifs(PoolConfig::small()).expect("pairing");
        let (ops_per_sec, _) = measure_dfs(&mut pairing, budget);
        rows.push((
            "checkpoint/restore API".into(),
            format!("{ops_per_sec:>8.1} ops/s (paper: ~1330 ops/s, the winner)"),
        ));
    }

    print_table("Section 5: state-tracking strategies", &rows);
}
