//! `mcfs-lint` — run the harness-soundness lint registry and the
//! source-level determinism analyzer.
//!
//! Dynamic mode (default) validates the inferred artifacts the model
//! checker's results depend on: the signature-derived independence
//! relation (MC001), the visited-set abstraction (MC002), cross-backend
//! errno models (MC003), checkpoint/restore fidelity (MC004), fsck repair
//! convergence (MC005), the interleaving explorer's concurrency
//! independence relation (MC006), and replay determinism under permuted
//! swarm configurations (MC007). See the `analyze` crate docs.
//!
//! Static mode (`--source [ROOT]`) runs the MC007 taint pass over the
//! workspace source instead: unordered iteration, wall clocks,
//! `RandomState`, raw thread spawns, pointer identity and `enumerate()`
//! slot indices reaching fingerprint/wire sinks, with
//! `// mcfs-lint: allow(MC007, reason)` suppressions.
//!
//! Usage:
//!   mcfs-lint [--quick] [--json] [--code MC00N]... [--seed N] [--list]
//!             [--source [ROOT]] [--deny MC00N]... [--allow MC00N]...
//!             [--bench-out PATH]
//!
//! Exit status contract (stable — CI depends on it):
//!   0  clean (or every finding suppressed / `--allow`ed)
//!   1  unsuppressed findings
//!   2  usage or internal error

use analyze::{run_registry, LintCode, LintOptions, LintReport, Severity, SourceOptions};

fn usage() -> &'static str {
    "usage: mcfs-lint [--quick] [--json] [--code MC00N]... [--seed N] [--list]\n\
     \x20                [--source [ROOT]] [--deny MC00N]... [--allow MC00N]...\n\
     \x20                [--bench-out PATH]"
}

fn parse_code(raw: &str) -> LintCode {
    LintCode::parse(raw).unwrap_or_else(|| {
        eprintln!("unknown lint code `{raw}` (try --list)");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for c in LintCode::ALL {
            println!("{c}  {}", c.description());
        }
        return;
    }
    let mut codes: Vec<LintCode> = Vec::new();
    let mut allow: Vec<LintCode> = Vec::new();
    let mut seed: u64 = LintOptions::default().seed;
    let mut source_root: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--code" | "--deny" | "--allow" => {
                let flag = args[i].clone();
                i += 1;
                let raw = args.get(i).unwrap_or_else(|| {
                    eprintln!("{flag} needs an argument (MC001..MC007)");
                    std::process::exit(2);
                });
                let code = parse_code(raw);
                match flag.as_str() {
                    "--allow" => allow.push(code),
                    // `--deny` is the default for every code; accepting it
                    // explicitly keeps CI invocations forward-compatible.
                    "--deny" => allow.retain(|c| *c != code),
                    _ => codes.push(code),
                }
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer argument");
                    std::process::exit(2);
                });
            }
            "--source" => {
                // Optional ROOT operand: the next arg if it isn't a flag.
                let next = args.get(i + 1);
                if let Some(n) = next.filter(|n| !n.starts_with("--")) {
                    source_root = Some(n.clone());
                    i += 1;
                } else {
                    source_root = Some(".".to_string());
                }
            }
            "--bench-out" => {
                i += 1;
                bench_out = Some(
                    args.get(i)
                        .unwrap_or_else(|| {
                            eprintln!("--bench-out needs a path argument");
                            std::process::exit(2);
                        })
                        .clone(),
                );
            }
            "--quick" | "--json" => {}
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let started = std::time::Instant::now();
    let report = if let Some(root) = &source_root {
        let sr = analyze::run_source(&SourceOptions::new(root)).unwrap_or_else(|e| {
            eprintln!("mcfs-lint: source analysis failed: {e}");
            std::process::exit(2);
        });
        LintReport {
            checks_run: sr.files_scanned,
            source: sr.findings,
            ..LintReport::default()
        }
    } else {
        let opts = LintOptions {
            quick: args.iter().any(|a| a == "--quick"),
            seed,
            codes: if codes.is_empty() { None } else { Some(codes) },
        };
        run_registry(&opts)
    };
    let wall_ms = started.elapsed().as_millis();

    if let Some(path) = &bench_out {
        let unsuppressed = report
            .source
            .iter()
            .filter(|f| f.suppressed.is_none())
            .count();
        let errors = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let json = format!(
            "{{\n  \"bench\": \"lint\",\n  \"mode\": \"{}\",\n  \"wall_ms\": {wall_ms},\n  \
             \"checks_run\": {},\n  \"findings\": {},\n  \"unsuppressed\": {},\n  \
             \"suppressed\": {},\n  \"dynamic_errors\": {errors}\n}}",
            if source_root.is_some() {
                "source"
            } else {
                "dynamic"
            },
            report.checks_run,
            report.diagnostics.len() + report.source.len(),
            unsuppressed,
            report.source.len() - unsuppressed,
        );
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("mcfs-lint: cannot write {path}: {e}");
            std::process::exit(2);
        }
    }

    if args.iter().any(|a| a == "--json") {
        println!("{}", report.to_sarif_json());
    } else {
        print!("{}", report.render_human());
    }

    let gating_dynamic = report
        .diagnostics
        .iter()
        .any(|d| d.severity == Severity::Error && !allow.contains(&d.code));
    let gating_source =
        !allow.contains(&LintCode::Mc007) && report.source.iter().any(|f| f.suppressed.is_none());
    if gating_dynamic || gating_source {
        std::process::exit(1);
    }
}
