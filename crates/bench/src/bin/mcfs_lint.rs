//! `mcfs-lint` — run the harness-soundness lint registry.
//!
//! Validates the inferred artifacts the model checker's results depend on:
//! the signature-derived independence relation (MC001), the visited-set
//! abstraction (MC002), cross-backend errno models (MC003),
//! checkpoint/restore fidelity (MC004), fsck repair convergence (MC005),
//! and the interleaving explorer's concurrency independence relation
//! (MC006). See `analyze` crate docs.
//!
//! Usage:
//!   mcfs-lint [--quick] [--json] [--code MC00N]... [--seed N] [--list]
//!
//! `--quick` runs the CI smoke subset (light backends + ext2);
//! `--json` emits a SARIF-style report instead of text;
//! `--code` restricts to specific codes (repeatable);
//! `--list` prints the registered codes and exits.
//!
//! Exit status is 1 if any error-severity finding was produced.

use analyze::{run_registry, LintCode, LintOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: mcfs-lint [--quick] [--json] [--code MC00N]... [--seed N] [--list]");
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for c in LintCode::ALL {
            println!("{c}  {}", c.description());
        }
        return;
    }
    let mut codes: Vec<LintCode> = Vec::new();
    let mut seed: u64 = LintOptions::default().seed;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--code" => {
                i += 1;
                let raw = args.get(i).unwrap_or_else(|| {
                    eprintln!("--code needs an argument (MC001..MC006)");
                    std::process::exit(2);
                });
                match LintCode::parse(raw) {
                    Some(c) => codes.push(c),
                    None => {
                        eprintln!("unknown lint code `{raw}` (try --list)");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer argument");
                    std::process::exit(2);
                });
            }
            "--quick" | "--json" => {}
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let opts = LintOptions {
        quick: args.iter().any(|a| a == "--quick"),
        seed,
        codes: if codes.is_empty() { None } else { Some(codes) },
    };
    let report = run_registry(&opts);
    if args.iter().any(|a| a == "--json") {
        println!("{}", report.to_sarif_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.has_errors() {
        std::process::exit(1);
    }
}
