//! Design-choice ablations called out in DESIGN.md.
//!
//! 1. **Abstract-state matching vs raw-state matching** (§3.3): hashing the
//!    noisy attributes (atime) makes nearly every state unique — the state
//!    explosion the abstraction function exists to prevent.
//! 2. **Partial-order reduction**: path-disjoint operations commute, so
//!    sleep sets prune redundant interleavings.
//! 3. **Swarm verification** (§7): more diversified workers find a seeded
//!    bug sooner in aggregate.
//! 4. **VFS-level checkpointing** (§7 future work): kernel file systems with
//!    checkpoint/restore support vs the remount workaround.
//!
//! Usage: `cargo run --release -p mcfs-bench --bin ablation [ops]`

use blockdev::Clock;
use mcfs::{CheckedTarget, CheckpointTarget, Mcfs, McfsConfig, PoolConfig};
use mcfs_bench::print_table;
use modelcheck::{run_swarm, DfsExplorer, ExploreConfig, SwarmConfig};
use verifs::{BugConfig, VeriFs};
use vfs::FileSystem;

fn verifs_harness(atime_noise: bool, clock: Clock, bugs: BugConfig) -> Mcfs {
    // Bare VeriFS instances (no FUSE): the ablation isolates the matching
    // strategy, so attribute-cache timing must not perturb the hashes.
    let mut a = VeriFs::v2();
    a.mount().expect("mount");
    let mut b = VeriFs::v2_with_bugs(bugs);
    b.mount().expect("mount");
    let targets: Vec<Box<dyn CheckedTarget>> = vec![
        Box::new(CheckpointTarget::new(a)),
        Box::new(CheckpointTarget::new(b)),
    ];
    let mut cfg = McfsConfig {
        pool: PoolConfig::small(),
        ..McfsConfig::default()
    };
    cfg.abstraction.include_atime = atime_noise;
    Mcfs::with_clock(targets, cfg, clock).expect("harness")
}

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let mut rows = Vec::new();

    // 1. Abstraction ablation: include atime in the hash (≈ hashing raw
    //    state) and watch deduplication collapse. A single file system is
    //    explored directly so only the matching strategy varies (§3.3).
    for (label, noisy) in [
        ("abstract state (Algorithm 1)", false),
        ("raw state (atime hashed)", true),
    ] {
        struct Single {
            fs: VeriFs,
            ops: Vec<mcfs::FsOp>,
            noisy: bool,
        }
        impl modelcheck::ModelSystem for Single {
            type Op = mcfs::FsOp;
            fn ops(&mut self) -> Vec<mcfs::FsOp> {
                self.ops.clone()
            }
            fn apply(&mut self, op: &mcfs::FsOp) -> modelcheck::ApplyOutcome {
                mcfs::execute(&mut self.fs, op, &[]);
                modelcheck::ApplyOutcome::Ok
            }
            fn abstract_state(&mut self) -> u128 {
                let cfg = mcfs::AbstractionConfig {
                    include_atime: self.noisy,
                    ..mcfs::AbstractionConfig::default()
                };
                mcfs::abstract_state(&mut self.fs, &cfg)
                    .map(|d| d.as_u128())
                    .unwrap_or(u128::MAX)
            }
            fn checkpoint(&mut self, id: modelcheck::StateId) -> Result<usize, String> {
                use vfs::FsCheckpoint;
                self.fs.checkpoint(id.0).map_err(|e| e.to_string())?;
                Ok(self.fs.state_bytes())
            }
            fn restore(&mut self, id: modelcheck::StateId) -> Result<(), String> {
                use vfs::FsCheckpoint;
                self.fs.restore_keep(id.0).map_err(|e| e.to_string())
            }
            fn release(&mut self, id: modelcheck::StateId) {
                use vfs::FsCheckpoint;
                let _ = self.fs.discard(id.0);
            }
        }
        let mut fs = VeriFs::v2();
        fs.mount().expect("mount");
        let mut single = Single {
            fs,
            ops: PoolConfig::small().ops(),
            noisy,
        };
        let report = DfsExplorer::new(ExploreConfig {
            max_depth: 3,
            max_ops: budget,
            ..ExploreConfig::default()
        })
        .run(&mut single);
        let dedup = report.stats.states_matched as f64 / report.stats.ops_executed.max(1) as f64;
        rows.push((
            format!("matching: {label}"),
            format!(
                "{} ops -> {} distinct states, {:.0}% matched ({:?})",
                report.stats.ops_executed,
                report.stats.states_new,
                dedup * 100.0,
                report.stop,
            ),
        ));
    }

    // 2. Partial-order reduction on the harness's path-disjoint ops.
    for (label, por) in [("off", false), ("on", true)] {
        let clock = Clock::new();
        let mut harness = verifs_harness(false, clock.clone(), BugConfig::none());
        let report = DfsExplorer::new(ExploreConfig {
            max_depth: 3,
            max_ops: budget * 4,
            por,
            stop_on_violation: true,
            ..ExploreConfig::default()
        })
        .with_clock(clock)
        .run(&mut harness);
        rows.push((
            format!("partial-order reduction {label}"),
            format!(
                "{} ops for {} states ({} pruned)",
                report.stats.ops_executed, report.stats.states_new, report.stats.pruned
            ),
        ));
    }

    // 3. Swarm scaling on a seeded bug.
    for workers in [1usize, 2, 4] {
        let cfg = SwarmConfig {
            workers,
            base: ExploreConfig {
                max_depth: 12,
                max_ops: 60_000,
                seed: 11,
                ..ExploreConfig::default()
            },
            shared_visited: false,
            strategies: vec![],
        };
        let report = run_swarm(&cfg, |_| {
            verifs_harness(
                false,
                Clock::new(),
                BugConfig {
                    v2_size_only_on_capacity_growth: true,
                    ..BugConfig::default()
                },
            )
        });
        let first = report
            .violations()
            .map(|v| v.ops_executed)
            .min()
            .map(|o| o.to_string())
            .unwrap_or_else(|| "none".to_string());
        rows.push((
            format!("swarm x{workers}"),
            format!(
                "found={} first-detection ops={} total ops={}",
                report.found_violation(),
                first,
                report.total_ops()
            ),
        ));
    }

    // 4. VFS-level checkpointing (§7 future work) vs the remount strategy
    //    for the same kernel-file-system pairing.
    {
        use blockdev::LatencyModel;
        use mcfs::{RemountMode, RemountTarget, VfsCheckpointTarget};
        let run = |vfs_api: bool| -> f64 {
            let clock = Clock::new();
            let e2 = mcfs_bench::ext_on(
                fs_ext::ExtConfig::ext2(),
                LatencyModel::ram(),
                clock.clone(),
            )
            .expect("format");
            let e4 = mcfs_bench::ext_on(
                fs_ext::ExtConfig::ext4(),
                LatencyModel::ram(),
                clock.clone(),
            )
            .expect("format");
            let targets: Vec<Box<dyn CheckedTarget>> = if vfs_api {
                vec![
                    Box::new(VfsCheckpointTarget::new(e2).with_clock(clock.clone())),
                    Box::new(VfsCheckpointTarget::new(e4).with_clock(clock.clone())),
                ]
            } else {
                vec![
                    Box::new(RemountTarget::new(e2, RemountMode::PerOp).with_clock(clock.clone())),
                    Box::new(RemountTarget::new(e4, RemountMode::PerOp).with_clock(clock.clone())),
                ]
            };
            let mut harness = Mcfs::with_clock(
                targets,
                McfsConfig {
                    pool: PoolConfig::small(),
                    ..McfsConfig::default()
                },
                clock.clone(),
            )
            .expect("harness");
            let start = clock.now_ns();
            let report = DfsExplorer::new(ExploreConfig {
                max_depth: 4,
                max_ops: budget,
                ..ExploreConfig::default()
            })
            .with_clock(clock.clone())
            .run(&mut harness);
            report.stats.ops_executed as f64 * 1e9 / (clock.now_ns() - start).max(1) as f64
        };
        let remount = run(false);
        let vfs_api = run(true);
        rows.push((
            "ext2-vs-ext4: remount workaround".to_string(),
            format!("{remount:>8.1} ops/s"),
        ));
        rows.push((
            "ext2-vs-ext4: VFS-level checkpoint API".to_string(),
            format!(
                "{vfs_api:>8.1} ops/s ({:.1}x — what §7 hopes to gain)",
                vfs_api / remount
            ),
        ));
    }

    print_table(
        "Ablations: abstraction, POR, swarm, VFS checkpointing",
        &rows,
    );
}
