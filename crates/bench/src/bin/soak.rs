//! §5's soak experiment: a long MCFS run with zero discrepancies.
//!
//! The paper ran MCFS with Ext4 and VeriFS1 for over five days — more than
//! 159 million syscalls without errors, behavioural discrepancies, or
//! corruption. This binary runs the scaled-down equivalent and asserts the
//! same outcome: zero violations across the whole budget.
//!
//! Usage: `cargo run --release -p mcfs-bench --bin soak [ops]`

use blockdev::LatencyModel;
use mcfs::{
    CheckedTarget, CheckpointTarget, Mcfs, McfsConfig, PoolConfig, RemountMode, RemountTarget,
};
use mcfs_bench::{ext_on, verifs_fuse};
use modelcheck::{ExploreConfig, RandomWalk, StopReason};
use verifs::BugConfig;

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);
    // Ext4 vs VeriFS1, as in the paper's 5-day run.
    let clock = blockdev::Clock::new();
    let e4 = ext_on(
        fs_ext::ExtConfig::ext4(),
        LatencyModel::ram(),
        clock.clone(),
    )
    .expect("format");
    let v1 = verifs_fuse(1, BugConfig::none(), clock.clone());
    let targets: Vec<Box<dyn CheckedTarget>> = vec![
        Box::new(RemountTarget::new(e4, RemountMode::PerOp).with_clock(clock.clone())),
        Box::new(CheckpointTarget::new(v1)),
    ];
    let mut harness = Mcfs::with_clock(
        targets,
        McfsConfig {
            pool: PoolConfig::medium(),
            ..McfsConfig::default()
        },
        clock.clone(),
    )
    .expect("harness");
    let walk = RandomWalk::new(ExploreConfig {
        max_depth: 20,
        max_ops: budget,
        seed: 42,
        ..ExploreConfig::default()
    })
    .with_clock(clock.clone());
    let report = walk.run(&mut harness);

    println!("== Section 5 soak: Ext4 vs VeriFS1 ==");
    println!("  ops executed      : {}", report.stats.ops_executed);
    println!("  distinct states   : {}", report.stats.states_new);
    println!("  violations        : {}", report.violations.len());
    println!("  virtual duration  : {:.1} s", clock.now_secs());
    println!(
        "  rate              : {:.1} ops/s",
        report.stats.ops_executed as f64 / clock.now_secs().max(1e-9)
    );
    println!("  paper: 159M syscalls over 5+ days, zero discrepancies");
    println!("\n{}", harness.coverage().summary());
    assert_eq!(report.stop, StopReason::OpBudget, "must exhaust the budget");
    assert!(
        report.violations.is_empty(),
        "soak found a false positive: {}",
        report.violations[0]
    );
    println!("  RESULT: zero discrepancies — matches the paper");
}
