//! §6's bug-detection experiments: operations-to-detection for the four
//! historical VeriFS bugs.
//!
//! Paper results: while model-checking VeriFS1 vs Ext4, the truncate bug
//! surfaced after >9 K operations and the cache-invalidation bug after
//! ~12 K; while checking VeriFS2 vs VeriFS1, the hole-zeroing bug surfaced
//! after >900 K and the size-update bug after >1.2 M operations. The ops
//! counts scale with pool size; the reproducible claim is the *ordering*
//! (early-development bugs are shallow, later ones need rarer op combos)
//! and that all four are found by behavioural divergence alone.
//!
//! Usage: `cargo run --release -p mcfs-bench --bin bug_detection [max-ops]`

use mcfs::{CheckedTarget, CheckpointTarget, Mcfs, McfsConfig, PoolConfig};
use mcfs_bench::verifs_fuse;
use modelcheck::{ExploreConfig, RandomWalk, StopReason};
use verifs::BugConfig;

fn main() {
    let max_ops: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000);

    let bugs: [(&str, &str, BugConfig, bool); 4] = [
        (
            "bug 1: truncate fails to zero new space",
            "paper: >9K ops (VeriFS1 vs Ext4)",
            BugConfig {
                v1_truncate_no_zero: true,
                ..BugConfig::default()
            },
            false,
        ),
        (
            "bug 2: restore skips kernel-cache invalidation",
            "paper: ~12K ops (VeriFS1 vs Ext4)",
            BugConfig {
                v1_skip_invalidation: true,
                ..BugConfig::default()
            },
            false,
        ),
        (
            "bug 3: write does not zero holes",
            "paper: >900K ops (VeriFS2 vs VeriFS1)",
            BugConfig {
                v2_hole_no_zero: true,
                ..BugConfig::default()
            },
            true,
        ),
        (
            "bug 4: size updated only on capacity growth",
            "paper: >1.2M ops (VeriFS2 vs VeriFS1)",
            BugConfig {
                v2_size_only_on_capacity_growth: true,
                ..BugConfig::default()
            },
            true,
        ),
    ];

    println!("== Section 6: ops-to-detection for the four historical bugs ==");
    for (label, paper, cfg, v2_pair) in bugs {
        let mut detections = Vec::new();
        for seed in 0..3u64 {
            let clock = blockdev::Clock::new();
            let targets: Vec<Box<dyn CheckedTarget>> = if v2_pair {
                // VeriFS2 (buggy) checked against VeriFS1 (reference).
                vec![
                    Box::new(CheckpointTarget::new(verifs_fuse(
                        1,
                        BugConfig::none(),
                        clock.clone(),
                    ))),
                    Box::new(CheckpointTarget::new(verifs_fuse(2, cfg, clock.clone()))),
                ]
            } else {
                // VeriFS1 (buggy) checked against a clean VeriFS2 standing in
                // for the reference implementation.
                vec![
                    Box::new(CheckpointTarget::new(verifs_fuse(
                        2,
                        BugConfig::none(),
                        clock.clone(),
                    ))),
                    Box::new(CheckpointTarget::new(verifs_fuse(1, cfg, clock.clone()))),
                ]
            };
            // VeriFS1-era checking used a small pool (v1 supported few
            // operations); the VeriFS2 bugs were found later against a
            // richer pool — which is also why the paper's ops-to-detection
            // grows by two orders of magnitude between phases.
            let pool = if v2_pair {
                PoolConfig::medium()
            } else {
                PoolConfig::small()
            };
            let mut harness = Mcfs::with_clock(
                targets,
                McfsConfig {
                    pool,
                    ..McfsConfig::default()
                },
                clock,
            )
            .expect("harness");
            let walk = RandomWalk::new(ExploreConfig {
                max_depth: 12,
                max_ops,
                seed,
                ..ExploreConfig::default()
            });
            let report = walk.run(&mut harness);
            match report.stop {
                StopReason::Violation => {
                    detections.push(report.violations[0].ops_executed);
                }
                _ => detections.push(u64::MAX),
            }
        }
        let shown: Vec<String> = detections
            .iter()
            .map(|&d| {
                if d == u64::MAX {
                    format!(">{max_ops} (not detected)")
                } else {
                    d.to_string()
                }
            })
            .collect();
        println!("  {label}");
        println!(
            "    detected after ops (3 seeds): {}   [{paper}]",
            shown.join(", ")
        );
    }
}
