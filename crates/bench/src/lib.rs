//! Experiment harness regenerating the paper's evaluation (§6).
//!
//! Each figure/measurement has a binary under `src/bin/` that prints the
//! same rows/series the paper reports, plus criterion benches for CI-style
//! tracking. Everything is measured in **virtual time** (see DESIGN.md):
//! device latencies, FUSE crossings, remount overheads, swap traffic and
//! hash-table resizes all charge a shared [`blockdev::Clock`], so ratios are
//! deterministic and runs take seconds instead of the paper's weeks.

use blockdev::{Clock, LatencyModel, MtdDevice, RamDisk, TimedDevice};
use fs_ext::{ExtConfig, ExtFs};
use fs_jffs2::{Jffs2Config, Jffs2Fs};
use fs_xfs::{XfsConfig, XfsFs};
use fusesim::{FuseConfig, FuseMount};
use mcfs::{
    CheckedTarget, CheckpointTarget, Mcfs, McfsConfig, PoolConfig, RemountMode, RemountTarget,
};
use modelcheck::{DfsExplorer, ExploreConfig, ExploreReport, MemConfig, RandomWalk};
use verifs::{BugConfig, VeriFs};
use vfs::{FileMode, FileSystem, VfsResult};

/// The device sizes from the paper: 256 KiB RAM block devices for ext2/ext4,
/// 16 MiB for XFS (its minimum).
pub const EXT_DEVICE_BYTES: u64 = 256 * 1024;
/// XFS device size (16 MiB minimum).
pub const XFS_DEVICE_BYTES: u64 = 16 * 1024 * 1024;
/// JFFS2 flash geometry: 16 KiB erase blocks × 64 = 1 MiB.
pub const JFFS2_ERASE_BLOCK: usize = 16 * 1024;
/// JFFS2 erase-block count.
pub const JFFS2_BLOCKS: usize = 64;

/// Memory-model scale for the figure experiments: the paper's 64 GB RAM /
/// 128 GB swap VM scaled by 1/512 so its dynamics appear within bench-sized
/// runs.
pub fn scaled_mem() -> MemConfig {
    MemConfig {
        ram_bytes: 16 << 20,
        swap_bytes: 16 << 30,
        swap_ns_per_mib: 250_000,
    }
}

/// Builds an ext2 or ext4 on a timed RAM/SSD/HDD device.
///
/// # Errors
///
/// Propagated format errors.
pub fn ext_on(
    cfg: ExtConfig,
    model: LatencyModel,
    clock: Clock,
) -> VfsResult<ExtFs<TimedDevice<RamDisk>>> {
    let disk = RamDisk::new(cfg.block_size, EXT_DEVICE_BYTES).map_err(|_| vfs::Errno::EINVAL)?;
    let dev = TimedDevice::new(disk, model, clock);
    ExtFs::format(dev, cfg)
}

/// Builds an XFS on a timed RAM device (16 MiB, the paper's size).
///
/// # Errors
///
/// Propagated format errors.
pub fn xfs_on(model: LatencyModel, clock: Clock) -> VfsResult<XfsFs<TimedDevice<RamDisk>>> {
    let cfg = XfsConfig::default();
    let disk = RamDisk::new(cfg.block_size, XFS_DEVICE_BYTES).map_err(|_| vfs::Errno::EINVAL)?;
    let dev = TimedDevice::new(disk, model, clock);
    XfsFs::format(dev, cfg)
}

/// Builds a JFFS2 on an in-RAM MTD with flash timing charged to `clock`.
///
/// # Errors
///
/// Propagated format errors.
pub fn jffs2_on(clock: Clock) -> VfsResult<Jffs2Fs> {
    let mtd = MtdDevice::new(JFFS2_ERASE_BLOCK, JFFS2_BLOCKS).map_err(|_| vfs::Errno::EINVAL)?;
    let cfg = Jffs2Config {
        clock: Some(clock),
        ..Jffs2Config::default()
    };
    Jffs2Fs::format(mtd, cfg)
}

/// Builds a VeriFS (v1 or v2) mounted through the FUSE layer with the
/// invalidation connection wired — the paper's deployment.
pub fn verifs_fuse(version: u8, bugs: BugConfig, clock: Clock) -> FuseMount<VeriFs> {
    let fs = match version {
        1 => VeriFs::v1_with_bugs(bugs),
        _ => VeriFs::v2_with_bugs(bugs),
    };
    let mut mount = FuseMount::with_config(fs, FuseConfig::default(), Some(clock));
    let conn = mount.connection();
    mount
        .daemon_mut()
        .fs_mut()
        .set_invalidation_sink(std::sync::Arc::new(conn));
    mount
}

/// Builds a VeriFS2 holding `files` regular files of `file_bytes` each, all
/// at path depth `depth`, spread over 8 directory chains; returns the file
/// paths. The wall-clock hashing and copy-on-write checkpoint benchmarks
/// share this tree shape (acceptance: 200 files, depth 6).
pub fn verifs_tree(files: usize, depth: usize, file_bytes: usize) -> (VeriFs, Vec<String>) {
    const CHAINS: usize = 8;
    // The default VeriFS2 inode table (128) is smaller than the benchmark
    // tree; raise the limits, keeping the v2 feature set.
    let mut cfg = verifs::VeriFsConfig::v2();
    cfg.max_inodes = 2 * (files + CHAINS * depth);
    cfg.data_budget = Some(64 << 20);
    let mut fs = VeriFs::with_config(cfg);
    fs.mount().expect("mount");
    let mut paths = Vec::with_capacity(files);
    for chain in 0..CHAINS {
        let mut dir = String::new();
        for level in 0..depth - 1 {
            dir = format!("{dir}/c{chain}l{level}");
            fs.mkdir(&dir, FileMode::DIR_DEFAULT).expect("mkdir");
        }
    }
    for i in 0..files {
        let chain = i % CHAINS;
        let mut dir = String::new();
        for level in 0..depth - 1 {
            dir = format!("{dir}/c{chain}l{level}");
        }
        let path = format!("{dir}/f{i}");
        let fd = fs.create(&path, FileMode::REG_DEFAULT).expect("create");
        fs.write(fd, &vec![i as u8; file_bytes]).expect("write");
        fs.close(fd).expect("close");
        paths.push(path);
    }
    (fs, paths)
}

/// A named file-system pairing ready for model checking.
pub struct Pairing {
    /// Row label, e.g. `"Ext2 vs Ext4 (RAM)"`.
    pub label: String,
    /// The harness.
    pub harness: Mcfs,
    /// The shared virtual clock.
    pub clock: Clock,
}

/// Builds the Ext2-vs-Ext4 pairing on the given device class.
///
/// # Errors
///
/// Propagated construction errors.
pub fn pair_ext2_ext4(
    model: LatencyModel,
    mode: RemountMode,
    pool: PoolConfig,
) -> VfsResult<Pairing> {
    pair_ext2_ext4_cfg(
        model,
        mode,
        McfsConfig {
            pool,
            ..McfsConfig::default()
        },
    )
}

/// [`pair_ext2_ext4`] with full control of the harness configuration —
/// crash exploration, voting, pool, all of it.
///
/// # Errors
///
/// Propagated construction errors.
pub fn pair_ext2_ext4_cfg(
    model: LatencyModel,
    mode: RemountMode,
    cfg: McfsConfig,
) -> VfsResult<Pairing> {
    let clock = Clock::new();
    let e2 = ext_on(ExtConfig::ext2(), model, clock.clone())?;
    let e4 = ext_on(ExtConfig::ext4(), model, clock.clone())?;
    let targets: Vec<Box<dyn CheckedTarget>> = vec![
        Box::new(RemountTarget::new(e2, mode).with_clock(clock.clone())),
        Box::new(RemountTarget::new(e4, mode).with_clock(clock.clone())),
    ];
    let harness = Mcfs::with_clock(targets, cfg, clock.clone())?;
    Ok(Pairing {
        label: format!("Ext2 vs Ext4 ({})", model.class),
        harness,
        clock,
    })
}

/// Builds the Ext4-vs-XFS pairing (XFS's big device is what drives the
/// paper's swap explosion).
///
/// # Errors
///
/// Propagated construction errors.
pub fn pair_ext4_xfs(mode: RemountMode, pool: PoolConfig) -> VfsResult<Pairing> {
    let clock = Clock::new();
    let e4 = ext_on(ExtConfig::ext4(), LatencyModel::ram(), clock.clone())?;
    let xfs = xfs_on(LatencyModel::ram(), clock.clone())?;
    let targets: Vec<Box<dyn CheckedTarget>> = vec![
        Box::new(RemountTarget::new(e4, mode).with_clock(clock.clone())),
        Box::new(RemountTarget::new(xfs, mode).with_clock(clock.clone())),
    ];
    let harness = Mcfs::with_clock(
        targets,
        McfsConfig {
            pool,
            ..McfsConfig::default()
        },
        clock.clone(),
    )?;
    Ok(Pairing {
        label: "Ext4 vs XFS (RAM)".to_string(),
        harness,
        clock,
    })
}

/// Builds the Ext4-vs-JFFS2 pairing.
///
/// # Errors
///
/// Propagated construction errors.
pub fn pair_ext4_jffs2(pool: PoolConfig) -> VfsResult<Pairing> {
    let clock = Clock::new();
    let e4 = ext_on(ExtConfig::ext4(), LatencyModel::ram(), clock.clone())?;
    let j2 = jffs2_on(clock.clone())?;
    let targets: Vec<Box<dyn CheckedTarget>> = vec![
        Box::new(RemountTarget::new(e4, RemountMode::PerOp).with_clock(clock.clone())),
        Box::new(RemountTarget::new(j2, RemountMode::PerOp).with_clock(clock.clone())),
    ];
    let harness = Mcfs::with_clock(
        targets,
        McfsConfig {
            pool,
            ..McfsConfig::default()
        },
        clock.clone(),
    )?;
    Ok(Pairing {
        label: "Ext4 vs JFFS2".to_string(),
        harness,
        clock,
    })
}

/// Builds the VeriFS1-vs-VeriFS2 pairing through FUSE with the
/// checkpoint/restore API (the paper's fastest configuration).
///
/// # Errors
///
/// Propagated construction errors.
pub fn pair_verifs(pool: PoolConfig) -> VfsResult<Pairing> {
    pair_verifs_cfg(McfsConfig {
        pool,
        ..McfsConfig::default()
    })
}

/// [`pair_verifs`] with full control of the harness configuration.
///
/// # Errors
///
/// Propagated construction errors.
pub fn pair_verifs_cfg(cfg: McfsConfig) -> VfsResult<Pairing> {
    let clock = Clock::new();
    let v1 = verifs_fuse(1, BugConfig::none(), clock.clone());
    let v2 = verifs_fuse(2, BugConfig::none(), clock.clone());
    let targets: Vec<Box<dyn CheckedTarget>> = vec![
        Box::new(CheckpointTarget::new(v1)),
        Box::new(CheckpointTarget::new(v2)),
    ];
    let harness = Mcfs::with_clock(targets, cfg, clock.clone())?;
    Ok(Pairing {
        label: "VeriFS1 vs VeriFS2".to_string(),
        harness,
        clock,
    })
}

/// Runs a bounded DFS over a pairing and returns `(ops/s, report)` measured
/// in virtual time.
pub fn measure_dfs(pairing: &mut Pairing, max_ops: u64) -> (f64, ExploreReport<mcfs::FsOp>) {
    measure_dfs_depth(pairing, max_ops, 6)
}

/// [`measure_dfs`] with an explicit depth bound — a small depth plus a
/// generous op budget lets the DFS run to exhaustion, which is what the
/// POR-relation comparison needs (state counts are only comparable across
/// relations when both runs terminate by exhaustion, not by budget).
pub fn measure_dfs_depth(
    pairing: &mut Pairing,
    max_ops: u64,
    max_depth: usize,
) -> (f64, ExploreReport<mcfs::FsOp>) {
    let cfg = ExploreConfig {
        max_depth,
        max_ops,
        mem: scaled_mem(),
        stop_on_violation: true,
        retain_states: true, // SPIN keeps tracked state data for the run
        ..ExploreConfig::default()
    };
    let start = pairing.clock.now_ns();
    let report = DfsExplorer::new(cfg)
        .with_clock(pairing.clock.clone())
        .run(&mut pairing.harness);
    let elapsed = (pairing.clock.now_ns() - start).max(1);
    let ops_per_sec = report.stats.ops_executed as f64 * 1e9 / elapsed as f64;
    (ops_per_sec, report)
}

/// Runs a randomized walk over a pairing (the long-run soak mode) and
/// returns `(ops/s, report)` in virtual time.
pub fn measure_walk(
    pairing: &mut Pairing,
    max_ops: u64,
    seed: u64,
) -> (f64, ExploreReport<mcfs::FsOp>) {
    let cfg = ExploreConfig {
        max_depth: 40,
        max_ops,
        mem: scaled_mem(),
        stop_on_violation: true,
        retain_states: true,
        seed,
        ..ExploreConfig::default()
    };
    let start = pairing.clock.now_ns();
    let report = RandomWalk::new(cfg)
        .with_clock(pairing.clock.clone())
        .run(&mut pairing.harness);
    let elapsed = (pairing.clock.now_ns() - start).max(1);
    let ops_per_sec = report.stats.ops_executed as f64 * 1e9 / elapsed as f64;
    (ops_per_sec, report)
}

/// Prints an aligned two-column table.
pub fn print_table(title: &str, rows: &[(String, String)]) {
    println!("\n== {title} ==");
    let w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    for (k, v) in rows {
        println!("  {k:<w$}  {v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_pairings_construct_and_run() {
        let pool = PoolConfig::small();
        for mut pairing in [
            pair_ext2_ext4(LatencyModel::ram(), RemountMode::PerOp, pool.clone()).unwrap(),
            pair_ext4_xfs(RemountMode::PerOp, pool.clone()).unwrap(),
            pair_ext4_jffs2(pool.clone()).unwrap(),
            pair_verifs(pool.clone()).unwrap(),
        ] {
            let (ops_per_sec, report) = measure_dfs(&mut pairing, 150);
            assert!(
                report.violations.is_empty(),
                "{}: false positive: {}",
                pairing.label,
                report.violations[0]
            );
            assert!(ops_per_sec > 0.0, "{}", pairing.label);
        }
    }
}
