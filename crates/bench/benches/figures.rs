//! Criterion benches tracking the wall-clock cost of each figure's pairing.
//!
//! The experiment *results* are in virtual time (see the `fig2`/`fig3`
//! binaries); these benches track the host cost of running the harness so
//! regressions in the simulation itself are visible.

use criterion::{criterion_group, criterion_main, Criterion};

use blockdev::LatencyModel;
use mcfs::{PoolConfig, RemountMode};
use mcfs_bench::{measure_dfs, pair_ext2_ext4, pair_ext4_jffs2, pair_ext4_xfs, pair_verifs};

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("ext2_vs_ext4_ram", |b| {
        b.iter(|| {
            let mut p =
                pair_ext2_ext4(LatencyModel::ram(), RemountMode::PerOp, PoolConfig::small())
                    .expect("pairing");
            measure_dfs(&mut p, 150)
        })
    });
    group.bench_function("ext4_vs_xfs", |b| {
        b.iter(|| {
            let mut p = pair_ext4_xfs(RemountMode::PerOp, PoolConfig::small()).expect("pairing");
            measure_dfs(&mut p, 150)
        })
    });
    group.bench_function("ext4_vs_jffs2", |b| {
        b.iter(|| {
            let mut p = pair_ext4_jffs2(PoolConfig::small()).expect("pairing");
            measure_dfs(&mut p, 150)
        })
    });
    group.bench_function("verifs1_vs_verifs2", |b| {
        b.iter(|| {
            let mut p = pair_verifs(PoolConfig::small()).expect("pairing");
            measure_dfs(&mut p, 150)
        })
    });
    group.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("verifs_walk_1k_ops", |b| {
        b.iter(|| {
            let mut p = pair_verifs(PoolConfig::medium()).expect("pairing");
            mcfs_bench::measure_walk(&mut p, 1_000, 3)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig2, bench_fig3);
criterion_main!(benches);
