//! Criterion benches for the design-choice ablations: abstraction hashing
//! and partial-order reduction.

use criterion::{criterion_group, criterion_main, Criterion};

use mcfs::{abstract_state, AbstractionConfig};
use modelcheck::{DfsExplorer, ExploreConfig};
use verifs::VeriFs;
use vfs::{FileMode, FileSystem};

fn populated_verifs() -> VeriFs {
    let mut fs = VeriFs::v2();
    fs.mount().expect("mount");
    for d in ["/d0", "/d0/d1"] {
        fs.mkdir(d, FileMode::DIR_DEFAULT).expect("mkdir");
    }
    for (i, f) in ["/f0", "/f1", "/d0/f2", "/d0/d1/f3"].iter().enumerate() {
        let fd = fs.create(f, FileMode::REG_DEFAULT).expect("create");
        fs.write(fd, &vec![i as u8; 2048]).expect("write");
        fs.close(fd).expect("close");
    }
    fs
}

fn bench_abstraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("abstraction");
    group.bench_function("algorithm1_hash", |b| {
        let mut fs = populated_verifs();
        let cfg = AbstractionConfig::default();
        b.iter(|| abstract_state(&mut fs, &cfg).expect("hash"))
    });
    group.finish();
}

fn bench_por(c: &mut Criterion) {
    let mut group = c.benchmark_group("por");
    group.sample_size(10);
    for (name, por) in [("off", false), ("on", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut p = mcfs_bench::pair_verifs(mcfs::PoolConfig::small()).expect("pairing");
                DfsExplorer::new(ExploreConfig {
                    max_depth: 2,
                    max_ops: 400,
                    por,
                    ..ExploreConfig::default()
                })
                .run(&mut p.harness)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_abstraction, bench_por);
criterion_main!(benches);
