//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! pieces the workspace actually uses — `rngs::StdRng`, `SeedableRng`, and
//! `Rng::gen_range` over integer ranges — with a deterministic xoshiro256++
//! generator seeded via SplitMix64. Determinism per seed is the property the
//! explorers rely on; statistical quality beyond that is not a goal.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core 64-bit generation, the base of every method on [`Rng`].
pub trait RngCore {
    /// Returns the next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange {
    /// The produced value type.
    type Output;
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let r = ((rng() as u128) << 64 | rng() as u128) % span;
                (self.start as u128).wrapping_add(r) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128) - (start as u128) + 1;
                let r = ((rng() as u128) << 64 | rng() as u128) % span;
                (start as u128).wrapping_add(r) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (not the real
    /// `StdRng` algorithm, but deterministic per seed, which is all the
    /// explorers need).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0xDEADBEEF;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize = (0..100)
            .filter(|_| a.gen_range(0u64..1 << 40) == c.gen_range(0u64..1 << 40))
            .count();
        assert!(same < 5, "different seeds diverge");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u8..=255);
            let _ = w;
        }
        // Every value of a small range is eventually hit.
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
