//! The lint registry's diagnostics: stable codes, severities, and human /
//! SARIF-style JSON rendering.

use std::fmt;

/// Stable diagnostic codes. Codes are append-only: a published code never
/// changes meaning, so CI gates and suppressions stay valid across
/// versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// Unsound independence: a pair the POR relation claims independent
    /// reached different abstract states under the two orders.
    Mc001,
    /// Abstraction aliasing: two states with equal visited-set fingerprints
    /// are observably distinct under a probe suite.
    Mc002,
    /// Errno-model divergence: the same op sequence yields different error
    /// codes on two backends.
    Mc003,
    /// Checkpoint/restore asymmetry: restoring a checkpoint does not
    /// reproduce the checkpointed state.
    Mc004,
    /// Repair non-convergence: fsck on a (possibly corrupted) volume does
    /// not reach a fixed point within two runs, or strictly loses
    /// reachable user data relative to what the corruption left intact.
    Mc005,
    /// Unsound *concurrency* independence: a pair the interleaving
    /// relation claims independent changes the reached state or either
    /// op's own observed result when the two-thread schedule is swapped.
    Mc006,
    /// Replay nondeterminism: ambient entropy (unordered iteration, wall
    /// clocks, `RandomState`, raw threads, pointer identity) can reach a
    /// fingerprint/wire sink (static taint finding), or two explorations
    /// under permuted worker/shard/seed configurations diverged in their
    /// visited sets or canonical snapshot bytes (dynamic finding).
    Mc007,
}

impl LintCode {
    /// All registered codes, in order.
    pub const ALL: [LintCode; 7] = [
        LintCode::Mc001,
        LintCode::Mc002,
        LintCode::Mc003,
        LintCode::Mc004,
        LintCode::Mc005,
        LintCode::Mc006,
        LintCode::Mc007,
    ];

    /// The stable identifier (`MC001` ...).
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::Mc001 => "MC001",
            LintCode::Mc002 => "MC002",
            LintCode::Mc003 => "MC003",
            LintCode::Mc004 => "MC004",
            LintCode::Mc005 => "MC005",
            LintCode::Mc006 => "MC006",
            LintCode::Mc007 => "MC007",
        }
    }

    /// One-line rule description (SARIF `shortDescription`).
    pub fn description(self) -> &'static str {
        match self {
            LintCode::Mc001 => {
                "unsound independence: a claimed-independent op pair does not commute"
            }
            LintCode::Mc002 => {
                "abstraction aliasing: equal fingerprints, observably distinct states"
            }
            LintCode::Mc003 => "errno-model divergence across backends",
            LintCode::Mc004 => "checkpoint/restore asymmetry",
            LintCode::Mc005 => {
                "repair non-convergence: fsck is not a two-run fixed point or loses reachable data"
            }
            LintCode::Mc006 => {
                "unsound concurrency independence: swapping a claimed-independent \
                 two-thread schedule changes the state or an observed result"
            }
            LintCode::Mc007 => {
                "replay nondeterminism: ambient entropy reaches a fingerprint/wire \
                 sink, or permuted-config explorations diverge"
            }
        }
    }

    /// Parses `MC001`-style identifiers (case-insensitive).
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL
            .into_iter()
            .find(|c| c.as_str().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Diagnostic severity, in decreasing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A soundness hole: exploration results cannot be trusted.
    Error,
    /// Suspicious but possibly benign (e.g. a known model divergence).
    Warning,
    /// Informational (e.g. a check was skipped for a backend).
    Note,
}

impl Severity {
    /// SARIF `level` value.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// One finding, with enough context to replay it.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable rule code.
    pub code: LintCode,
    /// Severity.
    pub severity: Severity,
    /// Backend (or backend pair) the finding was observed on.
    pub backend: String,
    /// Human-readable description of the finding.
    pub message: String,
    /// Replayable op sequence (rendered with [`std::fmt::Display`]) that
    /// reproduces the finding from a fresh file system.
    pub replay: Vec<String>,
}

/// The result of a registry run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, in check order.
    pub diagnostics: Vec<Diagnostic>,
    /// Source-analysis findings (`--source`), suppressed ones included.
    pub source: Vec<crate::source::SourceFinding>,
    /// Number of individual checks executed (code × backend).
    pub checks_run: usize,
    /// Backends the registry exercised.
    pub backends: Vec<String>,
}

impl LintReport {
    /// Whether any finding is [`Severity::Error`] or any source finding is
    /// unsuppressed.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
            || self.source.iter().any(|f| f.suppressed.is_none())
    }

    /// Findings with a given code.
    pub fn with_code(&self, code: LintCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Terminal rendering: one block per finding plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}[{}] {}: {}\n",
                match d.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                    Severity::Note => "note",
                },
                d.code,
                d.backend,
                d.message
            ));
            if !d.replay.is_empty() {
                out.push_str("  replay:\n");
                for op in &d.replay {
                    out.push_str(&format!("    {op}\n"));
                }
            }
        }
        for f in &self.source {
            match &f.suppressed {
                Some(reason) => out.push_str(&format!(
                    "note[MC007] {}:{}: {} (suppressed: {reason})\n",
                    f.file, f.line, f.message
                )),
                None => out.push_str(&format!(
                    "error[MC007] {}:{}: {}\n",
                    f.file, f.line, f.message
                )),
            }
        }
        let errors = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
            + self
                .source
                .iter()
                .filter(|f| f.suppressed.is_none())
                .count();
        out.push_str(&format!(
            "{} check(s) on {} backend(s): {} finding(s), {} error(s)\n",
            self.checks_run,
            self.backends.len(),
            self.diagnostics.len() + self.source.len(),
            errors
        ));
        out
    }

    /// SARIF-style JSON (schema subset: tool driver with rules, results
    /// with ruleId/level/message, replay under `properties`, source
    /// findings with `locations` and in-source `suppressions` records).
    pub fn to_sarif_json(&self) -> String {
        let mut rules = String::new();
        for (i, c) in LintCode::ALL.iter().enumerate() {
            if i > 0 {
                rules.push(',');
            }
            rules.push_str(&format!(
                "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
                c,
                json_escape(c.description())
            ));
        }
        let mut results = String::new();
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                results.push(',');
            }
            let mut replay = String::new();
            for (j, op) in d.replay.iter().enumerate() {
                if j > 0 {
                    replay.push(',');
                }
                replay.push_str(&format!("\"{}\"", json_escape(op)));
            }
            results.push_str(&format!(
                "{{\"ruleId\":\"{}\",\"level\":\"{}\",\"message\":{{\"text\":\"{}\"}},\
                 \"properties\":{{\"backend\":\"{}\",\"replay\":[{}]}}}}",
                d.code,
                d.severity.sarif_level(),
                json_escape(&d.message),
                json_escape(&d.backend),
                replay
            ));
        }
        for f in &self.source {
            if !results.is_empty() {
                results.push(',');
            }
            let suppressions = match &f.suppressed {
                Some(reason) => format!(
                    ",\"suppressions\":[{{\"kind\":\"inSource\",\
                     \"justification\":\"{}\"}}]",
                    json_escape(reason)
                ),
                None => String::new(),
            };
            results.push_str(&format!(
                "{{\"ruleId\":\"MC007\",\"level\":\"{}\",\
                 \"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"physicalLocation\":{{\
                 \"artifactLocation\":{{\"uri\":\"{}\"}},\
                 \"region\":{{\"startLine\":{}}}}}}}],\
                 \"properties\":{{\"kind\":\"{}\",\"function\":\"{}\"}}{}}}",
                if f.suppressed.is_some() {
                    "note"
                } else {
                    "error"
                },
                json_escape(&f.message),
                json_escape(&f.file),
                f.line,
                f.kind.as_str(),
                json_escape(&f.func),
                suppressions
            ));
        }
        format!(
            "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
             \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":\
             {{\"name\":\"mcfs-lint\",\"rules\":[{rules}]}}}},\
             \"results\":[{results}]}}]}}"
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_are_stable() {
        for c in LintCode::ALL {
            assert_eq!(LintCode::parse(c.as_str()), Some(c));
        }
        assert_eq!(LintCode::parse("mc002"), Some(LintCode::Mc002));
        assert_eq!(LintCode::parse("MC999"), None);
    }

    #[test]
    fn sarif_json_is_escaped_and_structured() {
        let report = LintReport {
            diagnostics: vec![Diagnostic {
                code: LintCode::Mc001,
                severity: Severity::Error,
                backend: "verifs-v2".into(),
                message: "pair \"a\" vs b\ndiverged".into(),
                replay: vec!["create_file(/f0, 0644)".into()],
            }],
            source: Vec::new(),
            checks_run: 1,
            backends: vec!["verifs-v2".into()],
        };
        let json = report.to_sarif_json();
        assert!(json.contains("\"ruleId\":\"MC001\""));
        assert!(json.contains("\\\"a\\\""), "quotes escaped: {json}");
        assert!(json.contains("\\n"), "newlines escaped");
        assert!(json.contains("\"level\":\"error\""));
        assert!(report.has_errors());
    }

    /// Pins the SARIF surface CI and editors consume: schema/version
    /// fields, the full MC001–MC007 rule catalogue, source-finding
    /// locations, and in-source suppression records.
    #[test]
    fn sarif_snapshot_covers_rules_locations_and_suppressions() {
        let report = LintReport {
            diagnostics: Vec::new(),
            source: vec![
                crate::source::SourceFinding {
                    file: "crates/x/src/lib.rs".into(),
                    line: 12,
                    kind: crate::source::SourceKind::UnorderedIter,
                    func: "digest".into(),
                    message: "iterates a hash container".into(),
                    suppressed: None,
                },
                crate::source::SourceFinding {
                    file: "crates/x/src/lib.rs".into(),
                    line: 40,
                    kind: crate::source::SourceKind::ThreadSpawn,
                    func: "run".into(),
                    message: "raw thread spawn".into(),
                    suppressed: Some("joins in worker order".into()),
                },
            ],
            checks_run: 1,
            backends: Vec::new(),
        };
        let json = report.to_sarif_json();
        assert!(json.contains("\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(json.contains("\"version\":\"2.1.0\""));
        for code in LintCode::ALL {
            assert!(
                json.contains(&format!("\"id\":\"{code}\"")),
                "rule {code} missing from catalogue"
            );
        }
        assert!(json.contains("\"ruleId\":\"MC007\""));
        assert!(json.contains(
            "\"artifactLocation\":{\"uri\":\"crates/x/src/lib.rs\"},\
             \"region\":{\"startLine\":12}"
        ));
        assert!(json.contains("\"kind\":\"unordered-iter\""));
        // The unsuppressed finding gates; the suppressed one is a note
        // carrying its justification.
        assert!(json.contains("\"level\":\"error\""));
        assert!(json.contains(
            "\"suppressions\":[{\"kind\":\"inSource\",\
             \"justification\":\"joins in worker order\"}]"
        ));
        assert!(json.contains("\"level\":\"note\""));
        assert!(report.has_errors(), "unsuppressed source finding gates");
    }

    #[test]
    fn suppressed_only_report_does_not_gate() {
        let report = LintReport {
            diagnostics: Vec::new(),
            source: vec![crate::source::SourceFinding {
                file: "a.rs".into(),
                line: 1,
                kind: crate::source::SourceKind::AmbientTime,
                func: "f".into(),
                message: "m".into(),
                suppressed: Some("audited".into()),
            }],
            checks_run: 1,
            backends: Vec::new(),
        };
        assert!(!report.has_errors());
        let text = report.render_human();
        assert!(text.contains("suppressed: audited"), "{text}");
    }

    #[test]
    fn human_rendering_includes_replay_and_summary() {
        let report = LintReport {
            diagnostics: vec![Diagnostic {
                code: LintCode::Mc004,
                severity: Severity::Warning,
                backend: "ext2".into(),
                message: "asymmetry".into(),
                replay: vec!["truncate(/f0, 10)".into()],
            }],
            source: Vec::new(),
            checks_run: 3,
            backends: vec!["ext2".into()],
        };
        let text = report.render_human();
        assert!(text.contains("warning[MC004] ext2"));
        assert!(text.contains("truncate(/f0, 10)"));
        assert!(text.contains("3 check(s)"));
        assert!(!report.has_errors());
    }
}
