//! The lint registry's diagnostics: stable codes, severities, and human /
//! SARIF-style JSON rendering.

use std::fmt;

/// Stable diagnostic codes. Codes are append-only: a published code never
/// changes meaning, so CI gates and suppressions stay valid across
/// versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// Unsound independence: a pair the POR relation claims independent
    /// reached different abstract states under the two orders.
    Mc001,
    /// Abstraction aliasing: two states with equal visited-set fingerprints
    /// are observably distinct under a probe suite.
    Mc002,
    /// Errno-model divergence: the same op sequence yields different error
    /// codes on two backends.
    Mc003,
    /// Checkpoint/restore asymmetry: restoring a checkpoint does not
    /// reproduce the checkpointed state.
    Mc004,
    /// Repair non-convergence: fsck on a (possibly corrupted) volume does
    /// not reach a fixed point within two runs, or strictly loses
    /// reachable user data relative to what the corruption left intact.
    Mc005,
    /// Unsound *concurrency* independence: a pair the interleaving
    /// relation claims independent changes the reached state or either
    /// op's own observed result when the two-thread schedule is swapped.
    Mc006,
}

impl LintCode {
    /// All registered codes, in order.
    pub const ALL: [LintCode; 6] = [
        LintCode::Mc001,
        LintCode::Mc002,
        LintCode::Mc003,
        LintCode::Mc004,
        LintCode::Mc005,
        LintCode::Mc006,
    ];

    /// The stable identifier (`MC001` ...).
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::Mc001 => "MC001",
            LintCode::Mc002 => "MC002",
            LintCode::Mc003 => "MC003",
            LintCode::Mc004 => "MC004",
            LintCode::Mc005 => "MC005",
            LintCode::Mc006 => "MC006",
        }
    }

    /// One-line rule description (SARIF `shortDescription`).
    pub fn description(self) -> &'static str {
        match self {
            LintCode::Mc001 => {
                "unsound independence: a claimed-independent op pair does not commute"
            }
            LintCode::Mc002 => {
                "abstraction aliasing: equal fingerprints, observably distinct states"
            }
            LintCode::Mc003 => "errno-model divergence across backends",
            LintCode::Mc004 => "checkpoint/restore asymmetry",
            LintCode::Mc005 => {
                "repair non-convergence: fsck is not a two-run fixed point or loses reachable data"
            }
            LintCode::Mc006 => {
                "unsound concurrency independence: swapping a claimed-independent \
                 two-thread schedule changes the state or an observed result"
            }
        }
    }

    /// Parses `MC001`-style identifiers (case-insensitive).
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL
            .into_iter()
            .find(|c| c.as_str().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Diagnostic severity, in decreasing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A soundness hole: exploration results cannot be trusted.
    Error,
    /// Suspicious but possibly benign (e.g. a known model divergence).
    Warning,
    /// Informational (e.g. a check was skipped for a backend).
    Note,
}

impl Severity {
    /// SARIF `level` value.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// One finding, with enough context to replay it.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable rule code.
    pub code: LintCode,
    /// Severity.
    pub severity: Severity,
    /// Backend (or backend pair) the finding was observed on.
    pub backend: String,
    /// Human-readable description of the finding.
    pub message: String,
    /// Replayable op sequence (rendered with [`std::fmt::Display`]) that
    /// reproduces the finding from a fresh file system.
    pub replay: Vec<String>,
}

/// The result of a registry run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, in check order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of individual checks executed (code × backend).
    pub checks_run: usize,
    /// Backends the registry exercised.
    pub backends: Vec<String>,
}

impl LintReport {
    /// Whether any finding is [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Findings with a given code.
    pub fn with_code(&self, code: LintCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Terminal rendering: one block per finding plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}[{}] {}: {}\n",
                match d.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                    Severity::Note => "note",
                },
                d.code,
                d.backend,
                d.message
            ));
            if !d.replay.is_empty() {
                out.push_str("  replay:\n");
                for op in &d.replay {
                    out.push_str(&format!("    {op}\n"));
                }
            }
        }
        let errors = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        out.push_str(&format!(
            "{} check(s) on {} backend(s): {} finding(s), {} error(s)\n",
            self.checks_run,
            self.backends.len(),
            self.diagnostics.len(),
            errors
        ));
        out
    }

    /// SARIF-style JSON (schema subset: tool driver with rules, results
    /// with ruleId/level/message, replay under `properties`).
    pub fn to_sarif_json(&self) -> String {
        let mut rules = String::new();
        for (i, c) in LintCode::ALL.iter().enumerate() {
            if i > 0 {
                rules.push(',');
            }
            rules.push_str(&format!(
                "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
                c,
                json_escape(c.description())
            ));
        }
        let mut results = String::new();
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                results.push(',');
            }
            let mut replay = String::new();
            for (j, op) in d.replay.iter().enumerate() {
                if j > 0 {
                    replay.push(',');
                }
                replay.push_str(&format!("\"{}\"", json_escape(op)));
            }
            results.push_str(&format!(
                "{{\"ruleId\":\"{}\",\"level\":\"{}\",\"message\":{{\"text\":\"{}\"}},\
                 \"properties\":{{\"backend\":\"{}\",\"replay\":[{}]}}}}",
                d.code,
                d.severity.sarif_level(),
                json_escape(&d.message),
                json_escape(&d.backend),
                replay
            ));
        }
        format!(
            "{{\"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":\
             {{\"name\":\"mcfs-lint\",\"rules\":[{rules}]}}}},\
             \"results\":[{results}]}}]}}"
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_are_stable() {
        for c in LintCode::ALL {
            assert_eq!(LintCode::parse(c.as_str()), Some(c));
        }
        assert_eq!(LintCode::parse("mc002"), Some(LintCode::Mc002));
        assert_eq!(LintCode::parse("MC999"), None);
    }

    #[test]
    fn sarif_json_is_escaped_and_structured() {
        let report = LintReport {
            diagnostics: vec![Diagnostic {
                code: LintCode::Mc001,
                severity: Severity::Error,
                backend: "verifs-v2".into(),
                message: "pair \"a\" vs b\ndiverged".into(),
                replay: vec!["create_file(/f0, 0644)".into()],
            }],
            checks_run: 1,
            backends: vec!["verifs-v2".into()],
        };
        let json = report.to_sarif_json();
        assert!(json.contains("\"ruleId\":\"MC001\""));
        assert!(json.contains("\\\"a\\\""), "quotes escaped: {json}");
        assert!(json.contains("\\n"), "newlines escaped");
        assert!(json.contains("\"level\":\"error\""));
        assert!(report.has_errors());
    }

    #[test]
    fn human_rendering_includes_replay_and_summary() {
        let report = LintReport {
            diagnostics: vec![Diagnostic {
                code: LintCode::Mc004,
                severity: Severity::Warning,
                backend: "ext2".into(),
                message: "asymmetry".into(),
                replay: vec!["truncate(/f0, 10)".into()],
            }],
            checks_run: 3,
            backends: vec!["ext2".into()],
        };
        let text = report.render_human();
        assert!(text.contains("warning[MC004] ext2"));
        assert!(text.contains("truncate(/f0, 10)"));
        assert!(text.contains("3 check(s)"));
        assert!(!report.has_errors());
    }
}
