//! The sanitizers behind the lint codes.
//!
//! Every check is *dynamic* validation of a *static* claim: MC001 executes
//! both orders of every pair the derived (or legacy) independence relation
//! calls independent; MC002 hunts for visited-set fingerprint collisions
//! that a POSIX probe suite can tell apart; MC003 replays identical
//! sequences on two backends and compares errno models; MC004 round-trips
//! checkpoints (API and device-image flavors) and checks the restored
//! state is the checkpointed one; MC005 corrupts derivable metadata in the
//! device image and checks fsck converges without losing reachable data;
//! MC006 swaps the two-thread schedule of every pair the concurrency
//! relation claims independent and compares states *and* per-op results.

use std::collections::HashMap;

use blockdev::DeviceSnapshot;
use mcfs::effect::{heuristic_independent, independent, independent_concurrent, EffectProfile};
use mcfs::{abstract_state, execute, AbstractionConfig, FsOp, OpOutcome, PoolConfig};
use modelcheck::{
    encode_snapshot, load_snapshot, run_swarm_persistent, ExploreConfig, ExploreStats, ModelSystem,
    OpCodec, RunSnapshot, StopReason, SwarmConfig, SwarmPersist, WorkerStrategy,
};
use vfs::{DeviceBacked, Errno, FileSystem, FsCheckpoint, VfsResult};

use crate::backends::Backend;
use crate::report::{Diagnostic, LintCode, Severity};

/// Deterministic xorshift64 PRNG: the sanitizers must be reproducible from
/// their seed alone.
pub struct XorShift64(u64);

impl XorShift64 {
    /// Seeded constructor (zero is mapped to a fixed nonzero state).
    pub fn new(seed: u64) -> Self {
        XorShift64(if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        })
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform-ish draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// The state observation the sanitizers compare: the POSIX-observable
/// abstraction hash plus the backend's opaque digest (hidden state such as
/// beyond-EOF residue). Mirrors the harness's visited-set identity.
fn observe(fs: &mut dyn FileSystem) -> (u128, Option<u128>) {
    let h = abstract_state(fs, &AbstractionConfig::default())
        .map(|d| d.as_u128())
        .unwrap_or(u128::MAX);
    (h, fs.opaque_state_digest())
}

/// Applies `ops` to a fresh instance and observes the final state.
fn run_trace(backend: &Backend, ops: &[&FsOp]) -> VfsResult<(u128, Option<u128>)> {
    let mut fs = backend.fresh()?;
    for op in ops {
        let _ = execute(fs.as_mut(), op, &[]);
    }
    Ok(observe(fs.as_mut()))
}

/// Which independence relation MC001 validates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// The signature-derived relation ([`mcfs::effect`]); the default POR
    /// driver — must pass on every backend.
    Derived,
    /// The original hand-written path-prefix heuristic; kept so the tests
    /// can demonstrate its unsoundness (hard-link aliasing).
    Heuristic,
}

/// MC001 tuning.
#[derive(Debug, Clone)]
pub struct Mc001Config {
    /// Sampled reachable prefixes per claimed-independent pair.
    pub samples_per_pair: usize,
    /// Maximum prefix length (lengths are drawn uniformly up to this).
    pub prefix_len: usize,
    /// Cap on the number of pairs exercised (`None` = all); heavy backends
    /// sample.
    pub max_pairs: Option<usize>,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for Mc001Config {
    fn default() -> Self {
        Mc001Config {
            samples_per_pair: 2,
            prefix_len: 3,
            max_pairs: None,
            seed: 0xc0ff_ee01,
        }
    }
}

/// MC001 — commutation sanitizer. For every pair `relation` claims
/// independent, executes `prefix; a; b` and `prefix; b; a` from sampled
/// reachable prefixes on a fresh backend instance and reports a diagnostic
/// with the replayable sequence if the final states differ.
///
/// # Errors
///
/// Backend construction failures.
pub fn mc001_commutation(
    backend: &Backend,
    pool_ops: &[FsOp],
    relation: Relation,
    cfg: &Mc001Config,
) -> VfsResult<Vec<Diagnostic>> {
    let caps = backend.fresh()?.capabilities();
    let ops: Vec<FsOp> = pool_ops
        .iter()
        .filter(|o| o.allowed_by(caps))
        .cloned()
        .collect();
    let kernel_caches = backend.fresh()?.caches_metadata();
    let profile = EffectProfile::from_pool(&ops).with_kernel_caches(kernel_caches);
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for i in 0..ops.len() {
        for j in (i + 1)..ops.len() {
            let claimed = match relation {
                Relation::Derived => independent(&ops[i], &ops[j], &profile),
                Relation::Heuristic => heuristic_independent(&ops[i], &ops[j]),
            };
            if claimed {
                pairs.push((i, j));
            }
        }
    }
    let mut rng = XorShift64::new(cfg.seed);
    if let Some(max) = cfg.max_pairs {
        // Deterministic partial Fisher-Yates, then truncate.
        for k in 0..pairs.len().min(max) {
            let pick = k + rng.below(pairs.len() - k);
            pairs.swap(k, pick);
        }
        pairs.truncate(max);
    }
    let mutations: Vec<&FsOp> = ops.iter().filter(|o| o.is_mutation()).collect();
    let mut out = Vec::new();
    for (i, j) in pairs {
        for _ in 0..cfg.samples_per_pair {
            let plen = rng.below(cfg.prefix_len + 1);
            let prefix: Vec<&FsOp> = (0..plen)
                .map(|_| mutations[rng.below(mutations.len())])
                .collect();
            let mut ab = prefix.clone();
            ab.push(&ops[i]);
            ab.push(&ops[j]);
            let mut ba = prefix.clone();
            ba.push(&ops[j]);
            ba.push(&ops[i]);
            let state_ab = run_trace(backend, &ab)?;
            let state_ba = run_trace(backend, &ba)?;
            if state_ab != state_ba {
                out.push(Diagnostic {
                    code: LintCode::Mc001,
                    severity: Severity::Error,
                    backend: backend.name.to_string(),
                    message: format!(
                        "claimed-independent pair does not commute: `{}` vs `{}` \
                         after a {plen}-op prefix (state {:032x}/{:?} vs {:032x}/{:?})",
                        ops[i], ops[j], state_ab.0, state_ab.1, state_ba.0, state_ba.1
                    ),
                    replay: ab.iter().map(|o| o.to_string()).collect(),
                });
                break;
            }
        }
    }
    Ok(out)
}

/// Which claimed concurrency relation MC006 validates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConcRelation {
    /// The concurrency relation ([`mcfs::effect::independent_concurrent`])
    /// driving the interleaving explorer's partial-order reduction — must
    /// pass on every backend.
    Concurrent,
    /// The sequential state relation, deliberately misused as a concurrency
    /// relation; kept so the tests can demonstrate why the interleaving
    /// explorer must not reuse it (op results are order-sensitive even when
    /// the reached state is not).
    Sequential,
}

/// MC006 tuning.
#[derive(Debug, Clone)]
pub struct Mc006Config {
    /// Random reachable prefixes tried per claimed-independent pair.
    pub samples_per_pair: usize,
    /// Maximum prefix length.
    pub prefix_len: usize,
    /// Cap on the number of claimed-independent pairs examined; `None`
    /// examines every pair, a limit takes a seeded random sample.
    pub max_pairs: Option<usize>,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for Mc006Config {
    fn default() -> Self {
        Mc006Config {
            samples_per_pair: 2,
            prefix_len: 3,
            max_pairs: None,
            seed: 0xc0ff_ee06,
        }
    }
}

/// Executes `prefix; first; second` on a fresh instance, returning the
/// final state and the two foreground ops' own outcomes, in that order.
fn run_two_thread(
    backend: &Backend,
    prefix: &[&FsOp],
    first: &FsOp,
    second: &FsOp,
) -> VfsResult<((u128, Option<u128>), OpOutcome, OpOutcome)> {
    let mut fs = backend.fresh()?;
    for op in prefix {
        let _ = execute(fs.as_mut(), op, &[]);
    }
    let o1 = execute(fs.as_mut(), first, &[]);
    let o2 = execute(fs.as_mut(), second, &[]);
    Ok((observe(fs.as_mut()), o1, o2))
}

/// MC006 — interleaving-commutation sanitizer. The thread-interleaving
/// explorer's partial-order reduction collapses the two schedules of a
/// claimed-independent pair into one, so the claim must cover more than
/// MC001's: swapping the order may change neither the reached state **nor
/// either op's own observed result** — each logical thread records the
/// outcome it saw, and a dropped schedule whose outcomes differ would hide
/// a distinct observable history. Unlike MC001, identical pairs (`i == j`,
/// two threads racing the same op) are examined too.
///
/// # Errors
///
/// Backend construction failures.
pub fn mc006_interleave_commutation(
    backend: &Backend,
    pool_ops: &[FsOp],
    relation: ConcRelation,
    cfg: &Mc006Config,
) -> VfsResult<Vec<Diagnostic>> {
    let caps = backend.fresh()?.capabilities();
    let ops: Vec<FsOp> = pool_ops
        .iter()
        .filter(|o| o.allowed_by(caps))
        .cloned()
        .collect();
    let kernel_caches = backend.fresh()?.caches_metadata();
    let profile = EffectProfile::from_pool(&ops).with_kernel_caches(kernel_caches);
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for i in 0..ops.len() {
        for j in i..ops.len() {
            let claimed = match relation {
                ConcRelation::Concurrent => independent_concurrent(&ops[i], &ops[j], &profile),
                ConcRelation::Sequential => independent(&ops[i], &ops[j], &profile),
            };
            if claimed {
                pairs.push((i, j));
            }
        }
    }
    let mut rng = XorShift64::new(cfg.seed);
    if let Some(max) = cfg.max_pairs {
        for k in 0..pairs.len().min(max) {
            let pick = k + rng.below(pairs.len() - k);
            pairs.swap(k, pick);
        }
        pairs.truncate(max);
    }
    let mutations: Vec<&FsOp> = ops.iter().filter(|o| o.is_mutation()).collect();
    let mut out = Vec::new();
    for (i, j) in pairs {
        for _ in 0..cfg.samples_per_pair {
            let plen = rng.below(cfg.prefix_len + 1);
            let prefix: Vec<&FsOp> = (0..plen)
                .map(|_| mutations[rng.below(mutations.len())])
                .collect();
            let (state_ab, a_first, b_second) = run_two_thread(backend, &prefix, &ops[i], &ops[j])?;
            let (state_ba, b_first, a_second) = run_two_thread(backend, &prefix, &ops[j], &ops[i])?;
            // Re-key the swapped run's outcomes by op (= by thread), not by
            // schedule position, before comparing.
            if (&state_ab, &a_first, &b_second) != (&state_ba, &a_second, &b_first) {
                let what = if state_ab == state_ba {
                    "an op's own observed result"
                } else {
                    "the reached state"
                };
                out.push(Diagnostic {
                    code: LintCode::Mc006,
                    severity: Severity::Error,
                    backend: backend.name.to_string(),
                    message: format!(
                        "claimed concurrency-independent pair is schedule-sensitive: \
                         `{}` vs `{}` after a {plen}-op prefix changes {what} \
                         ({a_first:?}/{b_second:?} vs {a_second:?}/{b_first:?})",
                        ops[i], ops[j]
                    ),
                    replay: prefix
                        .iter()
                        .map(|o| o.to_string())
                        .chain([format!("t0: {}", ops[i]), format!("t1: {}", ops[j])])
                        .collect(),
                });
                break;
            }
        }
    }
    Ok(out)
}

/// MC002 tuning.
#[derive(Debug, Clone)]
pub struct Mc002Config {
    /// Enumerate all traces up to this length over the given op set.
    pub max_len: usize,
    /// Hard cap on enumerated traces.
    pub max_traces: usize,
    /// Cap on reported collisions (probing every member of a large bucket
    /// is redundant).
    pub max_findings: usize,
}

impl Default for Mc002Config {
    fn default() -> Self {
        Mc002Config {
            max_len: 3,
            max_traces: 4096,
            max_findings: 4,
        }
    }
}

/// The probe suite MC002 uses to distinguish allegedly-equal states: hole
/// writes into the tail chunk of every pool file (the access pattern that
/// exposed the VeriFS CHUNK-rounding residue), followed by reads, stats
/// and a root listing. Probe outcomes plus the post-probe abstraction hash
/// form the observation.
fn probe_suite(ops: &[FsOp]) -> Vec<FsOp> {
    let mut files: Vec<&str> = Vec::new();
    for op in ops {
        for p in op.touched_paths() {
            if !files.contains(&p) {
                files.push(p);
            }
        }
    }
    let mut probes = Vec::new();
    for f in &files {
        probes.push(FsOp::WriteFile {
            path: (*f).to_string(),
            offset: 30,
            size: 4,
            seed: 7,
        });
        probes.push(FsOp::ReadFile {
            path: (*f).to_string(),
            offset: 0,
            size: 64,
        });
        probes.push(FsOp::Stat {
            path: (*f).to_string(),
        });
    }
    probes.push(FsOp::Getdents { path: "/".into() });
    probes
}

/// MC002 — abstraction-aliasing probe. Enumerates short traces over `ops`,
/// groups the resulting states by their visited-set fingerprint
/// (abstraction hash + opaque digest), and for every collision replays
/// both traces and applies the probe suite: if the probes can tell the
/// states apart, the fingerprint aliases observably distinct states and
/// state-matched exploration would wrongly merge them.
///
/// # Errors
///
/// Backend construction failures.
pub fn mc002_aliasing(
    fresh: &dyn Fn() -> VfsResult<Box<dyn FileSystem>>,
    backend_name: &str,
    ops: &[FsOp],
    cfg: &Mc002Config,
) -> VfsResult<Vec<Diagnostic>> {
    assert!(!ops.is_empty(), "MC002 needs a non-empty op set");
    // Enumerate traces of length 1..=max_len in lexicographic order.
    let mut traces: Vec<Vec<usize>> = Vec::new();
    'outer: for len in 1..=cfg.max_len {
        let mut idx = vec![0usize; len];
        loop {
            traces.push(idx.clone());
            if traces.len() >= cfg.max_traces {
                break 'outer;
            }
            // Odometer increment.
            let mut pos = len;
            loop {
                if pos == 0 {
                    break;
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < ops.len() {
                    break;
                }
                idx[pos] = 0;
                if pos == 0 {
                    break;
                }
            }
            if idx.iter().all(|&i| i == 0) {
                break;
            }
        }
    }
    // Fingerprint every trace's final state.
    let mut buckets: HashMap<(u128, Option<u128>), Vec<usize>> = HashMap::new();
    for (t, trace) in traces.iter().enumerate() {
        let mut fs = fresh()?;
        for &i in trace {
            let _ = execute(fs.as_mut(), &ops[i], &[]);
        }
        buckets.entry(observe(fs.as_mut())).or_default().push(t);
    }
    // Probe collisions: replay each colliding trace fresh and compare the
    // probe observations against the bucket's representative.
    let probes = probe_suite(ops);
    let observe_probed = |trace: &[usize]| -> VfsResult<(Vec<OpOutcome>, u128)> {
        let mut fs = fresh()?;
        for &i in trace {
            let _ = execute(fs.as_mut(), &ops[i], &[]);
        }
        let outcomes: Vec<OpOutcome> = probes
            .iter()
            .map(|p| execute(fs.as_mut(), p, &[]))
            .collect();
        Ok((outcomes, observe(fs.as_mut()).0))
    };
    let mut out = Vec::new();
    for members in buckets.values() {
        if members.len() < 2 || out.len() >= cfg.max_findings {
            continue;
        }
        let rep = observe_probed(&traces[members[0]])?;
        for &other in &members[1..] {
            if observe_probed(&traces[other])? != rep {
                let render = |t: &[usize]| {
                    t.iter()
                        .map(|&i| ops[i].to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                };
                let mut replay: Vec<String> = traces[members[0]]
                    .iter()
                    .map(|&i| ops[i].to_string())
                    .collect();
                replay.push("-- vs --".to_string());
                replay.extend(traces[other].iter().map(|&i| ops[i].to_string()));
                replay.push("-- probes --".to_string());
                replay.extend(probes.iter().map(|p| p.to_string()));
                out.push(Diagnostic {
                    code: LintCode::Mc002,
                    severity: Severity::Error,
                    backend: backend_name.to_string(),
                    message: format!(
                        "abstraction aliasing: traces [{}] and [{}] have equal \
                         fingerprints but the probe suite distinguishes them",
                        render(&traces[members[0]]),
                        render(&traces[other]),
                    ),
                    replay,
                });
                break;
            }
        }
    }
    Ok(out)
}

/// MC003 tuning.
#[derive(Debug, Clone)]
pub struct Mc003Config {
    /// Random sequences per backend pair.
    pub sequences: usize,
    /// Ops per sequence.
    pub seq_len: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for Mc003Config {
    fn default() -> Self {
        Mc003Config {
            sequences: 40,
            seq_len: 6,
            seed: 0xc0ff_ee03,
        }
    }
}

/// MC003 — errno-model divergence. Replays identical random sequences
/// (capability-intersected) on two backends and compares the *error
/// model*: success-vs-failure and the errno itself at every step. Full
/// outcome comparison is the harness's job; this lint isolates the errno
/// dimension so model divergences show up without a full harness run.
///
/// # Errors
///
/// Backend construction failures.
pub fn mc003_errno_parity(
    a: &Backend,
    b: &Backend,
    pool: &PoolConfig,
    cfg: &Mc003Config,
) -> VfsResult<Vec<Diagnostic>> {
    let caps = a
        .fresh()?
        .capabilities()
        .intersect(b.fresh()?.capabilities());
    let ops: Vec<FsOp> = pool
        .ops()
        .into_iter()
        .filter(|o| o.allowed_by(caps))
        .collect();
    let mut rng = XorShift64::new(cfg.seed);
    let mut out = Vec::new();
    let pair_name = format!("{}/{}", a.name, b.name);
    for _ in 0..cfg.sequences {
        let seq: Vec<&FsOp> = (0..cfg.seq_len)
            .map(|_| &ops[rng.below(ops.len())])
            .collect();
        let mut fa = a.fresh()?;
        let mut fb = b.fresh()?;
        for (step, op) in seq.iter().enumerate() {
            let oa = execute(fa.as_mut(), op, &[]);
            let ob = execute(fb.as_mut(), op, &[]);
            let ea = match &oa {
                OpOutcome::Err(e) => Some(*e),
                _ => None,
            };
            let eb = match &ob {
                OpOutcome::Err(e) => Some(*e),
                _ => None,
            };
            if ea != eb {
                out.push(Diagnostic {
                    code: LintCode::Mc003,
                    severity: Severity::Error,
                    backend: pair_name.clone(),
                    message: format!(
                        "errno divergence at step {step}: `{op}` -> {:?} on {} \
                         but {:?} on {}",
                        ea, a.name, eb, b.name
                    ),
                    replay: seq[..=step].iter().map(|o| o.to_string()).collect(),
                });
                break;
            }
        }
        if out.len() >= 4 {
            break;
        }
    }
    Ok(out)
}

/// MC004 tuning.
#[derive(Debug, Clone)]
pub struct Mc004Config {
    /// Checkpoint/restore round trips.
    pub rounds: usize,
    /// Mutations before the checkpoint (reachable-state variety).
    pub prefix_len: usize,
    /// Mutations between checkpoint and restore.
    pub suffix_len: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for Mc004Config {
    fn default() -> Self {
        Mc004Config {
            rounds: 8,
            prefix_len: 4,
            suffix_len: 3,
            seed: 0xc0ff_ee04,
        }
    }
}

fn random_mutations<'p>(
    rng: &mut XorShift64,
    mutations: &[&'p FsOp],
    max_len: usize,
) -> Vec<&'p FsOp> {
    let len = rng.below(max_len + 1);
    (0..len)
        .map(|_| mutations[rng.below(mutations.len())])
        .collect()
}

/// MC004 (checkpoint-API flavor) — checkpoint/restore asymmetry. From a
/// random reachable state: checkpoint, observe, mutate, `restore_keep`,
/// observe again (must match), mutate again, `restore`, observe a third
/// time (must still match). Any mismatch means restore does not reproduce
/// the checkpointed state.
///
/// # Errors
///
/// Backend construction/checkpoint failures.
pub fn mc004_checkpoint_symmetry<F: FileSystem + FsCheckpoint>(
    fresh: &dyn Fn() -> VfsResult<F>,
    backend_name: &str,
    pool: &PoolConfig,
    cfg: &Mc004Config,
) -> VfsResult<Vec<Diagnostic>> {
    let ops = pool.ops();
    let caps = fresh()?.capabilities();
    let mutations: Vec<&FsOp> = ops
        .iter()
        .filter(|o| o.is_mutation() && o.allowed_by(caps))
        .collect();
    let mut rng = XorShift64::new(cfg.seed);
    let mut out = Vec::new();
    for round in 0..cfg.rounds {
        let mut fs = fresh()?;
        let prefix = random_mutations(&mut rng, &mutations, cfg.prefix_len);
        for op in &prefix {
            let _ = execute(&mut fs, op, &[]);
        }
        fs.checkpoint(1)?;
        let h0 = observe(&mut fs);
        let suffix1 = random_mutations(&mut rng, &mutations, cfg.suffix_len);
        for op in &suffix1 {
            let _ = execute(&mut fs, op, &[]);
        }
        fs.restore_keep(1)?;
        let h1 = observe(&mut fs);
        let suffix2 = random_mutations(&mut rng, &mutations, cfg.suffix_len);
        for op in &suffix2 {
            let _ = execute(&mut fs, op, &[]);
        }
        fs.restore(1)?;
        let h2 = observe(&mut fs);
        if h1 != h0 || h2 != h0 {
            let mut replay: Vec<String> = prefix.iter().map(|o| o.to_string()).collect();
            replay.push("-- checkpoint(1) --".into());
            replay.extend(suffix1.iter().map(|o| o.to_string()));
            replay.push("-- restore(1) --".into());
            out.push(Diagnostic {
                code: LintCode::Mc004,
                severity: Severity::Error,
                backend: backend_name.to_string(),
                message: format!(
                    "checkpoint/restore asymmetry (round {round}): checkpointed \
                     {h0:?}, restore_keep gave {h1:?}, restore gave {h2:?}"
                ),
                replay,
            });
        }
    }
    Ok(out)
}

/// MC004 (device-image flavor) — for device-backed file systems without a
/// checkpoint API: snapshot the device (unmounted), remount, observe,
/// mutate, restore the image, remount, observe again. The remount after
/// the snapshot makes the baseline itself a post-remount state, so any
/// mismatch is restore infidelity, not unmount lossiness.
///
/// # Errors
///
/// Backend construction/snapshot failures.
pub fn mc004_device_symmetry<F: FileSystem + DeviceBacked>(
    fresh: &dyn Fn() -> VfsResult<F>,
    backend_name: &str,
    pool: &PoolConfig,
    cfg: &Mc004Config,
) -> VfsResult<Vec<Diagnostic>> {
    let ops = pool.ops();
    let caps = fresh()?.capabilities();
    let mutations: Vec<&FsOp> = ops
        .iter()
        .filter(|o| o.is_mutation() && o.allowed_by(caps))
        .collect();
    let mut rng = XorShift64::new(cfg.seed ^ 0xdead_beef);
    let mut out = Vec::new();
    for round in 0..cfg.rounds {
        let mut fs = fresh()?;
        let prefix = random_mutations(&mut rng, &mutations, cfg.prefix_len);
        for op in &prefix {
            let _ = execute(&mut fs, op, &[]);
        }
        fs.unmount()?;
        let snap = fs.snapshot_device()?;
        fs.mount()?;
        let h0 = observe(&mut fs);
        let suffix = random_mutations(&mut rng, &mutations, cfg.suffix_len);
        for op in &suffix {
            let _ = execute(&mut fs, op, &[]);
        }
        fs.unmount()?;
        fs.restore_device(&snap)?;
        fs.mount()?;
        let h1 = observe(&mut fs);
        if h1 != h0 {
            let mut replay: Vec<String> = prefix.iter().map(|o| o.to_string()).collect();
            replay.push("-- snapshot_device / remount --".into());
            replay.extend(suffix.iter().map(|o| o.to_string()));
            replay.push("-- restore_device / remount --".into());
            out.push(Diagnostic {
                code: LintCode::Mc004,
                severity: Severity::Error,
                backend: backend_name.to_string(),
                message: format!(
                    "device snapshot/restore asymmetry (round {round}): \
                     baseline {h0:?} but restored state {h1:?}"
                ),
                replay,
            });
        }
    }
    Ok(out)
}

/// MC005 tuning.
#[derive(Debug, Clone)]
pub struct Mc005Config {
    /// Fresh-volume rounds (each gets its own random prefix).
    pub rounds: usize,
    /// Mutations before the snapshot (reachable-state variety).
    pub prefix_len: usize,
    /// Corrupted-image variants per round.
    pub corruptions: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for Mc005Config {
    fn default() -> Self {
        Mc005Config {
            rounds: 4,
            prefix_len: 4,
            corruptions: 2,
            seed: 0xc0ff_ee05,
        }
    }
}

/// Rebuilds a restorable snapshot carrying `img` with `template`'s
/// geometry (the corruptors work on a flat byte image).
fn snapshot_with_bytes(template: &DeviceSnapshot, img: &[u8]) -> Option<DeviceSnapshot> {
    let chunks: Vec<Vec<u8>> = img
        .chunks(template.chunk_size())
        .map(<[u8]>::to_vec)
        .collect();
    DeviceSnapshot::from_chunks(template.block_size(), template.chunk_size(), chunks)
}

/// Derivable-metadata corruptor for the ext layout: scrambles both
/// allocation bitmaps and the superblock free counters (all rebuilt from
/// the inode table and directory tree), fills the journal area with
/// garbage (replay validation must detect and discard it), and sets the
/// dirty flag so repair runs the full scan. No live inode or data block
/// is touched, so a correct fsck recovers every reachable byte.
pub fn ext_derivable_corruptor(img: &mut [u8], rng: &mut XorShift64) {
    let Ok(sb) = fs_ext::layout::SuperBlock::decode(img) else {
        return;
    };
    let bs = sb.block_size as usize;
    // Words 4 and 5: free_blocks / free_inodes.
    for byte in &mut img[16..24] {
        *byte = (rng.next_u64() & 0xff) as u8;
    }
    // Word 7: flags — force the dirty bit on.
    let flags = sb.flags | fs_ext::layout::SB_FLAG_DIRTY;
    img[28..32].copy_from_slice(&flags.to_le_bytes());
    // Blocks 1 and 2: the data and inode allocation bitmaps.
    for byte in &mut img[bs..3 * bs] {
        if rng.next_u64() & 1 == 0 {
            *byte = (rng.next_u64() & 0xff) as u8;
        }
    }
    // The journal area (ext4; empty range on ext2).
    let js = sb.journal_start() as usize * bs;
    let je = (js + sb.journal_blocks as usize * bs).min(img.len());
    for byte in &mut img[js..je] {
        *byte = (rng.next_u64() & 0xff) as u8;
    }
}

/// Derivable-metadata corruptor for JFFS2: programs an undecodable
/// half-written node (valid magic and length, wrong CRC) at the log end
/// of every erase block with room — the torn-program garbage the scanner
/// must quarantine. Only erased space is overwritten, so every live node
/// survives and a correct repair loses nothing.
pub fn jffs2_corrupt_log_tails(img: &mut [u8], erase_block: usize, rng: &mut XorShift64) {
    use fs_jffs2::log;
    const GARBAGE_LEN: usize = 16;
    for blk in img.chunks_mut(erase_block) {
        let mut off = 0;
        while let Ok(Some((_, used))) = log::Node::decode(&blk[off..]) {
            off += used;
        }
        // Only blocks that already hold nodes: torn programs happen at the
        // head of an active log, and leaving the free blocks erased keeps
        // GC room for the scrub pass.
        if off == 0 || off + GARBAGE_LEN > blk.len() || blk[off..].iter().any(|&b| b != 0xff) {
            continue;
        }
        let mut garbage = [0u8; GARBAGE_LEN];
        garbage[..2].copy_from_slice(&log::NODE_MAGIC.to_le_bytes());
        garbage[2] = log::NT_DIRENT;
        garbage[3..7].copy_from_slice(&(GARBAGE_LEN as u32).to_le_bytes());
        for b in &mut garbage[log::HEADER_LEN..] {
            *b = (rng.next_u64() & 0xff) as u8;
        }
        // Store a CRC guaranteed not to match the body.
        let bad_crc = log::node_crc(&garbage[log::HEADER_LEN..]) ^ 0xdead_beef;
        garbage[7..log::HEADER_LEN].copy_from_slice(&bad_crc.to_le_bytes());
        blk[off..off + GARBAGE_LEN].copy_from_slice(&garbage);
    }
}

/// MC005 — repair convergence. From a random reachable state, twice over:
///
/// 1. **Healthy volume**: fsck on a freshly synced volume must report a
///    clean bill and leave the observable state untouched (a repair pass
///    that "fixes" a consistent volume either loses reachable data or
///    mis-models the layout).
/// 2. **Corrupted volume**: `corrupt` scrambles *derivable* metadata only
///    (allocator state, journal garbage, torn log tails) in the device
///    image; fsck must then repair it, reach a fixed point within two
///    runs (the second run reports clean), and recover every reachable
///    byte the corruption left intact.
///
/// # Errors
///
/// Backend construction/snapshot failures.
pub fn mc005_repair_convergence<F: FileSystem + DeviceBacked>(
    fresh: &dyn Fn() -> VfsResult<F>,
    backend_name: &str,
    pool: &PoolConfig,
    corrupt: &dyn Fn(&mut [u8], &mut XorShift64),
    cfg: &Mc005Config,
) -> VfsResult<Vec<Diagnostic>> {
    let ops = pool.ops();
    let caps = fresh()?.capabilities();
    let mutations: Vec<&FsOp> = ops
        .iter()
        .filter(|o| o.is_mutation() && o.allowed_by(caps))
        .collect();
    let mut rng = XorShift64::new(cfg.seed);
    let mut out = Vec::new();
    for round in 0..cfg.rounds {
        let mut fs = fresh()?;
        let prefix = random_mutations(&mut rng, &mutations, cfg.prefix_len);
        for op in &prefix {
            let _ = execute(&mut fs, op, &[]);
        }
        fs.unmount()?;
        let snap = fs.snapshot_device()?;
        fs.mount()?;
        let h0 = observe(&mut fs);
        let mut replay: Vec<String> = prefix.iter().map(|o| o.to_string()).collect();
        replay.push("-- snapshot_device / remount --".into());
        // Phase 1: a consistent volume needs no repairs and loses nothing.
        match fs.fsck() {
            Ok(report) if !report.is_clean() => {
                out.push(Diagnostic {
                    code: LintCode::Mc005,
                    severity: Severity::Error,
                    backend: backend_name.to_string(),
                    message: format!(
                        "fsck \"repaired\" a consistent volume (round {round}): {}",
                        report.fixes.join("; ")
                    ),
                    replay: replay.clone(),
                });
                continue;
            }
            Ok(_) => {}
            Err(e) => {
                out.push(Diagnostic {
                    code: LintCode::Mc005,
                    severity: Severity::Error,
                    backend: backend_name.to_string(),
                    message: format!("fsck failed on a consistent volume (round {round}): {e}"),
                    replay: replay.clone(),
                });
                continue;
            }
        }
        if observe(&mut fs) != h0 {
            out.push(Diagnostic {
                code: LintCode::Mc005,
                severity: Severity::Error,
                backend: backend_name.to_string(),
                message: format!(
                    "fsck changed the observable state of a consistent volume (round {round})"
                ),
                replay: replay.clone(),
            });
            continue;
        }
        // Phase 2: repair of derivable-metadata corruption converges and
        // recovers all reachable data.
        for variant in 0..cfg.corruptions {
            let mut img = snap.to_vec();
            corrupt(&mut img, &mut rng);
            let Some(bad) = snapshot_with_bytes(&snap, &img) else {
                return Err(Errno::EIO);
            };
            fs.unmount()?;
            fs.restore_device(&bad)?;
            let mut replay = replay.clone();
            replay.push(format!(
                "-- corrupt derivable metadata (variant {variant}) --"
            ));
            match fs.fsck() {
                Ok(_) => {}
                Err(e) => {
                    out.push(Diagnostic {
                        code: LintCode::Mc005,
                        severity: Severity::Error,
                        backend: backend_name.to_string(),
                        message: format!(
                            "fsck failed to repair derivable-metadata corruption \
                             (round {round}, variant {variant}): {e}"
                        ),
                        replay,
                    });
                    fs.restore_device(&snap)?;
                    fs.mount()?;
                    continue;
                }
            }
            match fs.fsck() {
                Ok(report) if !report.is_clean() => {
                    out.push(Diagnostic {
                        code: LintCode::Mc005,
                        severity: Severity::Error,
                        backend: backend_name.to_string(),
                        message: format!(
                            "repair is not a fixed point within two runs (round {round}, \
                             variant {variant}): second fsck still fixed: {}",
                            report.fixes.join("; ")
                        ),
                        replay: replay.clone(),
                    });
                }
                Ok(_) => {}
                Err(e) => {
                    out.push(Diagnostic {
                        code: LintCode::Mc005,
                        severity: Severity::Error,
                        backend: backend_name.to_string(),
                        message: format!(
                            "second fsck failed after a successful repair \
                             (round {round}, variant {variant}): {e}"
                        ),
                        replay: replay.clone(),
                    });
                }
            }
            fs.mount()?;
            if observe(&mut fs) != h0 {
                out.push(Diagnostic {
                    code: LintCode::Mc005,
                    severity: Severity::Error,
                    backend: backend_name.to_string(),
                    message: format!(
                        "repair lost reachable user data (round {round}, variant {variant}): \
                         the corruption touched only derivable metadata, but the repaired \
                         volume differs from the pre-corruption state"
                    ),
                    replay,
                });
            }
        }
    }
    Ok(out)
}

/// Configuration for [`mc007_divergence`].
#[derive(Debug, Clone)]
pub struct Mc007Config {
    /// Bounded exploration depth. Kept small: the check needs every run to
    /// stop by frontier exhaustion, not by budget — a budget-capped run
    /// explores a worker-count-dependent prefix and proves nothing.
    pub max_depth: usize,
    /// Fleet-wide op budget (a backstop; exhaustion should come first).
    pub max_ops: u64,
    /// Base PRNG seed; permuted runs shift it, since replay determinism
    /// must not depend on the seed once the space is explored exhaustively.
    pub seed: u64,
    /// Worker fleet sizes to permute across runs (shard counts follow the
    /// worker count inside the swarm's sharded visited set).
    pub workers: Vec<usize>,
    /// Initial visited-capacities to permute (different resize/rehash
    /// schedules must not change what was visited or how it pickles).
    pub capacities: Vec<usize>,
}

impl Default for Mc007Config {
    fn default() -> Self {
        Mc007Config {
            max_depth: 2,
            max_ops: 2_000_000,
            seed: 0x5eed_1e47 ^ 7,
            workers: vec![1, 3],
            capacities: vec![1 << 4, 1 << 10],
        }
    }
}

/// Re-encodes a snapshot in canonical form: run-shape metadata (worker
/// count, seeds, RNG cursors, cumulative stats) normalized away, leaving
/// exactly the explored state space and pending frontier. Two equivalent
/// explorations must produce byte-identical canonical pickles.
fn canonical_pickle<Op>(snap: &RunSnapshot<Op>, codec: &dyn OpCodec<Op>) -> Vec<u8>
where
    Op: Clone,
{
    let canon = RunSnapshot {
        base_seed: 0,
        workers: 1,
        generation: 0,
        visited: snap.visited.clone(),
        frontier: snap.frontier.clone(),
        rng: Vec::new(),
        stats: ExploreStats::default(),
    };
    encode_snapshot(&canon, codec)
}

/// MC007: the divergence sanitizer. Runs the same bounded exploration
/// under permuted worker-fleet sizes, visited-set capacities, and seeds,
/// pickling each run's final snapshot, and requires every run to visit the
/// identical state set and produce byte-identical canonical snapshot
/// bytes. The static taint pass says where nondeterminism *can* enter;
/// this proves whether it *does*.
///
/// # Errors
///
/// Construction errors from the first factory call; `EIO` if a pickled
/// snapshot cannot be written or read back.
pub fn mc007_divergence<S, F>(
    backend: &str,
    factory: &F,
    codec: &(dyn OpCodec<S::Op> + Sync),
    cfg: &Mc007Config,
) -> VfsResult<Vec<Diagnostic>>
where
    S: ModelSystem,
    S::Op: Send + Clone + PartialEq + 'static,
    F: Fn() -> VfsResult<S> + Sync,
{
    // Surface a broken backend as an error here, not as a worker panic.
    drop(factory()?);
    let mut variants: Vec<(usize, usize, u64)> = Vec::new();
    let axis = cfg.workers.len().max(cfg.capacities.len()).max(2);
    for i in 0..axis {
        let w = cfg.workers[i % cfg.workers.len().max(1)].max(1);
        let cap = cfg.capacities[i % cfg.capacities.len().max(1)].max(2);
        variants.push((w, cap, cfg.seed.wrapping_add(i as u64 * 0x9e37)));
    }

    let mut out = Vec::new();
    let mut runs: Vec<(String, RunSnapshot<S::Op>, Vec<u8>)> = Vec::new();
    for (i, (workers, capacity, seed)) in variants.iter().enumerate() {
        let label = format!("workers={workers} capacity={capacity} seed={seed:#x}");
        let path = mc007_snapshot_path(backend, i);
        let scfg = SwarmConfig {
            workers: *workers,
            base: ExploreConfig {
                max_depth: cfg.max_depth,
                max_ops: cfg.max_ops,
                // Never truncate the run on a (cross-target) violation:
                // MC003/MC001 own those; this check needs full coverage.
                stop_on_violation: false,
                seed: *seed,
                visited_capacity: *capacity,
                ..ExploreConfig::default()
            },
            shared_visited: true,
            strategies: vec![WorkerStrategy::Dfs],
        };
        let report = run_swarm_persistent(
            &scfg,
            |_| factory().expect("mc007 factory must build a fresh system"),
            SwarmPersist {
                codec,
                snapshot_path: Some(path.clone()),
                snapshot_every: 0,
                resume: None,
            },
        );
        for w in &report.workers {
            if let StopReason::WorkerPanic(msg) = &w.stop {
                out.push(Diagnostic {
                    code: LintCode::Mc007,
                    severity: Severity::Error,
                    backend: backend.to_string(),
                    message: format!("worker panicked under {label}: {msg}"),
                    replay: Vec::new(),
                });
            }
        }
        if let Some(e) = &report.persist_error {
            let _ = std::fs::remove_file(&path);
            return Err(map_pickle_io(e));
        }
        if !out.is_empty() {
            let _ = std::fs::remove_file(&path);
            return Ok(out);
        }
        let snap = load_snapshot(&path, codec).map_err(|_| Errno::EIO)?;
        let _ = std::fs::remove_file(&path);
        if !snap.frontier.is_empty() {
            out.push(Diagnostic {
                code: LintCode::Mc007,
                severity: Severity::Note,
                backend: backend.to_string(),
                message: format!(
                    "inconclusive: run under {label} hit a budget before exhausting \
                     the bounded space ({} frontier entries pending)",
                    snap.frontier.len()
                ),
                replay: Vec::new(),
            });
        }
        let canon = canonical_pickle(&snap, codec);
        runs.push((label, snap, canon));
    }

    let (base_label, base_snap, base_canon) = &runs[0];
    for (label, snap, canon) in &runs[1..] {
        if snap.visited != base_snap.visited {
            let first_diff = base_snap
                .visited
                .iter()
                .zip(&snap.visited)
                .find(|(a, b)| a != b)
                .map(|(a, b)| format!("first divergent entry {:#034x} vs {:#034x}", a.0, b.0))
                .unwrap_or_else(|| "one visited set is a strict prefix".to_string());
            out.push(Diagnostic {
                code: LintCode::Mc007,
                severity: Severity::Error,
                backend: backend.to_string(),
                message: format!(
                    "visited-set divergence: {} states under {base_label} vs {} under \
                     {label}; {first_diff}",
                    base_snap.visited.len(),
                    snap.visited.len()
                ),
                replay: Vec::new(),
            });
        } else if canon != base_canon {
            out.push(Diagnostic {
                code: LintCode::Mc007,
                severity: Severity::Error,
                backend: backend.to_string(),
                message: format!(
                    "canonical snapshot bytes diverge ({} vs {} bytes) between {base_label} \
                     and {label} despite identical visited sets — the pickle encoding \
                     itself is order-sensitive",
                    base_canon.len(),
                    canon.len()
                ),
                replay: Vec::new(),
            });
        }
    }
    Ok(out)
}

/// Maps a persist-layer error message onto an errno for check plumbing.
fn map_pickle_io(_msg: &str) -> Errno {
    Errno::EIO
}

/// A collision-free snapshot path for one MC007 run.
fn mc007_snapshot_path(backend: &str, idx: usize) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "mcfs-mc007-{}-{backend}-{idx}-{n}.pkl",
        std::process::id()
    ))
}

/// The mutation ops of `pool` that touch exactly `path` — the focused op
/// set MC002 enumerates over (single-file traces alias most readily).
pub fn single_file_mutations(pool: &PoolConfig, path: &str) -> Vec<FsOp> {
    pool.ops()
        .into_iter()
        .filter(|o| o.is_mutation() && o.touched_paths() == vec![path])
        .collect()
}

#[cfg(test)]
mod mc007_tests {
    use super::*;
    use modelcheck::{ApplyOutcome, ByteReader, PickleError, StateId};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A deterministic bounded counter: the clean baseline MC007 must pass.
    struct Counter {
        value: i64,
        epoch: u64,
        store: HashMap<u64, i64>,
    }

    /// When nonzero, every constructed instance gets a fresh epoch that is
    /// folded into the fingerprint — run-order entropy, exactly the bug
    /// class MC007 exists to catch.
    static EPOCH: AtomicU64 = AtomicU64::new(0);

    impl Counter {
        fn fresh(poisoned: bool) -> VfsResult<Self> {
            Ok(Counter {
                value: 0,
                epoch: if poisoned {
                    EPOCH.fetch_add(1, Ordering::Relaxed) + 1
                } else {
                    0
                },
                store: HashMap::new(),
            })
        }
    }

    impl ModelSystem for Counter {
        type Op = i64;
        fn ops(&mut self) -> Vec<i64> {
            vec![1, -1]
        }
        fn apply(&mut self, op: &i64) -> ApplyOutcome {
            let next = self.value + op;
            if !(0..=8).contains(&next) {
                return ApplyOutcome::Prune("out of range".into());
            }
            self.value = next;
            ApplyOutcome::Ok
        }
        fn abstract_state(&mut self) -> u128 {
            (self.value as u128) | ((self.epoch as u128) << 64)
        }
        fn checkpoint(&mut self, id: StateId) -> Result<usize, String> {
            self.store.insert(id.0, self.value);
            Ok(8)
        }
        fn restore(&mut self, id: StateId) -> Result<(), String> {
            self.value = *self.store.get(&id.0).ok_or("missing state")?;
            Ok(())
        }
        fn release(&mut self, id: StateId) {
            self.store.remove(&id.0);
        }
    }

    struct I64Codec;

    impl OpCodec<i64> for I64Codec {
        fn encode_op(&self, op: &i64, out: &mut Vec<u8>) {
            out.extend_from_slice(&op.to_le_bytes());
        }
        fn decode_op(&self, r: &mut ByteReader<'_>) -> Result<i64, PickleError> {
            let mut b = [0u8; 8];
            for slot in &mut b {
                *slot = r.u8()?;
            }
            Ok(i64::from_le_bytes(b))
        }
    }

    #[test]
    fn mc007_is_clean_on_a_deterministic_system() {
        let cfg = Mc007Config {
            max_depth: 4,
            ..Mc007Config::default()
        };
        let diags = mc007_divergence("toy", &|| Counter::fresh(false), &I64Codec, &cfg)
            .expect("check runs");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn mc007_flags_run_order_entropy_in_fingerprints() {
        let cfg = Mc007Config {
            max_depth: 3,
            ..Mc007Config::default()
        };
        let diags = mc007_divergence("toy-poisoned", &|| Counter::fresh(true), &I64Codec, &cfg)
            .expect("check runs");
        assert!(
            diags
                .iter()
                .any(|d| d.severity == Severity::Error && d.message.contains("divergence")),
            "poisoned fingerprints must diverge across permuted runs: {diags:?}"
        );
    }
}
