//! Static-analysis layer for the MCFS harness: the lint registry behind
//! `mcfs-lint`.
//!
//! The harness's soundness rests on three inferred artifacts: the
//! signature-derived independence relation driving partial-order reduction
//! ([`mcfs::effect`]), the abstraction function collapsing concrete states
//! into visited-set fingerprints, and the checkpoint machinery replaying
//! exploration prefixes. Each is *derived* from the op pool and backend
//! capabilities rather than hand-audited per backend, so this crate
//! validates the derivations dynamically:
//!
//! - **MC001** (unsound independence): every claimed-independent pair is
//!   executed in both orders from sampled reachable states.
//! - **MC002** (abstraction aliasing): fingerprint collisions are probed
//!   with a POSIX op suite that must not distinguish them.
//! - **MC003** (errno-model divergence): identical sequences must fail
//!   identically across backends.
//! - **MC004** (checkpoint/restore asymmetry): restoring a checkpoint must
//!   reproduce the checkpointed fingerprint.
//! - **MC005** (repair non-convergence): fsck on a volume whose *derivable*
//!   metadata was corrupted must reach a fixed point within two runs and
//!   recover every reachable byte.
//! - **MC006** (unsound concurrency independence): every pair the
//!   interleaving explorer's POR relation claims independent is run under
//!   both two-thread schedules; the reached state *and* each op's own
//!   observed result must agree.
//! - **MC007** (replay nondeterminism): the same bounded exploration runs
//!   under permuted worker-fleet sizes, visited-set capacities and seeds;
//!   every run must visit the identical state set and pickle to
//!   byte-identical canonical snapshot bytes. Its static half lives in
//!   [`source`]: a taint pass over the workspace source that flags ambient
//!   entropy (hash-container iteration, wall clocks, `RandomState`, raw
//!   thread spawns, pointer identity, `enumerate()` slot indices) reaching
//!   fingerprint/wire sinks, with `// mcfs-lint: allow(MC007, reason)`
//!   suppressions keeping intentional uses auditable.
//!
//! [`run_registry`] runs every code across the workspace backends and
//! returns a [`report::LintReport`] renderable as text or SARIF-style
//! JSON. The `mcfs-lint` binary (in the bench crate) is a thin CLI over
//! it; CI runs `mcfs-lint --quick` as a smoke gate.

#![warn(missing_docs)]

pub mod backends;
pub mod checks;
pub mod report;
pub mod source;

pub use checks::{
    ext_derivable_corruptor, jffs2_corrupt_log_tails, mc001_commutation, mc002_aliasing,
    mc003_errno_parity, mc004_checkpoint_symmetry, mc004_device_symmetry, mc005_repair_convergence,
    mc006_interleave_commutation, mc007_divergence, single_file_mutations, ConcRelation,
    Mc001Config, Mc002Config, Mc003Config, Mc004Config, Mc005Config, Mc006Config, Mc007Config,
    Relation, XorShift64,
};
pub use report::{Diagnostic, LintCode, LintReport, Severity};
pub use source::{run_source, SourceFinding, SourceKind, SourceOptions, SourceReport};

use mcfs::PoolConfig;
use vfs::FileSystem;

/// Registry run options.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Quick mode: light backends only plus one device-backed
    /// representative, smaller sample counts — the CI smoke gate.
    pub quick: bool,
    /// Base PRNG seed for all sampled checks.
    pub seed: u64,
    /// Restrict to these codes (`None` = all).
    pub codes: Option<Vec<LintCode>>,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            quick: false,
            seed: 0x5eed_1e47,
            codes: None,
        }
    }
}

impl LintOptions {
    fn enabled(&self, code: LintCode) -> bool {
        self.codes.as_ref().is_none_or(|cs| cs.contains(&code))
    }
}

/// Converts a check-runner error into a diagnostic so a backend that fails
/// to construct shows up as a finding instead of aborting the run.
fn check_failure(code: LintCode, backend: &str, err: vfs::Errno) -> Diagnostic {
    Diagnostic {
        code,
        severity: Severity::Error,
        backend: backend.to_string(),
        message: format!("check failed to run: {err}"),
        replay: Vec::new(),
    }
}

/// Runs the full lint registry and collects every finding.
pub fn run_registry(opts: &LintOptions) -> LintReport {
    let backend_list = if opts.quick {
        backends::quick()
    } else {
        backends::all()
    };
    let pool = PoolConfig::small();
    let pool_ops = pool.ops();
    let mut report = LintReport {
        backends: backend_list.iter().map(|b| b.name.to_string()).collect(),
        ..LintReport::default()
    };

    // MC001: validate the derived independence relation on every backend.
    if opts.enabled(LintCode::Mc001) {
        for b in &backend_list {
            let cfg = Mc001Config {
                samples_per_pair: if b.heavy { 1 } else { 2 },
                max_pairs: if b.heavy { Some(80) } else { None },
                seed: opts.seed ^ 1,
                ..Mc001Config::default()
            };
            report.checks_run += 1;
            match mc001_commutation(b, &pool_ops, Relation::Derived, &cfg) {
                Ok(ds) => report.diagnostics.extend(ds),
                Err(e) => report
                    .diagnostics
                    .push(check_failure(LintCode::Mc001, b.name, e)),
            }
        }
    }

    // MC006: validate the stricter concurrency independence relation that
    // drives the thread-interleaving explorer's POR — swapping the
    // two-thread schedule of a claimed-independent pair must change
    // neither the reached state nor either op's own observed result.
    if opts.enabled(LintCode::Mc006) {
        for b in &backend_list {
            let cfg = Mc006Config {
                samples_per_pair: if b.heavy { 1 } else { 2 },
                max_pairs: if b.heavy { Some(80) } else { None },
                seed: opts.seed ^ 6,
                ..Mc006Config::default()
            };
            report.checks_run += 1;
            match mc006_interleave_commutation(b, &pool_ops, ConcRelation::Concurrent, &cfg) {
                Ok(ds) => report.diagnostics.extend(ds),
                Err(e) => report
                    .diagnostics
                    .push(check_failure(LintCode::Mc006, b.name, e)),
            }
        }
    }

    // MC002: probe fingerprint collisions over single-file traces. The
    // in-memory backends get the exhaustive length-3 enumeration; the
    // device-backed ones are capped harder since every trace reformats.
    if opts.enabled(LintCode::Mc002) {
        let ops = single_file_mutations(&pool, "/f0");
        for b in &backend_list {
            let cfg = Mc002Config {
                max_len: if b.heavy { 2 } else { 3 },
                ..Mc002Config::default()
            };
            report.checks_run += 1;
            let fresh = || b.fresh();
            match mc002_aliasing(&fresh, b.name, &ops, &cfg) {
                Ok(ds) => report.diagnostics.extend(ds),
                Err(e) => report
                    .diagnostics
                    .push(check_failure(LintCode::Mc002, b.name, e)),
            }
        }
    }

    // MC003: errno parity between the reference implementation and each
    // on-disk backend.
    if opts.enabled(LintCode::Mc003) {
        let reference = &backend_list[1]; // verifs-v2
        for b in &backend_list {
            if b.name == reference.name {
                continue;
            }
            let cfg = Mc003Config {
                sequences: if b.heavy { 20 } else { 40 },
                seed: opts.seed ^ 3,
                ..Mc003Config::default()
            };
            report.checks_run += 1;
            match mc003_errno_parity(reference, b, &pool, &cfg) {
                Ok(ds) => report.diagnostics.extend(ds),
                Err(e) => {
                    let name = format!("{}/{}", reference.name, b.name);
                    report
                        .diagnostics
                        .push(check_failure(LintCode::Mc003, &name, e));
                }
            }
        }
    }

    // MC004: checkpoint symmetry on the checkpoint-API backends, device
    // snapshot symmetry on the device-backed ones.
    if opts.enabled(LintCode::Mc004) {
        let cfg = Mc004Config {
            rounds: if opts.quick { 6 } else { 10 },
            seed: opts.seed ^ 4,
            ..Mc004Config::default()
        };
        report.checks_run += 1;
        match mc004_checkpoint_symmetry(
            &|| {
                let mut fs = verifs::VeriFs::v2();
                fs.mount()?;
                Ok(fs)
            },
            "verifs-v2",
            &pool,
            &cfg,
        ) {
            Ok(ds) => report.diagnostics.extend(ds),
            Err(e) => report
                .diagnostics
                .push(check_failure(LintCode::Mc004, "verifs-v2", e)),
        }
        report.checks_run += 1;
        match mc004_checkpoint_symmetry(
            &|| {
                let mut mount = fusesim::FuseMount::with_config(
                    verifs::VeriFs::v2(),
                    fusesim::FuseConfig::default(),
                    None,
                );
                let conn = mount.connection();
                mount
                    .daemon_mut()
                    .fs_mut()
                    .set_invalidation_sink(std::sync::Arc::new(conn));
                mount.mount()?;
                Ok(mount)
            },
            "fuse-verifs",
            &pool,
            &cfg,
        ) {
            Ok(ds) => report.diagnostics.extend(ds),
            Err(e) => report
                .diagnostics
                .push(check_failure(LintCode::Mc004, "fuse-verifs", e)),
        }
        report.checks_run += 1;
        match mc004_device_symmetry(
            &|| {
                fs_ext::ext2_on_ram(backends::EXT_DEVICE_BYTES).and_then(|mut fs| {
                    fs.mount()?;
                    Ok(fs)
                })
            },
            "ext2",
            &pool,
            &cfg,
        ) {
            Ok(ds) => report.diagnostics.extend(ds),
            Err(e) => report
                .diagnostics
                .push(check_failure(LintCode::Mc004, "ext2", e)),
        }
        if !opts.quick {
            report.checks_run += 1;
            match mc004_device_symmetry(
                &|| {
                    fs_xfs::xfs_on_ram(backends::XFS_DEVICE_BYTES).and_then(|mut fs| {
                        fs.mount()?;
                        Ok(fs)
                    })
                },
                "xfs",
                &pool,
                &cfg,
            ) {
                Ok(ds) => report.diagnostics.extend(ds),
                Err(e) => report
                    .diagnostics
                    .push(check_failure(LintCode::Mc004, "xfs", e)),
            }
            report.checks_run += 1;
            match mc004_device_symmetry(
                &|| {
                    let mtd = blockdev::MtdDevice::new(
                        backends::JFFS2_ERASE_BLOCK,
                        backends::JFFS2_BLOCKS,
                    )
                    .map_err(|_| vfs::Errno::EINVAL)?;
                    let mut fs = fs_jffs2::Jffs2Fs::format(mtd, fs_jffs2::Jffs2Config::default())?;
                    fs.mount()?;
                    Ok(fs)
                },
                "jffs2",
                &pool,
                &cfg,
            ) {
                Ok(ds) => report.diagnostics.extend(ds),
                Err(e) => report
                    .diagnostics
                    .push(check_failure(LintCode::Mc004, "jffs2", e)),
            }
        }
    }

    // MC007: replay-determinism divergence — the same bounded exploration
    // under permuted worker/capacity/seed configurations must visit the
    // identical state set and pickle identically. Run on the checkpoint-API
    // pairing and the remount pairing so both state-tracking paths are
    // covered.
    if opts.enabled(LintCode::Mc007) {
        let cfg = Mc007Config {
            seed: opts.seed ^ 7,
            ..Mc007Config::default()
        };
        report.checks_run += 1;
        match mc007_divergence(
            "verifs",
            &|| backends::mc007_verifs(pool.clone()),
            &mcfs::FsOpCodec,
            &cfg,
        ) {
            Ok(ds) => report.diagnostics.extend(ds),
            Err(e) => report
                .diagnostics
                .push(check_failure(LintCode::Mc007, "verifs", e)),
        }
        report.checks_run += 1;
        match mc007_divergence(
            "ext2",
            &|| backends::mc007_ext2(pool.clone()),
            &mcfs::FsOpCodec,
            &cfg,
        ) {
            Ok(ds) => report.diagnostics.extend(ds),
            Err(e) => report
                .diagnostics
                .push(check_failure(LintCode::Mc007, "ext2", e)),
        }
    }

    // MC005: repair convergence on the fsck-capable on-disk backends,
    // against corruptors that scramble only derivable metadata.
    if opts.enabled(LintCode::Mc005) {
        let cfg = Mc005Config {
            rounds: if opts.quick { 2 } else { 4 },
            seed: opts.seed ^ 5,
            ..Mc005Config::default()
        };
        report.checks_run += 1;
        match mc005_repair_convergence(
            &|| {
                fs_ext::ext2_on_ram(backends::EXT_DEVICE_BYTES).and_then(|mut fs| {
                    fs.mount()?;
                    Ok(fs)
                })
            },
            "ext2",
            &pool,
            &ext_derivable_corruptor,
            &cfg,
        ) {
            Ok(ds) => report.diagnostics.extend(ds),
            Err(e) => report
                .diagnostics
                .push(check_failure(LintCode::Mc005, "ext2", e)),
        }
        if !opts.quick {
            report.checks_run += 1;
            match mc005_repair_convergence(
                &|| {
                    fs_ext::ext4_on_ram(backends::EXT_DEVICE_BYTES).and_then(|mut fs| {
                        fs.mount()?;
                        Ok(fs)
                    })
                },
                "ext4",
                &pool,
                &ext_derivable_corruptor,
                &cfg,
            ) {
                Ok(ds) => report.diagnostics.extend(ds),
                Err(e) => report
                    .diagnostics
                    .push(check_failure(LintCode::Mc005, "ext4", e)),
            }
        }
        report.checks_run += 1;
        match mc005_repair_convergence(
            &|| {
                let mtd =
                    blockdev::MtdDevice::new(backends::JFFS2_ERASE_BLOCK, backends::JFFS2_BLOCKS)
                        .map_err(|_| vfs::Errno::EINVAL)?;
                let mut fs = fs_jffs2::Jffs2Fs::format(mtd, fs_jffs2::Jffs2Config::default())?;
                fs.mount()?;
                Ok(fs)
            },
            "jffs2",
            &pool,
            &|img, rng| jffs2_corrupt_log_tails(img, backends::JFFS2_ERASE_BLOCK, rng),
            &cfg,
        ) {
            Ok(ds) => report.diagnostics.extend(ds),
            Err(e) => report
                .diagnostics
                .push(check_failure(LintCode::Mc005, "jffs2", e)),
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfs::FsOp;
    use vfs::{FileSystem, VfsResult};

    /// The acceptance criterion: MC002 fires on the historical VeriFS
    /// (hole writes skip zeroing, residue digest off — the CHUNK-rounding
    /// aliasing) and stays clean on the fixed v2.
    #[test]
    fn mc002_fires_on_historical_verifs_and_is_clean_on_fixed() {
        let pool = PoolConfig::small();
        let ops = single_file_mutations(&pool, "/f0");
        let cfg = Mc002Config::default();

        let ds = mc002_aliasing(
            &backends::historical_verifs,
            "verifs-historical",
            &ops,
            &cfg,
        )
        .expect("historical backend runs");
        assert!(
            ds.iter().any(|d| d.code == LintCode::Mc002),
            "CHUNK-rounding aliasing must be caught on the historical backend"
        );
        assert!(
            !ds[0].replay.is_empty(),
            "diagnostic carries a replayable trace"
        );

        let fixed = || -> VfsResult<Box<dyn FileSystem>> {
            let mut fs = verifs::VeriFs::v2();
            fs.mount()?;
            Ok(Box::new(fs))
        };
        let ds = mc002_aliasing(&fixed, "verifs-v2", &ops, &cfg).expect("fixed backend runs");
        assert!(ds.is_empty(), "fixed v2 must be alias-free: {ds:?}");
    }

    /// The old path-prefix heuristic calls hard-link-aliased pairs
    /// independent; the commutation sanitizer catches that, while the
    /// derived relation passes on the same op set.
    #[test]
    fn mc001_catches_heuristic_hardlink_unsoundness() {
        let backend = backends::quick()[1]; // verifs-v2
        let ops = vec![
            FsOp::CreateFile {
                path: "/f0".into(),
                mode: 0o644,
            },
            FsOp::Hardlink {
                src: "/f0".into(),
                dst: "/f1".into(),
            },
            FsOp::Truncate {
                path: "/f0".into(),
                size: 0,
            },
            FsOp::WriteFile {
                path: "/f1".into(),
                offset: 0,
                size: 10,
                seed: 1,
            },
        ];
        let cfg = Mc001Config {
            samples_per_pair: 256,
            prefix_len: 3,
            max_pairs: None,
            seed: 7,
        };
        let ds = mc001_commutation(&backend, &ops, Relation::Heuristic, &cfg)
            .expect("heuristic run completes");
        assert!(
            ds.iter().any(|d| d.code == LintCode::Mc001),
            "heuristic must be caught treating aliased truncate/write as independent"
        );

        let ds = mc001_commutation(&backend, &ops, Relation::Derived, &cfg)
            .expect("derived run completes");
        assert!(ds.is_empty(), "derived relation must be sound: {ds:?}");
    }

    /// MC006's teeth: the *sequential* relation is observably unsound as a
    /// concurrency relation — stat/truncate commute state-wise but the
    /// stat's result flips with the schedule, and two threads racing the
    /// same create swap who sees `Ok` and who sees `EEXIST`. The real
    /// concurrency relation must stay clean on the same op set.
    #[test]
    fn mc006_catches_sequential_relation_used_concurrently() {
        let backend = backends::quick()[1]; // verifs-v2
        let ops = vec![
            FsOp::CreateFile {
                path: "/f0".into(),
                mode: 0o644,
            },
            FsOp::Stat { path: "/f0".into() },
            FsOp::Truncate {
                path: "/f0".into(),
                size: 5,
            },
            FsOp::WriteFile {
                path: "/f0".into(),
                offset: 0,
                size: 10,
                seed: 1,
            },
        ];
        let cfg = Mc006Config {
            samples_per_pair: 64,
            prefix_len: 3,
            max_pairs: None,
            seed: 7,
        };
        let ds = mc006_interleave_commutation(&backend, &ops, ConcRelation::Sequential, &cfg)
            .expect("sequential run completes");
        assert!(
            ds.iter().any(|d| d.code == LintCode::Mc006),
            "the sequential relation must be caught hiding order-sensitive results"
        );

        let ds = mc006_interleave_commutation(&backend, &ops, ConcRelation::Concurrent, &cfg)
            .expect("concurrent run completes");
        assert!(ds.is_empty(), "concurrency relation must be sound: {ds:?}");
    }

    /// The quick registry on the fixed workspace is clean — the CI gate.
    #[test]
    fn quick_registry_is_clean_on_workspace() {
        let report = run_registry(&LintOptions {
            quick: true,
            ..LintOptions::default()
        });
        assert!(
            !report.has_errors(),
            "quick registry must pass:\n{}",
            report.render_human()
        );
        assert!(report.checks_run >= 9, "all four codes ran");
    }

    #[test]
    fn code_filter_limits_checks() {
        let report = run_registry(&LintOptions {
            quick: true,
            codes: Some(vec![LintCode::Mc003]),
            ..LintOptions::default()
        });
        assert!(report.diagnostics.iter().all(|d| d.code == LintCode::Mc003));
        assert!(report.checks_run < 9);
    }

    /// MC005's teeth: corruption that destroys *non*-derivable metadata
    /// (the inode table) is unrepairable data loss, and the convergence
    /// check must flag it rather than let fsck silently "succeed".
    #[test]
    fn mc005_flags_unrepairable_data_loss() {
        let destroy_inode_table = |img: &mut [u8], _rng: &mut XorShift64| {
            let sb = fs_ext::layout::SuperBlock::decode(img).unwrap();
            let bs = sb.block_size as usize;
            let start = sb.inode_table_start() as usize * bs;
            let end = start + sb.inode_table_blocks() as usize * bs;
            for b in &mut img[start..end] {
                *b = 0;
            }
        };
        let cfg = Mc005Config {
            rounds: 6,
            prefix_len: 5,
            corruptions: 1,
            seed: 0x5eed_1e47 ^ 5,
        };
        let ds = mc005_repair_convergence(
            &|| {
                // Pre-populate so every round has reachable data to lose.
                let mut fs = fs_ext::ext2_on_ram(backends::EXT_DEVICE_BYTES)?;
                fs.mount()?;
                let fd = fs.create("/keep", vfs::FileMode::REG_DEFAULT)?;
                fs.write(fd, b"reachable")?;
                fs.close(fd)?;
                Ok(fs)
            },
            "ext2",
            &PoolConfig::small(),
            &destroy_inode_table,
            &cfg,
        )
        .expect("check runs");
        assert!(
            ds.iter().any(|d| d.code == LintCode::Mc005),
            "wiping the inode table must surface as an MC005 finding"
        );
    }
}
