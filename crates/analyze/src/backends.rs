//! Backend constructors the lint registry runs against: every file-system
//! implementation in the workspace, plus the historical buggy VeriFS
//! variant the `MC002` regression test targets.

use std::sync::Arc;

use fusesim::{FuseConfig, FuseMount};
use verifs::{VeriFs, VeriFsConfig};
use vfs::{FileSystem, VfsResult};

/// Device size for the ext2/ext4 backends (the paper's 256 KiB).
pub const EXT_DEVICE_BYTES: u64 = 256 * 1024;
/// Device size for XFS (its 16 MiB minimum).
pub const XFS_DEVICE_BYTES: u64 = 16 * 1024 * 1024;
/// JFFS2 flash geometry: erase-block size.
pub const JFFS2_ERASE_BLOCK: usize = 16 * 1024;
/// JFFS2 erase-block count (1 MiB total).
pub const JFFS2_BLOCKS: usize = 64;

/// One checkable backend: a name and a constructor yielding a fresh,
/// mounted, empty file system.
#[derive(Clone, Copy)]
pub struct Backend {
    /// Registry/report name.
    pub name: &'static str,
    /// Construction or per-op cost is high: sanitizers sample fewer pairs.
    pub heavy: bool,
    make: fn() -> VfsResult<Box<dyn FileSystem>>,
}

impl Backend {
    /// A fresh, mounted, empty instance.
    ///
    /// # Errors
    ///
    /// Propagated format/mount errors.
    pub fn fresh(&self) -> VfsResult<Box<dyn FileSystem>> {
        (self.make)()
    }
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Backend").field("name", &self.name).finish()
    }
}

fn mk_verifs_v1() -> VfsResult<Box<dyn FileSystem>> {
    let mut fs = VeriFs::v1();
    fs.mount()?;
    Ok(Box::new(fs))
}

fn mk_verifs_v2() -> VfsResult<Box<dyn FileSystem>> {
    let mut fs = VeriFs::v2();
    fs.mount()?;
    Ok(Box::new(fs))
}

fn mk_fuse_verifs() -> VfsResult<Box<dyn FileSystem>> {
    let mut mount = FuseMount::with_config(VeriFs::v2(), FuseConfig::default(), None);
    let conn = mount.connection();
    mount
        .daemon_mut()
        .fs_mut()
        .set_invalidation_sink(Arc::new(conn));
    mount.mount()?;
    Ok(Box::new(mount))
}

fn mk_ext2() -> VfsResult<Box<dyn FileSystem>> {
    let mut fs = fs_ext::ext2_on_ram(EXT_DEVICE_BYTES)?;
    fs.mount()?;
    Ok(Box::new(fs))
}

fn mk_ext4() -> VfsResult<Box<dyn FileSystem>> {
    let mut fs = fs_ext::ext4_on_ram(EXT_DEVICE_BYTES)?;
    fs.mount()?;
    Ok(Box::new(fs))
}

fn mk_xfs() -> VfsResult<Box<dyn FileSystem>> {
    let mut fs = fs_xfs::xfs_on_ram(XFS_DEVICE_BYTES)?;
    fs.mount()?;
    Ok(Box::new(fs))
}

fn mk_jffs2() -> VfsResult<Box<dyn FileSystem>> {
    let mtd = blockdev::MtdDevice::new(JFFS2_ERASE_BLOCK, JFFS2_BLOCKS)
        .map_err(|_| vfs::Errno::EINVAL)?;
    let mut fs = fs_jffs2::Jffs2Fs::format(mtd, fs_jffs2::Jffs2Config::default())?;
    fs.mount()?;
    Ok(Box::new(fs))
}

/// The quick set: the RAM backends plus one device-backed representative —
/// what `mcfs-lint --quick` (the CI smoke gate) runs.
pub fn quick() -> Vec<Backend> {
    vec![
        Backend {
            name: "verifs-v1",
            heavy: false,
            make: mk_verifs_v1,
        },
        Backend {
            name: "verifs-v2",
            heavy: false,
            make: mk_verifs_v2,
        },
        Backend {
            name: "fuse-verifs",
            heavy: false,
            make: mk_fuse_verifs,
        },
        Backend {
            name: "ext2",
            heavy: true,
            make: mk_ext2,
        },
    ]
}

/// Every backend in the workspace.
pub fn all() -> Vec<Backend> {
    let mut v = quick();
    v.push(Backend {
        name: "ext4",
        heavy: true,
        make: mk_ext4,
    });
    v.push(Backend {
        name: "xfs",
        heavy: true,
        make: mk_xfs,
    });
    v.push(Backend {
        name: "jffs2",
        heavy: true,
        make: mk_jffs2,
    });
    v
}

/// Builds the VeriFS1-vs-VeriFS2 differential harness the MC007
/// divergence check explores (checkpoint-API targets, no FUSE layer —
/// the factory runs once per swarm worker per round).
///
/// # Errors
///
/// Propagated construction/mount errors.
pub fn mc007_verifs(pool: mcfs::PoolConfig) -> VfsResult<mcfs::Mcfs> {
    let targets: Vec<Box<dyn mcfs::CheckedTarget>> = vec![
        Box::new(mcfs::CheckpointTarget::new(VeriFs::v1())),
        Box::new(mcfs::CheckpointTarget::new(VeriFs::v2())),
    ];
    mcfs::Mcfs::new(
        targets,
        mcfs::McfsConfig {
            pool,
            ..mcfs::McfsConfig::default()
        },
    )
}

/// Builds the Ext2-vs-Ext4 remount harness for the MC007 divergence check.
///
/// # Errors
///
/// Propagated format/mount errors.
pub fn mc007_ext2(pool: mcfs::PoolConfig) -> VfsResult<mcfs::Mcfs> {
    let e2 = fs_ext::ext2_on_ram(EXT_DEVICE_BYTES)?;
    let e4 = fs_ext::ext4_on_ram(EXT_DEVICE_BYTES)?;
    let targets: Vec<Box<dyn mcfs::CheckedTarget>> = vec![
        Box::new(mcfs::RemountTarget::new(e2, mcfs::RemountMode::PerOp)),
        Box::new(mcfs::RemountTarget::new(e4, mcfs::RemountMode::PerOp)),
    ];
    mcfs::Mcfs::new(
        targets,
        mcfs::McfsConfig {
            pool,
            ..mcfs::McfsConfig::default()
        },
    )
}

/// The historical buggy VeriFS2: hole writes skip zeroing (paper bug #1)
/// *and* the beyond-EOF residue digest is disabled, reproducing the
/// CHUNK-rounding abstraction aliasing that hid the hole bug from
/// state-matched DFS. `MC002` must fire on this backend and stay clean on
/// the fixed [`VeriFs::v2`].
pub fn historical_verifs() -> VfsResult<Box<dyn FileSystem>> {
    let mut cfg = VeriFsConfig::v2();
    cfg.bugs.v2_hole_no_zero = true;
    cfg.opaque_residue_digest = false;
    let mut fs = VeriFs::with_config(cfg);
    fs.mount()?;
    Ok(Box::new(fs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_backend_constructs_mounted_and_empty() {
        for b in all() {
            let mut fs = b.fresh().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let entries = fs
                .getdents("/")
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            // Freshly formatted: nothing but special entries.
            assert!(
                entries.iter().all(|e| e.name.starts_with("lost+found")),
                "{}: {entries:?}",
                b.name
            );
        }
        assert!(historical_verifs().is_ok());
    }
}
