//! Function-level nondeterminism taint pass over the token stream.
//!
//! The pass is deliberately heuristic: it segments the token stream into
//! functions, classifies each function as a *determinism-critical sink*
//! (fingerprint/digest/serialization/oracle paths, by name or by callee),
//! and then looks for *sources* of ambient nondeterminism flowing through
//! it. Unordered-iteration findings are only reported inside sink
//! functions — iterating a `HashMap` to compute a count is harmless;
//! iterating one to feed a digest is not. Ambient entropy (wall clocks,
//! `RandomState`, raw thread spawns, pointer-identity casts) is reported
//! anywhere in non-test code, because those leak into replay even outside
//! an obvious sink.
//!
//! False positives are expected and cheap: the suppression syntax
//! (`// mcfs-lint: allow(MC007, reason)`) keeps every intentional use
//! auditable, and MC007's dynamic divergence check is the ground truth.

use std::collections::BTreeSet;
use std::ops::Range;

use super::lexer::{TokKind, Token};

/// What kind of nondeterminism source a finding points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SourceKind {
    /// `HashMap`/`HashSet` iteration reaching a determinism-critical sink.
    UnorderedIter,
    /// An `enumerate()` slot index cast into a digest/wire value — the
    /// PR 6 inode-keyed residue-digest bug class.
    SlotIndex,
    /// `Instant::now` / `SystemTime::now` outside the virtual clock.
    AmbientTime,
    /// `RandomState` (per-process-seeded hashing) in scanned code.
    RandomState, // mcfs-lint: allow(MC007, the variant names the hazard; it is not a hasher use)
    /// `std::thread` spawn/scope off the virtual scheduler.
    ThreadSpawn,
    /// Pointer identity (`as_ptr ... as usize`, `ptr::hash`) feeding a
    /// value — addresses differ across runs under ASLR.
    PtrIdentity,
}

impl SourceKind {
    /// Short stable tag used in reports and tests.
    pub fn as_str(&self) -> &'static str {
        match self {
            SourceKind::UnorderedIter => "unordered-iter",
            SourceKind::SlotIndex => "slot-index",
            SourceKind::AmbientTime => "ambient-time",
            // mcfs-lint: allow(MC007, the variant names the hazard; it is not a hasher use)
            SourceKind::RandomState => "random-state",
            SourceKind::ThreadSpawn => "thread-spawn",
            SourceKind::PtrIdentity => "ptr-identity",
        }
    }
}

/// One taint finding, positioned by line with its enclosing function's
/// span so function-level suppressions can be matched.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// 1-based line of the source expression.
    pub line: u32,
    /// Which source pattern fired.
    pub kind: SourceKind,
    /// Enclosing function name (empty outside any function).
    pub func: String,
    /// Line of the enclosing `fn` declaration.
    pub fn_decl_line: u32,
    /// Last line of the enclosing function body.
    pub fn_end_line: u32,
    /// Human-readable description.
    pub message: String,
}

/// Function-name fragments that mark a determinism-critical sink.
const SINK_NAME_PARTS: &[&str] = &[
    "digest",
    "fingerprint",
    "pickle",
    "encode",
    "serialize",
    "snapshot",
    "wire",
    "to_bytes",
    "export",
    "hash",
    "canonical",
    "verdict",
    "oracle",
];

/// Callee identifiers whose presence marks the enclosing fn as a sink.
const SINK_CALLEES: &[&str] = &[
    "md5",
    "fnv128",
    "put_u32",
    "put_u64",
    "put_u128",
    "put_str",
    "put_bytes",
    "encode_op",
    "opaque_state_digest",
    "Digest128",
];

/// Iterator-producing methods whose order is arbitrary on hash containers.
const UNORDERED_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Chain methods that make an arbitrary-order traversal order-insensitive.
const ORDER_INSENSITIVE: &[&str] = &[
    "count",
    "sum",
    "product",
    "all",
    "any",
    "max",
    "min",
    "max_by",
    "max_by_key",
    "min_by",
    "min_by_key",
];

/// Hash-container type names whose iteration order is unordered.
const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Ordered collection types that sanitize a `collect()`.
const ORDERED_COLLECT_TYPES: &[&str] = &["BTreeMap", "BTreeSet", "BinaryHeap"];

struct FnInfo {
    name: String,
    decl_line: u32,
    /// Token range of the signature (`fn` token up to the body `{`).
    sig: Range<usize>,
    /// Token range of the body including both braces.
    body: Range<usize>,
    end_line: u32,
    is_test: bool,
}

/// Scans a lexed file and returns the raw findings, sorted by
/// `(line, kind)` and deduplicated.
pub fn scan_tokens(toks: &[Token]) -> Vec<RawFinding> {
    let (fns, excluded) = collect_fns(toks);
    let fields = collect_unordered_fields(toks);
    let in_excluded = |i: usize| excluded.iter().any(|r| r.contains(&i));
    let enclosing = |i: usize| -> Option<&FnInfo> {
        fns.iter()
            .filter(|f| f.sig.start <= i && i < f.body.end)
            .min_by_key(|f| f.body.end - f.sig.start)
    };
    let mut out: Vec<RawFinding> = Vec::new();
    let mut push = |i: usize, kind: SourceKind, message: String| {
        if in_excluded(i) {
            return;
        }
        let (func, fn_decl_line, fn_end_line) = match enclosing(i) {
            Some(f) if f.is_test => return,
            Some(f) => (f.name.clone(), f.decl_line, f.end_line),
            None => (String::new(), toks[i].line, toks[i].line),
        };
        out.push(RawFinding {
            line: toks[i].line,
            kind,
            func,
            fn_decl_line,
            fn_end_line,
            message,
        });
    };

    scan_ambient(toks, &mut push);

    for f in fns.iter().filter(|f| !f.is_test) {
        if !is_sink(f, toks) {
            continue;
        }
        let mut locals = collect_unordered_bindings(toks, f.sig.clone());
        locals.extend(collect_unordered_bindings(toks, f.body.clone()));
        let unordered: BTreeSet<&str> = fields
            .iter()
            .map(String::as_str)
            .chain(locals.iter().map(String::as_str))
            .collect();
        scan_unordered_iter(toks, f, &unordered, &mut push);
        scan_slot_index(toks, f, &mut push);
    }

    out.sort_by_key(|f| (f.line, f.kind));
    out.dedup_by_key(|f| (f.line, f.kind));
    out
}

/// Whether `f` is a determinism-critical sink: named like one, or calling
/// into the digest/wire primitives.
fn is_sink(f: &FnInfo, toks: &[Token]) -> bool {
    let lname = f.name.to_ascii_lowercase();
    if SINK_NAME_PARTS.iter().any(|p| lname.contains(p)) {
        return true;
    }
    toks[f.body.clone()]
        .iter()
        .filter_map(Token::ident)
        .any(|id| SINK_CALLEES.contains(&id))
}

/// Collects functions and the excluded (`#[cfg(test)] mod`) token ranges.
fn collect_fns(toks: &[Token]) -> (Vec<FnInfo>, Vec<Range<usize>>) {
    let mut fns = Vec::new();
    let mut excluded = Vec::new();
    let mut pending_test = false;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut attr_idents: Vec<&str> = Vec::new();
            while j < toks.len() {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if let Some(id) = toks[j].ident() {
                    attr_idents.push(id);
                }
                j += 1;
            }
            let is_test_attr = attr_idents.first() == Some(&"test")
                || (attr_idents.contains(&"cfg") && attr_idents.contains(&"test"));
            if is_test_attr {
                pending_test = true;
            }
            i = j + 1;
            continue;
        }
        if toks[i].is_ident("mod") && pending_test {
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                let end = skip_balanced(toks, j, '{', '}');
                excluded.push(i..end);
                j = end;
            }
            pending_test = false;
            i = j;
            continue;
        }
        if toks[i].is_ident("fn") {
            let fn_start = i;
            let name = toks
                .get(i + 1)
                .and_then(Token::ident)
                .unwrap_or("")
                .to_string();
            let decl_line = toks[i].line;
            let mut j = i + 2;
            let mut depth = 0i32;
            let mut body_start = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if t.is_punct('{') && depth == 0 {
                    body_start = Some(j);
                    break;
                } else if t.is_punct(';') && depth == 0 {
                    // `[u8; 16]` puts a `;` inside brackets; only a
                    // top-level one ends a bodyless declaration.
                    break;
                }
                j += 1;
            }
            if let Some(bs) = body_start {
                let be = skip_balanced(toks, bs, '{', '}');
                let end_line = toks.get(be.saturating_sub(1)).map_or(decl_line, |t| t.line);
                if pending_test {
                    excluded.push(fn_start..be);
                }
                fns.push(FnInfo {
                    name,
                    decl_line,
                    sig: fn_start..bs,
                    body: bs..be,
                    end_line,
                    is_test: pending_test,
                });
                pending_test = false;
                // Keep scanning inside the body so nested fns get entries.
                i += 2;
                continue;
            }
            pending_test = false;
            i = j;
            continue;
        }
        if let Some(id) = toks[i].ident() {
            if matches!(
                id,
                "struct" | "enum" | "impl" | "trait" | "static" | "const" | "use" | "type"
            ) {
                pending_test = false;
            }
        }
        i += 1;
    }
    (fns, excluded)
}

/// Index just past the token matching the opener at `start`.
fn skip_balanced(toks: &[Token], start: usize, open: char, close: char) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < toks.len() {
        if toks[i].is_punct(open) {
            depth += 1;
        } else if toks[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Struct/enum fields whose declared type mentions a hash container.
fn collect_unordered_fields(toks: &[Token]) -> BTreeSet<String> {
    let mut fields = BTreeSet::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("struct") && toks.get(i + 1).and_then(Token::ident).is_some() {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j >= toks.len() || toks[j].is_punct(';') {
                i = j;
                continue;
            }
            let end = skip_balanced(toks, j, '{', '}');
            let mut depth = 0i32;
            let mut k = j;
            while k < end {
                if toks[k].is_punct('{') {
                    depth += 1;
                } else if toks[k].is_punct('}') {
                    depth -= 1;
                } else if depth == 1
                    && toks[k].is_punct(':')
                    && !toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                    && !toks.get(k.wrapping_sub(1)).is_some_and(|t| t.is_punct(':'))
                {
                    if let Some(name) = toks.get(k - 1).and_then(Token::ident) {
                        // Field type runs to the `,` (or `}`) at depth 1.
                        let mut m = k + 1;
                        let mut inner = 0i32;
                        let mut unordered = false;
                        while m < end {
                            let t = &toks[m];
                            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                                inner += 1;
                            } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                                if t.is_punct('}') && inner == 0 {
                                    break;
                                }
                                inner -= 1;
                            } else if t.is_punct(',') && inner == 0 {
                                // Commas inside generics are fine to stop at
                                // only when we track angles; treating any
                                // depth-0 comma as the end merely truncates
                                // the scanned type, which is conservative.
                                if angle_depth(toks, k + 1, m) == 0 {
                                    break;
                                }
                            } else if let Some(id) = t.ident() {
                                if UNORDERED_TYPES.contains(&id) {
                                    unordered = true;
                                }
                            }
                            m += 1;
                        }
                        if unordered {
                            fields.insert(name.to_string());
                        }
                    }
                }
                k += 1;
            }
            i = end;
            continue;
        }
        i += 1;
    }
    fields
}

/// Net `<`/`>` nesting between token indices, ignoring `->` arrows.
fn angle_depth(toks: &[Token], from: usize, to: usize) -> i32 {
    let mut depth = 0i32;
    for i in from..to {
        if toks[i].is_punct('<') {
            depth += 1;
        } else if toks[i].is_punct('>')
            && !toks.get(i.wrapping_sub(1)).is_some_and(|t| t.is_punct('-'))
        {
            depth -= 1;
        }
    }
    depth.max(0)
}

/// `let` bindings and fn parameters in `range` whose statement mentions a
/// hash container type or constructor.
fn collect_unordered_bindings(toks: &[Token], range: Range<usize>) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let mut i = range.start;
    while i < range.end {
        let is_let = toks[i].is_ident("let");
        let is_param = toks[i].is_punct(':')
            && !toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(i.wrapping_sub(1)).is_some_and(|t| t.is_punct(':'));
        if is_let {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).and_then(Token::ident) else {
                i += 1;
                continue;
            };
            // Scan the statement to its `;` at local depth 0.
            let mut depth = 0i32;
            let mut m = j + 1;
            let mut unordered = false;
            while m < range.end {
                let t = &toks[m];
                if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if t.is_punct(';') && depth == 0 {
                    break;
                } else if let Some(id) = t.ident() {
                    if UNORDERED_TYPES.contains(&id) {
                        unordered = true;
                    }
                }
                m += 1;
            }
            if unordered {
                names.insert(name.to_string());
            }
            i = m;
            continue;
        }
        if is_param {
            // Parameter form `name: Type` — only meaningful when scanning a
            // signature range, but harmless elsewhere: a binding is only
            // recorded when the type region names a hash container.
            if let Some(name) = toks.get(i.wrapping_sub(1)).and_then(Token::ident) {
                let mut m = i + 1;
                let mut depth = 0i32;
                let mut unordered = false;
                while m < range.end {
                    let t = &toks[m];
                    if t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    } else if t.is_punct(',') && depth == 0 && angle_depth(toks, i + 1, m) == 0 {
                        break;
                    } else if let Some(id) = t.ident() {
                        if UNORDERED_TYPES.contains(&id) {
                            unordered = true;
                        }
                    }
                    m += 1;
                }
                if unordered {
                    names.insert(name.to_string());
                }
            }
        }
        i += 1;
    }
    names
}

/// Reports ambient-entropy sources anywhere in scanned code.
fn scan_ambient(toks: &[Token], push: &mut impl FnMut(usize, SourceKind, String)) {
    let path2 = |i: usize, a: &str, b: &[&'static str]| -> Option<&'static str> {
        if !toks[i].is_ident(a) {
            return None;
        }
        if !(toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':')))
        {
            return None;
        }
        let id = toks.get(i + 3).and_then(Token::ident)?;
        b.iter().find(|m| **m == id).copied()
    };
    for i in 0..toks.len() {
        if let Some(m) = path2(i, "Instant", &["now"]) {
            push(
                i,
                SourceKind::AmbientTime,
                format!("`Instant::{m}` reads the wall clock; replay must use the virtual clock"),
            );
        }
        if let Some(m) = path2(i, "SystemTime", &["now"]) {
            push(
                i,
                SourceKind::AmbientTime,
                format!(
                    "`SystemTime::{m}` reads the wall clock; replay must use the virtual clock"
                ),
            );
        }
        if let Some(m) = path2(i, "thread", &["spawn", "scope", "Builder"]) {
            push(
                i,
                SourceKind::ThreadSpawn,
                format!(
                    "`std::thread::{m}` schedules off the virtual scheduler; \
                     joins must be deterministic"
                ),
            );
        }
        if toks[i].is_ident("RandomState") {
            push(
                i,
                // mcfs-lint: allow(MC007, the detector for the hazard, not a hasher use)
                SourceKind::RandomState,
                "`RandomState` is seeded per process; hashes differ across runs".to_string(),
            );
        }
        if path2(i, "ptr", &["hash"]).is_some() {
            push(
                i,
                SourceKind::PtrIdentity,
                "`ptr::hash` keys on an address, which differs across runs".to_string(),
            );
        }
        if toks[i].is_ident("as_ptr") {
            let tail = &toks[i + 1..toks.len().min(i + 9)];
            let casts = tail.windows(2).any(|w| {
                w[0].is_ident("as")
                    && w[1]
                        .ident()
                        .is_some_and(|t| matches!(t, "usize" | "u64" | "u128" | "isize"))
            });
            if casts {
                push(
                    i,
                    SourceKind::PtrIdentity,
                    "pointer cast to an integer; addresses differ across runs".to_string(),
                );
            }
        }
    }
}

/// Reports unordered-container traversals in a sink fn that are not
/// laundered through an order-insensitive chain.
fn scan_unordered_iter(
    toks: &[Token],
    f: &FnInfo,
    unordered: &BTreeSet<&str>,
    push: &mut impl FnMut(usize, SourceKind, String),
) {
    let body = f.body.clone();
    for i in body.clone() {
        // `recv.iter()` method form.
        if toks[i].is_punct('.')
            && toks
                .get(i + 1)
                .and_then(Token::ident)
                .is_some_and(|m| UNORDERED_ITER_METHODS.contains(&m))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            let method = toks[i + 1].ident().unwrap_or_default().to_string();
            let Some(recv) = toks.get(i.wrapping_sub(1)).and_then(Token::ident) else {
                continue;
            };
            if !unordered.contains(recv) {
                continue;
            }
            let after = skip_balanced(toks, i + 2, '(', ')');
            if chain_is_order_insensitive(toks, after, body.end)
                || binding_is_sorted_later(toks, f, i)
            {
                continue;
            }
            push(
                i,
                SourceKind::UnorderedIter,
                format!(
                    "`{recv}.{method}()` traverses a hash container in arbitrary order inside \
                     `{}`; iterate canonically (e.g. `mcfs::canon::sorted_pairs`) or collect \
                     into a `BTreeMap` first",
                    f.name
                ),
            );
        }
        // `for x in &recv {` direct-loop form.
        if toks[i].is_ident("for") {
            let mut j = i + 1;
            // Find the `in` at pattern depth 0.
            let mut depth = 0i32;
            let mut found_in = None;
            while j < body.end && j < i + 24 {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if t.is_ident("in") && depth == 0 {
                    found_in = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(in_pos) = found_in else { continue };
            let mut k = in_pos + 1;
            while k < body.end && !toks[k].is_punct('{') {
                k += 1;
            }
            // Only flag when the loop expression is a plain (possibly
            // borrowed/field) path ending in an unordered binding; method
            // chains are handled by the `.iter()` detector above.
            let Some(last) = toks.get(k.wrapping_sub(1)).and_then(Token::ident) else {
                continue;
            };
            let plain = toks[in_pos + 1..k].iter().all(|t| {
                matches!(&t.kind, TokKind::Ident(_))
                    || t.is_punct('&')
                    || t.is_punct('.')
                    || t.is_punct('*')
            });
            if plain && unordered.contains(last) {
                push(
                    i,
                    SourceKind::UnorderedIter,
                    format!(
                        "`for .. in {last}` traverses a hash container in arbitrary order inside \
                         `{}`; iterate canonically (e.g. `mcfs::canon::sorted_pairs`)",
                        f.name
                    ),
                );
            }
        }
    }
}

/// Walks a method chain starting at `i` (just past a call's closing paren)
/// and reports whether it ends in an order-insensitive terminal or an
/// ordered `collect`.
fn chain_is_order_insensitive(toks: &[Token], mut i: usize, end: usize) -> bool {
    while i + 1 < end && toks[i].is_punct('.') {
        let Some(m) = toks.get(i + 1).and_then(Token::ident) else {
            return false;
        };
        if ORDER_INSENSITIVE.contains(&m) {
            return true;
        }
        let mut j = i + 2;
        let mut ordered_collect = false;
        // Turbofish: `collect::<BTreeMap<_, _>>()`.
        if toks.get(j).is_some_and(|t| t.is_punct(':'))
            && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(j + 2).is_some_and(|t| t.is_punct('<'))
        {
            let mut depth = 0i32;
            let mut k = j + 2;
            while k < end {
                if toks[k].is_punct('<') {
                    depth += 1;
                } else if toks[k].is_punct('>') {
                    depth -= 1;
                    if depth <= 0 {
                        break;
                    }
                } else if let Some(id) = toks[k].ident() {
                    if ORDERED_COLLECT_TYPES.contains(&id) {
                        ordered_collect = true;
                    }
                }
                k += 1;
            }
            j = k + 1;
        }
        if m == "collect" && ordered_collect {
            return true;
        }
        if toks.get(j).is_some_and(|t| t.is_punct('(')) {
            i = skip_balanced(toks, j, '(', ')');
        } else {
            return false;
        }
    }
    false
}

/// Whether the statement containing the traversal at `at` is a `let`
/// binding (possibly `BTreeMap`-annotated) whose value is later sorted.
fn binding_is_sorted_later(toks: &[Token], f: &FnInfo, at: usize) -> bool {
    // Scan back to the statement start: a `;`, `{`, or `}` at this level.
    let mut s = at;
    while s > f.body.start {
        let t = &toks[s - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        s -= 1;
    }
    if !toks.get(s).is_some_and(|t| t.is_ident("let")) {
        return false;
    }
    let mut j = s + 1;
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let Some(name) = toks.get(j).and_then(Token::ident) else {
        return false;
    };
    // Ordered-collection annotation on the binding counts as sanitized.
    for t in &toks[j..at] {
        if let Some(id) = t.ident() {
            if ORDERED_COLLECT_TYPES.contains(&id) {
                return true;
            }
        }
        if t.is_punct('=') {
            break;
        }
    }
    // Otherwise look for `name.sort*(..)` later in the body.
    let mut k = at;
    while k + 2 < f.body.end {
        if toks[k].is_ident(name)
            && toks[k + 1].is_punct('.')
            && toks
                .get(k + 2)
                .and_then(Token::ident)
                .is_some_and(|m| m.starts_with("sort"))
        {
            return true;
        }
        k += 1;
    }
    false
}

/// Reports `enumerate()` slot indices cast into wire/digest values inside
/// a sink fn — the shape of the PR 6 inode-number residue-digest bug.
fn scan_slot_index(toks: &[Token], f: &FnInfo, push: &mut impl FnMut(usize, SourceKind, String)) {
    let body = f.body.clone();
    for i in body.clone() {
        if !(toks[i].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_ident("enumerate"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('(')))
        {
            continue;
        }
        // Bound index ident: `for (idx, ..) in` before, or a closure
        // `|(idx, ..)|` shortly after.
        let mut idx: Option<&str> = None;
        let back = body.start.max(i.saturating_sub(40));
        for p in (back..i).rev() {
            if toks[p].is_ident("for")
                && toks.get(p + 1).is_some_and(|t| t.is_punct('('))
                && toks.get(p + 3).is_some_and(|t| t.is_punct(','))
            {
                idx = toks.get(p + 2).and_then(Token::ident);
                break;
            }
        }
        if idx.is_none() {
            let fwd_end = body.end.min(i + 14);
            for p in i + 3..fwd_end {
                if toks[p].is_punct('|')
                    && toks.get(p + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(p + 3).is_some_and(|t| t.is_punct(','))
                {
                    idx = toks.get(p + 2).and_then(Token::ident);
                    break;
                }
            }
        }
        let Some(idx) = idx else { continue };
        if idx == "_" {
            continue;
        }
        // The index must be cast (`idx as ...`) downstream to count as a
        // wire/digest value; plain indexing is fine.
        let cast = (i..body.end)
            .filter(|&k| k + 1 < body.end)
            .any(|k| toks[k].is_ident(idx) && toks[k + 1].is_ident("as"));
        if cast {
            push(
                i,
                SourceKind::SlotIndex,
                format!(
                    "slot index `{idx}` from `enumerate()` is cast into a value inside `{}`; \
                     slot order is creation-order dependent — key by a stable identity instead",
                    f.name
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::lexer::lex;

    fn findings(src: &str) -> Vec<RawFinding> {
        let (toks, _) = lex(src);
        scan_tokens(&toks)
    }

    fn kinds(src: &str) -> Vec<SourceKind> {
        findings(src).into_iter().map(|f| f.kind).collect()
    }

    #[test]
    fn hashmap_iter_in_digest_fn_is_flagged() {
        let src = r#"
            fn state_digest(m: &HashMap<u64, u64>) -> u64 {
                let mut acc = 0;
                for (k, v) in m.iter() { acc ^= k + v; }
                acc
            }
        "#;
        assert_eq!(kinds(src), vec![SourceKind::UnorderedIter]);
    }

    #[test]
    fn hashmap_iter_outside_sink_is_not_flagged() {
        let src = r#"
            fn tally(m: &HashMap<u64, u64>) -> usize {
                let mut n = 0;
                for (_k, _v) in m.iter() { n += 1; }
                n
            }
        "#;
        assert!(kinds(src).is_empty());
    }

    #[test]
    fn order_insensitive_chain_is_sanitized() {
        let src = r#"
            fn digest_len(m: &HashMap<u64, u64>) -> usize {
                m.iter().count()
            }
            fn digest_max(m: &HashMap<u64, u64>) -> Option<u64> {
                m.values().copied().max()
            }
        "#;
        assert!(kinds(src).is_empty());
    }

    #[test]
    fn btree_collect_is_sanitized() {
        let src = r#"
            fn encode_all(m: &HashMap<u64, u64>) -> Vec<u8> {
                let ordered: BTreeMap<u64, u64> = m.iter().map(|(k, v)| (*k, *v)).collect();
                let turbo = m.iter().collect::<BTreeMap<_, _>>();
                Vec::new()
            }
        "#;
        assert!(kinds(src).is_empty());
    }

    #[test]
    fn collect_then_sort_is_sanitized() {
        let src = r#"
            fn fingerprint(m: &HashMap<u64, u64>) -> u64 {
                let mut pairs: Vec<_> = m.iter().collect();
                pairs.sort_by_key(|(k, _)| **k);
                0
            }
        "#;
        assert!(kinds(src).is_empty());
    }

    #[test]
    fn struct_field_receiver_is_resolved() {
        let src = r#"
            struct Index { map: HashMap<u64, u64>, names: Vec<String> }
            impl Index {
                fn export_wire(&self) -> Vec<u8> {
                    let mut out = Vec::new();
                    for (k, v) in self.map.iter() { out.push((*k ^ *v) as u8); }
                    out
                }
                fn export_names(&self) -> Vec<u8> {
                    let mut out = Vec::new();
                    for n in self.names.iter() { out.push(n.len() as u8); }
                    out
                }
            }
        "#;
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].kind, SourceKind::UnorderedIter);
        assert_eq!(f[0].func, "export_wire");
    }

    #[test]
    fn direct_for_loop_over_hash_field_is_flagged() {
        let src = r#"
            struct S { set: HashSet<u64> }
            impl S {
                fn digest(&self) -> u64 {
                    let mut acc = 0;
                    for x in &self.set { acc ^= x; }
                    acc
                }
            }
        "#;
        assert_eq!(kinds(src), vec![SourceKind::UnorderedIter]);
    }

    #[test]
    fn historical_inode_keyed_residue_digest_is_redetected() {
        // The PR 6 bug shape: VeriFS keyed its beyond-EOF residue digest
        // by inode slot number, making the digest creation-order
        // dependent. The slot index flows from enumerate() into the
        // digest via an `as u64` cast.
        let src = r#"
            impl VeriFs {
                fn opaque_state_digest(&self) -> [u8; 16] {
                    let mut acc = [0u8; 16];
                    for (ino, slot) in self.inodes.iter().enumerate() {
                        let mut buf = Vec::new();
                        buf.extend_from_slice(&(ino as u64).to_le_bytes());
                        let d = md5(&buf);
                        for i in 0..16 { acc[i] ^= d[i]; }
                    }
                    acc
                }
            }
        "#;
        assert!(kinds(src).contains(&SourceKind::SlotIndex));
    }

    #[test]
    fn enumerate_without_cast_is_not_flagged() {
        let src = r#"
            fn encode(entries: &[u64]) -> Vec<u8> {
                let mut out = Vec::new();
                for (i, e) in entries.iter().enumerate() {
                    out.push(entries[i] as u8);
                    let _ = e;
                }
                out
            }
        "#;
        // `entries[i]` indexes; only `i as ...` casts count. The push
        // above does cast `entries[i]`, not `i` — the window requires the
        // ident itself directly before `as`.
        assert!(!kinds(src).contains(&SourceKind::SlotIndex));
    }

    #[test]
    fn ambient_time_and_threads_flagged_anywhere() {
        let src = r#"
            fn helper() -> u64 {
                let t = Instant::now();
                std::thread::spawn(|| {});
                0
            }
        "#;
        let k = kinds(src);
        assert!(k.contains(&SourceKind::AmbientTime));
        assert!(k.contains(&SourceKind::ThreadSpawn));
    }

    #[test]
    fn random_state_and_ptr_identity_flagged() {
        let src = r#"
            fn build() {
                let s = RandomState::new();
                let p = x.as_ptr() as usize;
            }
        "#;
        let k = kinds(src);
        assert!(k.contains(&SourceKind::RandomState));
        assert!(k.contains(&SourceKind::PtrIdentity));
    }

    #[test]
    fn test_code_is_skipped() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn digest(m: &HashMap<u64, u64>) -> u64 {
                    let mut acc = 0;
                    for (k, v) in m.iter() { acc ^= k + v; }
                    acc
                }
            }
            #[test]
            fn check_digest() {
                let t = Instant::now();
            }
        "#;
        assert!(kinds(src).is_empty());
    }

    #[test]
    fn sink_by_callee_not_just_name() {
        let src = r#"
            fn observe(m: &HashMap<u64, u64>) -> [u8; 16] {
                let mut buf = Vec::new();
                for (k, v) in m.iter() { buf.push((k ^ v) as u8); }
                md5(&buf)
            }
        "#;
        assert_eq!(kinds(src), vec![SourceKind::UnorderedIter]);
    }

    #[test]
    fn local_hashmap_binding_is_resolved() {
        let src = r#"
            fn snapshot_counts(items: &[u64]) -> Vec<u8> {
                let mut m = HashMap::new();
                for x in items { *m.entry(*x).or_insert(0u32) += 1; }
                let mut out = Vec::new();
                for (k, c) in m.iter() { out.push((*k as u8) ^ (*c as u8)); }
                out
            }
        "#;
        assert_eq!(kinds(src), vec![SourceKind::UnorderedIter]);
    }
}
