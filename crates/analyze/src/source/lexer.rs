//! A minimal Rust lexer for the source-level determinism lints.
//!
//! The build environment is fully offline, so the usual `syn`-based route
//! is unavailable; the taint pass needs far less than a full AST anyway —
//! identifiers, punctuation, and line numbers, with comments preserved
//! separately so suppression directives (`// mcfs-lint: allow(...)`) can be
//! matched back to the code they annotate. String/char/lifetime handling is
//! complete enough that no token inside a literal ever leaks into the
//! stream (a `for` inside a string must not start a loop).

/// Token kind. Keywords are plain [`TokKind::Ident`]s — the taint pass
/// matches on spelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`::` arrives as two `:`).
    Punct(char),
    /// Numeric literal.
    Num,
    /// String or byte-string literal (raw forms included).
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(i) if i == s)
    }

    /// Whether this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment with its 1-based line (block comments report their first
/// line). Doc comments are included — a suppression may ride in either.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//`/`/*` framing.
    pub text: String,
}

/// Lexes `src` into a token stream plus the comment list.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line,
                    text: src[start..i].trim_start_matches(['/', '!']).to_string(),
                });
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                i += 2;
                let mut depth = 1;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                comments.push(Comment {
                    line: start_line,
                    text: src[start..end].trim_start_matches(['*', '!']).to_string(),
                });
            }
            '"' => {
                let tok_line = line;
                i = skip_string(bytes, i, &mut line);
                toks.push(Token {
                    kind: TokKind::Str,
                    line: tok_line,
                });
            }
            'r' | 'b' if starts_string_prefix(bytes, i) => {
                let tok_line = line;
                i = skip_prefixed_string(bytes, i, &mut line);
                toks.push(Token {
                    kind: TokKind::Str,
                    line: tok_line,
                });
            }
            '\'' => {
                // Lifetime vs char literal: a lifetime is `'` + ident with no
                // closing quote right after one scalar.
                if is_lifetime(bytes, i) {
                    let mut j = i + 1;
                    while j < bytes.len()
                        && ((bytes[j] as char).is_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    toks.push(Token {
                        kind: TokKind::Lifetime,
                        line,
                    });
                    i = j;
                } else {
                    i = skip_char_literal(bytes, i, &mut line);
                    toks.push(Token {
                        kind: TokKind::Char,
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit))
                {
                    // Stop `1..2` range syntax from eating the second bound.
                    if bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                toks.push(Token {
                    kind: TokKind::Num,
                    line,
                });
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokKind::Ident(src[start..i].to_string()),
                    line,
                });
            }
            c => {
                toks.push(Token {
                    kind: TokKind::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    (toks, comments)
}

/// Whether position `i` (at `r` or `b`) starts a raw/byte string or raw
/// identifier prefix that must be lexed as a literal.
fn starts_string_prefix(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => match bytes.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(bytes.get(i + 2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Skips a `"..."` string starting at `i`, returning the index after it.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'` from `i`.
fn skip_prefixed_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut raw = false;
    if bytes[i] == b'b' {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'r' {
        raw = true;
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'\'' {
        return skip_char_literal(bytes, i, line);
    }
    if raw {
        let mut hashes = 0;
        while i < bytes.len() && bytes[i] == b'#' {
            hashes += 1;
            i += 1;
        }
        i += 1; // opening quote
        while i < bytes.len() {
            if bytes[i] == b'\n' {
                *line += 1;
            }
            if bytes[i] == b'"' {
                let mut j = i + 1;
                let mut seen = 0;
                while seen < hashes && bytes.get(j) == Some(&b'#') {
                    seen += 1;
                    j += 1;
                }
                if seen == hashes {
                    return j;
                }
            }
            i += 1;
        }
        i
    } else {
        skip_string(bytes, i, line)
    }
}

/// Skips a `'x'` / `'\n'` char (or byte) literal from the opening quote.
fn skip_char_literal(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    if i < bytes.len() && bytes[i] == b'\\' {
        i += 2;
    } else if i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
        }
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'\'' {
        i += 1;
    }
    i
}

/// Whether `'` at `i` begins a lifetime rather than a char literal.
fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    let Some(&next) = bytes.get(i + 1) else {
        return false;
    };
    let starts_ident = (next as char).is_alphabetic() || next == b'_';
    if !starts_ident {
        return false;
    }
    // `'a'` is a char literal; `'a` followed by non-quote is a lifetime.
    let mut j = i + 1;
    while j < bytes.len() && ((bytes[j] as char).is_alphanumeric() || bytes[j] == b'_') {
        j += 1;
    }
    bytes.get(j) != Some(&b'\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn identifiers_and_punctuation() {
        let (toks, _) = lex("let x = m.iter();");
        assert!(toks[0].is_ident("let"));
        assert!(toks[1].is_ident("x"));
        assert!(toks[2].is_punct('='));
        assert!(toks[3].is_ident("m"));
        assert!(toks[4].is_punct('.'));
        assert!(toks[5].is_ident("iter"));
    }

    #[test]
    fn strings_and_chars_do_not_leak_tokens() {
        assert_eq!(idents("\"for x in map\""), Vec::<String>::new());
        assert_eq!(idents("r#\"iter() \"quoted\" \"#"), Vec::<String>::new());
        assert_eq!(idents("b\"iter\""), Vec::<String>::new());
        assert_eq!(idents("'f'"), Vec::<String>::new());
        assert_eq!(idents("'\\n'"), Vec::<String>::new());
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) {}");
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(toks.iter().all(|t| t.kind != TokKind::Char));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let (toks, comments) = lex("let a = 1;\n// mcfs-lint: allow(MC007, ok)\nlet b = 2;");
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].line, 2);
        assert!(comments[0].text.contains("mcfs-lint"));
        // Tokens after the comment carry the right line.
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn block_comments_nest_and_track_lines() {
        let (toks, comments) = lex("/* a /* b */ c */ let x\n= 1;");
        assert_eq!(comments.len(), 1);
        assert!(toks[0].is_ident("let"));
        let one = toks.iter().find(|t| t.kind == TokKind::Num).unwrap();
        assert_eq!(one.line, 2);
    }

    #[test]
    fn numbers_including_ranges() {
        let (toks, _) = lex("for i in 0..16 {}");
        let nums: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Num).collect();
        assert_eq!(nums.len(), 2);
    }
}
