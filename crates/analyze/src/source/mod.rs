//! Source-level replay-determinism analysis (`mcfs-lint --source`).
//!
//! The dynamic sanitizers (MC001–MC006) and the MC007 divergence check
//! prove that a *particular* bounded exploration was deterministic; this
//! module statically finds the places where nondeterminism *could* enter:
//! hash-container iteration feeding fingerprints or the pickle wire
//! format, wall-clock reads outside the virtual clock, `RandomState`,
//! raw thread spawns, pointer-identity hashing, and `enumerate()` slot
//! indices leaking into digests (the PR 6 inode-keyed residue-digest bug
//! class).
//!
//! Intentional uses stay auditable through suppressions:
//!
//! ```text
//! // mcfs-lint: allow(MC007, joins are deterministic barriers)
//! std::thread::scope(|s| { ... })
//! ```
//!
//! A suppression comment matches on the same line, the line directly
//! above, or (within a few lines) above the enclosing `fn` declaration to
//! cover the whole function. `// mcfs-lint: allow-file(MC007, reason)`
//! suppresses a whole file. Suppressed findings are still reported (and
//! land in SARIF `suppressions` records) — they just don't gate.

pub mod lexer;
pub mod taint;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use lexer::Comment;
pub use taint::SourceKind;

/// Options for a source scan.
#[derive(Debug, Clone)]
pub struct SourceOptions {
    /// Workspace root (the directory holding the top-level `Cargo.toml`).
    pub root: PathBuf,
    /// Crate directory names under `crates/` to skip entirely. Defaults to
    /// the vendored dependency shims (whose internals we don't control)
    /// and `bench` (wall-clock timing is its job).
    pub skip_crates: Vec<String>,
}

impl SourceOptions {
    /// Default options rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        SourceOptions {
            root: root.into(),
            skip_crates: ["rand", "proptest", "criterion", "parking_lot", "bench"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }
}

/// A parsed `// mcfs-lint: allow(...)` directive.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line of the comment.
    pub line: u32,
    /// Lint code the directive names (e.g. `MC007`).
    pub code: String,
    /// Free-form justification (may be empty, but shouldn't be).
    pub reason: String,
    /// Whether this is an `allow-file` directive.
    pub file_level: bool,
}

/// One source-analysis finding with suppression state resolved.
#[derive(Debug, Clone)]
pub struct SourceFinding {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which source pattern fired.
    pub kind: SourceKind,
    /// Enclosing function (empty at module scope).
    pub func: String,
    /// Human-readable description.
    pub message: String,
    /// Justification from the matching suppression, if any.
    pub suppressed: Option<String>,
}

/// Result of scanning a workspace.
#[derive(Debug, Clone, Default)]
pub struct SourceReport {
    /// All findings, suppressed ones included, sorted by (file, line, kind).
    pub findings: Vec<SourceFinding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Total suppression directives seen.
    pub suppressions_seen: usize,
}

impl SourceReport {
    /// Findings not covered by a suppression — these gate.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &SourceFinding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// Whether any unsuppressed finding exists.
    pub fn has_findings(&self) -> bool {
        self.unsuppressed().next().is_some()
    }
}

/// Parses a suppression directive out of a comment, if present.
pub fn parse_suppression(c: &Comment) -> Option<Suppression> {
    let t = c.text.trim();
    let rest = t.strip_prefix("mcfs-lint:")?.trim_start();
    let (file_level, rest) = match rest.strip_prefix("allow-file(") {
        Some(r) => (true, r),
        None => (false, rest.strip_prefix("allow(")?),
    };
    let body = rest.split(')').next()?;
    let (code, reason) = match body.split_once(',') {
        Some((c, r)) => (c.trim(), r.trim()),
        None => (body.trim(), ""),
    };
    if code.is_empty() {
        return None;
    }
    Some(Suppression {
        line: c.line,
        code: code.to_ascii_uppercase(),
        reason: reason.to_string(),
        file_level,
    })
}

/// Scans one file's source text: taint findings with suppressions applied.
/// `rel` is the path recorded on findings. Returns the findings plus the
/// number of suppression directives seen.
pub fn scan_source(rel: &str, src: &str, code: &str) -> (Vec<SourceFinding>, usize) {
    let (toks, comments) = lexer::lex(src);
    let raw = taint::scan_tokens(&toks);
    let sups: Vec<Suppression> = comments.iter().filter_map(parse_suppression).collect();
    let findings = raw
        .into_iter()
        .map(|r| {
            let suppressed = sups
                .iter()
                .filter(|s| s.code == code)
                .find(|s| {
                    s.file_level
                        || s.line == r.line
                        || s.line + 1 == r.line
                        || (s.line <= r.fn_decl_line && s.line + 4 > r.fn_decl_line)
                })
                .map(|s| {
                    if s.reason.is_empty() {
                        "(no reason given)".to_string()
                    } else {
                        s.reason.clone()
                    }
                });
            SourceFinding {
                file: rel.to_string(),
                line: r.line,
                kind: r.kind,
                func: r.func,
                message: r.message,
                suppressed,
            }
        })
        .collect();
    (findings, sups.len())
}

/// Runs the analyzer over every first-party crate under `opts.root`.
pub fn run_source(opts: &SourceOptions) -> std::io::Result<SourceReport> {
    let mut files: BTreeSet<PathBuf> = BTreeSet::new();
    let root_src = opts.root.join("src");
    if root_src.is_dir() {
        collect_rs_files(&root_src, &mut files)?;
    }
    let crates_dir = opts.root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for krate in entries {
            let name = krate
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if opts.skip_crates.iter().any(|s| s == name) {
                continue;
            }
            let src = krate.join("src");
            if src.is_dir() {
                collect_rs_files(&src, &mut files)?;
            }
        }
    }
    let mut report = SourceReport::default();
    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(&opts.root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let (findings, sups) = scan_source(&rel, &src, "MC007");
        report.findings.extend(findings);
        report.suppressions_seen += sups;
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.kind).cmp(&(&b.file, b.line, b.kind)));
    Ok(report)
}

/// Recursively collects `.rs` files, skipping test/bench/example trees.
fn collect_rs_files(dir: &Path, out: &mut BTreeSet<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if matches!(name, "tests" | "benches" | "examples") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.insert(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_parses_code_and_reason() {
        let c = Comment {
            line: 7,
            text: " mcfs-lint: allow(MC007, joins are deterministic)".to_string(),
        };
        let s = parse_suppression(&c).unwrap();
        assert_eq!(s.code, "MC007");
        assert_eq!(s.reason, "joins are deterministic");
        assert!(!s.file_level);
        assert_eq!(s.line, 7);
    }

    #[test]
    fn file_level_suppression_parses() {
        let c = Comment {
            line: 1,
            text: " mcfs-lint: allow-file(mc007, generated)".to_string(),
        };
        let s = parse_suppression(&c).unwrap();
        assert!(s.file_level);
        assert_eq!(s.code, "MC007");
    }

    #[test]
    fn ordinary_comments_are_not_suppressions() {
        for text in [
            " just a comment",
            " mcfs-lint: deny(MC007)",
            " allow(MC007)",
        ] {
            let c = Comment {
                line: 1,
                text: text.to_string(),
            };
            assert!(parse_suppression(&c).is_none(), "{text}");
        }
    }

    #[test]
    fn same_line_and_line_above_suppressions_apply() {
        let src = r#"
            fn digest(m: &HashMap<u64, u64>) -> u64 {
                let mut acc = 0;
                // mcfs-lint: allow(MC007, xor fold is order-insensitive)
                for (k, v) in m.iter() { acc ^= k ^ v; }
                acc
            }
        "#;
        let (findings, sups) = scan_source("x.rs", src, "MC007");
        assert_eq!(sups, 1);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].suppressed.is_some());
        assert_eq!(
            findings[0].suppressed.as_deref(),
            Some("xor fold is order-insensitive")
        );
    }

    #[test]
    fn fn_level_suppression_covers_whole_body() {
        let src = r#"
            // mcfs-lint: allow(MC007, audited: fold is commutative)
            fn digest(m: &HashMap<u64, u64>) -> u64 {
                let mut acc = 0;
                for (k, v) in m.iter() { acc ^= k ^ v; }
                acc
            }
        "#;
        let (findings, _) = scan_source("x.rs", src, "MC007");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].suppressed.is_some());
    }

    #[test]
    fn unrelated_code_suppression_does_not_apply() {
        let src = r#"
            fn digest(m: &HashMap<u64, u64>) -> u64 {
                let mut acc = 0;
                // mcfs-lint: allow(MC001, wrong code)
                for (k, v) in m.iter() { acc ^= k ^ v; }
                acc
            }
        "#;
        let (findings, _) = scan_source("x.rs", src, "MC007");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].suppressed.is_none());
    }

    #[test]
    fn file_level_suppression_covers_everything() {
        let src = r#"
            // mcfs-lint: allow-file(MC007, fixture)
            fn digest(m: &HashMap<u64, u64>) -> u64 {
                let t = Instant::now();
                let mut acc = 0;
                for (k, v) in m.iter() { acc ^= k ^ v; }
                acc
            }
        "#;
        let (findings, _) = scan_source("x.rs", src, "MC007");
        assert!(findings.len() >= 2);
        assert!(findings.iter().all(|f| f.suppressed.is_some()));
    }

    /// The workspace itself must lint clean: every remaining finding is an
    /// audited in-source suppression. This is the same gate CI runs via
    /// `mcfs-lint --source`, kept in tier-1 so a nondeterminism regression
    /// fails `cargo test` even before the lint job runs.
    #[test]
    fn workspace_is_clean_under_source_analysis() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..");
        let report = run_source(&SourceOptions::new(&root)).expect("workspace scan");
        assert!(report.files_scanned > 30, "scan found the workspace");
        let unsuppressed: Vec<_> = report.unsuppressed().collect();
        assert!(
            unsuppressed.is_empty(),
            "unsuppressed nondeterminism findings in the workspace: {unsuppressed:#?}"
        );
        assert!(
            report.findings.iter().any(|f| f.suppressed.is_some()),
            "the audited suppression baseline should be visible to the scan"
        );
    }
}
