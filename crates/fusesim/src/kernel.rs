//! The kernel side of the FUSE connection: dentry/attribute caches and the
//! request dispatcher.
//!
//! [`FuseMount`] implements [`vfs::FileSystem`] the way the kernel's FUSE
//! client does: path components are resolved through a dentry cache (with
//! negative entries), attributes are served from an attribute cache while
//! their TTL lasts, and everything else becomes messages to the user-space
//! daemon. These caches are exactly the state that went stale in paper §6
//! bug 2: after VeriFS rolled back, the kernel kept answering from entries
//! describing the discarded future until VeriFS learned to call the
//! `fuse_lowlevel_notify_inval_*` APIs — here, [`vfs::InvalidationSink`]
//! implemented by [`FuseConn`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use blockdev::Clock;
use vfs::{
    path, AccessMode, DirEntry, Errno, Fd, FileMode, FileStat, FileSystem, FsCapabilities,
    FsCheckpoint, Ino, InvalidationSink, OpenFlags, StatFs, VfsResult, XattrFlags,
};

use crate::daemon::FuseDaemon;
use crate::proto::FuseOpKind;

/// Never-expiring TTL sentinel.
const NO_EXPIRY: u64 = u64::MAX;

/// Tuning for the kernel-side caches and the message channel.
#[derive(Debug, Clone, Copy)]
pub struct FuseConfig {
    /// Dentry (entry) cache TTL in virtual nanoseconds (`u64::MAX` = none).
    pub entry_ttl_ns: u64,
    /// Attribute cache TTL in virtual nanoseconds.
    pub attr_ttl_ns: u64,
    /// Virtual-time cost of one kernel↔daemon round trip.
    pub message_cost_ns: u64,
    /// Propagate *kernel-local* cache maintenance (the dentry/attr drops a
    /// thread performs as part of its own rename/unlink/write) to every
    /// thread's cache view, not just the acting thread's. **On** is correct
    /// kernel behavior. Off reproduces a real FUSE multi-queue bug class:
    /// another thread keeps serving a renamed-away dentry and its stale
    /// attributes from its own view until the TTL expires.
    pub broadcast_local_invalidation: bool,
}

impl Default for FuseConfig {
    fn default() -> Self {
        // libfuse defaults: 1 second entry/attr timeouts; a FUSE round trip
        // costs ~20 µs (two context switches plus request/reply copies).
        FuseConfig {
            entry_ttl_ns: 1_000_000_000,
            attr_ttl_ns: 1_000_000_000,
            message_cost_ns: 34_000,
            broadcast_local_invalidation: true,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Timed<T> {
    value: T,
    expires_ns: u64,
}

/// Kernel cache state shared between the mount and the invalidation
/// connection.
#[derive(Debug, Default)]
struct KernelCaches {
    /// `(parent ino, name) -> Some(child ino)` or `None` (negative dentry).
    dentries: HashMap<(u64, String), Timed<Option<u64>>>,
    attrs: HashMap<u64, Timed<FileStat>>,
    invalidations: u64,
}

impl KernelCaches {
    fn clear(&mut self) {
        self.invalidations += (self.dentries.len() + self.attrs.len()) as u64;
        self.dentries.clear();
        self.attrs.clear();
    }
}

/// Per-thread views of the kernel caches. A single-threaded mount has one
/// view and behaves exactly as before; interleaved workloads
/// ([`FileSystem::set_active_thread`]) get one view per logical thread,
/// modelling per-queue cached state in a multi-queue FUSE connection.
/// Daemon-initiated invalidations (the [`InvalidationSink`]) always reach
/// every view; thread-local maintenance broadcasts only when
/// [`FuseConfig::broadcast_local_invalidation`] is on.
#[derive(Debug)]
struct CacheTable {
    views: Vec<KernelCaches>,
    active: usize,
}

impl Default for CacheTable {
    fn default() -> Self {
        CacheTable {
            views: vec![KernelCaches::default()],
            active: 0,
        }
    }
}

impl CacheTable {
    fn active(&self) -> &KernelCaches {
        &self.views[self.active]
    }

    fn clear_all(&mut self) {
        for v in &mut self.views {
            v.clear();
        }
    }
}

/// The invalidation side of a FUSE connection — hand this to the user-space
/// file system as its [`InvalidationSink`] so restores can invalidate the
/// kernel caches (the fix for paper bug 2).
#[derive(Debug, Clone)]
pub struct FuseConn {
    caches: Arc<Mutex<CacheTable>>,
}

impl InvalidationSink for FuseConn {
    fn invalidate_entry(&self, parent: u64, name: &str) {
        let mut c = self.caches.lock().expect("cache lock poisoned");
        for v in &mut c.views {
            if v.dentries.remove(&(parent, name.to_string())).is_some() {
                v.invalidations += 1;
            }
        }
    }

    fn invalidate_inode(&self, ino: u64) {
        let mut c = self.caches.lock().expect("cache lock poisoned");
        for v in &mut c.views {
            if v.attrs.remove(&ino).is_some() {
                v.invalidations += 1;
            }
            let before = v.dentries.len();
            v.dentries
                .retain(|(parent, _), child| *parent != ino && child.value != Some(ino));
            let removed = before - v.dentries.len();
            v.invalidations += removed as u64;
        }
    }

    fn invalidate_all(&self) {
        self.caches.lock().expect("cache lock poisoned").clear_all();
    }
}

/// A FUSE mount of the user-space file system `F`.
///
/// Implements [`FileSystem`] with kernel-side caching in front of the daemon.
///
/// # Examples
///
/// ```
/// use fusesim::FuseMount;
/// use verifs::VeriFs;
/// use vfs::{FileSystem, FileMode};
///
/// # fn main() -> vfs::VfsResult<()> {
/// let mut mount = FuseMount::new(VeriFs::v1());
/// // Wire the invalidation connection so restores reach the kernel caches.
/// let conn = mount.connection();
/// mount.daemon_mut().fs_mut().set_invalidation_sink(std::sync::Arc::new(conn));
/// mount.mount()?;
/// let fd = mount.create("/f", FileMode::REG_DEFAULT)?;
/// mount.write(fd, b"via fuse")?;
/// mount.close(fd)?;
/// assert_eq!(mount.stat("/f")?.size, 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FuseMount<F> {
    daemon: FuseDaemon<F>,
    caches: Arc<Mutex<CacheTable>>,
    clock: Option<Clock>,
    config: FuseConfig,
    /// Kernel-side map from open descriptor to inode (the kernel always
    /// knows the inode behind an open file).
    fd_inos: HashMap<Fd, u64>,
    name: String,
    mounted: bool,
}

impl<F: FileSystem> FuseMount<F> {
    /// Mounts `fs` through a simulated FUSE connection with default tuning.
    pub fn new(fs: F) -> Self {
        FuseMount::with_config(fs, FuseConfig::default(), None)
    }

    /// Mounts `fs` with explicit tuning and an optional virtual clock for
    /// message-cost accounting and TTL expiry.
    pub fn with_config(fs: F, config: FuseConfig, clock: Option<Clock>) -> Self {
        let name = format!("fuse-{}", fs.fs_name());
        FuseMount {
            daemon: FuseDaemon::new(fs),
            caches: Arc::new(Mutex::new(CacheTable::default())),
            clock,
            config,
            fd_inos: HashMap::new(),
            name,
            mounted: false,
        }
    }

    /// The invalidation connection for this mount. Pass it (wrapped in an
    /// `Arc`) to the user-space file system as its [`InvalidationSink`].
    pub fn connection(&self) -> FuseConn {
        FuseConn {
            caches: Arc::clone(&self.caches),
        }
    }

    /// The daemon process behind this mount.
    pub fn daemon(&self) -> &FuseDaemon<F> {
        &self.daemon
    }

    /// Mutable access to the daemon process.
    pub fn daemon_mut(&mut self) -> &mut FuseDaemon<F> {
        &mut self.daemon
    }

    /// Number of cache entries invalidated so far (for tests and reports).
    pub fn invalidation_count(&self) -> u64 {
        let c = self.caches.lock().expect("cache lock poisoned");
        c.views.iter().map(|v| v.invalidations).sum()
    }

    /// Number of live dentry-cache entries in the active thread's view.
    pub fn dentry_cache_len(&self) -> usize {
        self.caches
            .lock()
            .expect("cache lock poisoned")
            .active()
            .dentries
            .len()
    }

    fn now(&self) -> u64 {
        self.clock.as_ref().map(Clock::now_ns).unwrap_or(0)
    }

    fn expiry(&self, ttl: u64) -> u64 {
        if ttl == NO_EXPIRY || self.clock.is_none() {
            NO_EXPIRY
        } else {
            self.now().saturating_add(ttl)
        }
    }

    /// Sends one message to the daemon, charging the round-trip cost.
    fn send<R>(&mut self, kind: FuseOpKind, op: impl FnOnce(&mut F) -> R) -> R {
        if let Some(clock) = &self.clock {
            clock.advance_ns(self.config.message_cost_ns);
        }
        self.daemon.handle(kind, op)
    }

    fn cache_dentry(&mut self, parent: u64, name: &str, child: Option<u64>) {
        let expires_ns = self.expiry(self.config.entry_ttl_ns);
        let broadcast = self.config.broadcast_local_invalidation;
        let mut c = self.caches.lock().expect("cache lock poisoned");
        let active = c.active;
        if broadcast {
            // Other threads' views must not keep a now-superseded entry;
            // they refetch on their next lookup.
            for (i, v) in c.views.iter_mut().enumerate() {
                if i != active {
                    v.dentries.remove(&(parent, name.to_string()));
                }
            }
        }
        c.views[active].dentries.insert(
            (parent, name.to_string()),
            Timed {
                value: child,
                expires_ns,
            },
        );
    }

    fn cache_attr(&mut self, stat: FileStat) {
        let expires_ns = self.expiry(self.config.attr_ttl_ns);
        let broadcast = self.config.broadcast_local_invalidation;
        let mut c = self.caches.lock().expect("cache lock poisoned");
        let active = c.active;
        if broadcast {
            for (i, v) in c.views.iter_mut().enumerate() {
                if i != active {
                    v.attrs.remove(&stat.ino.0);
                }
            }
        }
        c.views[active].attrs.insert(
            stat.ino.0,
            Timed {
                value: stat,
                expires_ns,
            },
        );
    }

    fn cached_dentry(&self, parent: u64, name: &str) -> Option<Option<u64>> {
        let now = self.now();
        let c = self.caches.lock().expect("cache lock poisoned");
        c.active()
            .dentries
            .get(&(parent, name.to_string()))
            .filter(|t| t.expires_ns > now)
            .map(|t| t.value)
    }

    fn cached_attr(&self, ino: u64) -> Option<FileStat> {
        let now = self.now();
        let c = self.caches.lock().expect("cache lock poisoned");
        c.active()
            .attrs
            .get(&ino)
            .filter(|t| t.expires_ns > now)
            .map(|t| t.value)
    }

    fn drop_attr(&mut self, ino: u64) {
        let broadcast = self.config.broadcast_local_invalidation;
        let mut c = self.caches.lock().expect("cache lock poisoned");
        if broadcast {
            for v in &mut c.views {
                v.attrs.remove(&ino);
            }
        } else {
            let active = c.active;
            c.views[active].attrs.remove(&ino);
        }
    }

    fn drop_dentry(&mut self, parent: u64, name: &str) {
        let broadcast = self.config.broadcast_local_invalidation;
        let mut c = self.caches.lock().expect("cache lock poisoned");
        if broadcast {
            for v in &mut c.views {
                v.dentries.remove(&(parent, name.to_string()));
            }
        } else {
            let active = c.active;
            c.views[active].dentries.remove(&(parent, name.to_string()));
        }
    }

    /// Resolves a validated path to an inode through the dentry cache,
    /// issuing `Lookup` messages on misses.
    fn resolve(&mut self, p: &str) -> VfsResult<u64> {
        path::validate(p)?;
        let mut cur = Ino::ROOT.0;
        let mut prefix = String::from("");
        for comp in path::components(p) {
            prefix.push('/');
            prefix.push_str(comp);
            match self.cached_dentry(cur, comp) {
                Some(Some(child)) => cur = child,
                Some(None) => return Err(Errno::ENOENT),
                None => {
                    let lookup_path = prefix.clone();
                    let res = self.send(FuseOpKind::Lookup, |fs| fs.stat(&lookup_path));
                    match res {
                        Ok(st) => {
                            self.cache_dentry(cur, comp, Some(st.ino.0));
                            self.cache_attr(st);
                            cur = st.ino.0;
                        }
                        Err(Errno::ENOENT) => {
                            self.cache_dentry(cur, comp, None);
                            return Err(Errno::ENOENT);
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        Ok(cur)
    }

    /// Resolves the parent of `p`, returning `(parent ino, name)`.
    fn resolve_parent<'p>(&mut self, p: &'p str) -> VfsResult<(u64, &'p str)> {
        path::validate(p)?;
        let (parent, name) = path::split_parent(p)?;
        let parent_ino = self.resolve(&parent)?;
        Ok((parent_ino, name))
    }
}

impl<F: FileSystem> FileSystem for FuseMount<F> {
    fn fs_name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> FsCapabilities {
        self.daemon.fs().capabilities()
    }

    fn mount(&mut self) -> VfsResult<()> {
        if self.mounted {
            return Err(Errno::EBUSY);
        }
        self.daemon.fs_mut().mount()?;
        self.caches.lock().expect("cache lock poisoned").clear_all();
        self.mounted = true;
        Ok(())
    }

    fn unmount(&mut self) -> VfsResult<()> {
        if !self.mounted {
            return Err(Errno::ENODEV);
        }
        self.daemon.fs_mut().unmount()?;
        // Unmount drops every kernel cache — the paper's only reliable way
        // to clear kernel state (§3.2).
        self.caches.lock().expect("cache lock poisoned").clear_all();
        self.fd_inos.clear();
        self.mounted = false;
        Ok(())
    }

    fn is_mounted(&self) -> bool {
        self.mounted
    }

    fn sync(&mut self) -> VfsResult<()> {
        self.send(FuseOpKind::Fsync, |fs| fs.sync())
    }

    fn statfs(&self) -> VfsResult<StatFs> {
        // statfs is read-only; route without the mutable send helper.
        self.daemon.fs().statfs()
    }

    fn opaque_state_digest(&self) -> Option<u128> {
        // Hidden residue lives in the wrapped daemon's state; the FUSE
        // layer adds caches on top (reported via `caches_metadata`).
        let inner = self.daemon.fs().opaque_state_digest();
        let c = self.caches.lock().expect("cache lock poisoned");
        if c.views.len() <= 1 {
            // Single-view (sequential) mounts keep their historical
            // fingerprints; the cache contents are observable via the ops
            // themselves there.
            return inner;
        }
        // Interleaved mounts: two states whose views cache different
        // (possibly stale) values behave differently on future lookups and
        // must not be matched away. Values only — expiry timestamps depend
        // on accumulated message costs, which the lanes already keep
        // schedule-independent.
        let mut acc = inner.unwrap_or(0);
        for (i, v) in c.views.iter().enumerate() {
            let mut entries: Vec<String> = v
                .dentries
                .iter()
                .map(|((parent, name), t)| format!("d{parent}/{name}={:?}", t.value))
                .collect();
            entries.extend(
                v.attrs
                    // mcfs-lint: allow(MC007, extended into `entries`, which is sorted before hashing)
                    .iter()
                    .map(|(ino, t)| format!("a{ino}={:?}", t.value)),
            );
            entries.sort();
            let blob = format!("fuse-view{i}:{}", entries.join(";"));
            acc ^= mdigest::md5(blob.as_bytes()).as_u128();
        }
        Some(acc)
    }

    fn set_active_thread(&mut self, tid: u16) {
        let mut c = self.caches.lock().expect("cache lock poisoned");
        let idx = tid as usize;
        while c.views.len() <= idx {
            c.views.push(KernelCaches::default());
        }
        c.active = idx;
    }

    fn caches_metadata(&self) -> bool {
        // Lookups and stats fill the kernel dentry/attr caches: nominally
        // read-only operations mutate kernel state behind this mount.
        true
    }

    fn create(&mut self, p: &str, mode: FileMode) -> VfsResult<Fd> {
        let (parent, name) = self.resolve_parent(p)?;
        // A live positive dentry answers EEXIST from the kernel alone —
        // this is the path that goes wrong when the cache is stale.
        if let Some(Some(_)) = self.cached_dentry(parent, name) {
            return Err(Errno::EEXIST);
        }
        let path_owned = p.to_string();
        let res = self.send(FuseOpKind::Create, |fs| {
            let fd = fs.create(&path_owned, mode)?;
            let st = fs.stat(&path_owned)?;
            Ok((fd, st))
        });
        let (fd, st) = res?;
        self.cache_dentry(parent, name, Some(st.ino.0));
        self.cache_attr(st);
        self.fd_inos.insert(fd, st.ino.0);
        Ok(fd)
    }

    fn open(&mut self, p: &str, flags: OpenFlags, mode: FileMode) -> VfsResult<Fd> {
        path::validate(p)?;
        if !path::is_root(p) {
            let (parent, name) = self.resolve_parent(p)?;
            match self.cached_dentry(parent, name) {
                Some(Some(_)) if flags.create && flags.excl => return Err(Errno::EEXIST),
                Some(None) if !flags.create => return Err(Errno::ENOENT),
                _ => {}
            }
        }
        let path_owned = p.to_string();
        let res = self.send(FuseOpKind::Open, |fs| {
            let fd = fs.open(&path_owned, flags, mode)?;
            let st = fs.stat(&path_owned)?;
            Ok((fd, st))
        });
        let (fd, st) = res?;
        if !path::is_root(p) {
            let (parent, name) = path::split_parent(p)?;
            let parent_ino = self.resolve(&parent)?;
            self.cache_dentry(parent_ino, name, Some(st.ino.0));
        }
        self.cache_attr(st);
        self.fd_inos.insert(fd, st.ino.0);
        Ok(fd)
    }

    fn close(&mut self, fd: Fd) -> VfsResult<()> {
        let res = self.send(FuseOpKind::Release, |fs| fs.close(fd));
        self.fd_inos.remove(&fd);
        res
    }

    fn read(&mut self, fd: Fd, buf: &mut [u8]) -> VfsResult<usize> {
        self.send(FuseOpKind::Read, |fs| fs.read(fd, buf))
    }

    fn write(&mut self, fd: Fd, data: &[u8]) -> VfsResult<usize> {
        let res = self.send(FuseOpKind::Write, |fs| fs.write(fd, data));
        if res.is_ok() {
            if let Some(&ino) = self.fd_inos.get(&fd) {
                self.drop_attr(ino); // size/mtime changed
            }
        }
        res
    }

    fn lseek(&mut self, fd: Fd, offset: u64) -> VfsResult<u64> {
        self.send(FuseOpKind::Lseek, |fs| fs.lseek(fd, offset))
    }

    fn truncate(&mut self, p: &str, size: u64) -> VfsResult<()> {
        let ino = self.resolve(p)?;
        let path_owned = p.to_string();
        let res = self.send(FuseOpKind::Setattr, |fs| fs.truncate(&path_owned, size));
        if res.is_ok() {
            self.drop_attr(ino);
        }
        res
    }

    fn mkdir(&mut self, p: &str, mode: FileMode) -> VfsResult<()> {
        let (parent, name) = self.resolve_parent(p)?;
        if let Some(Some(_)) = self.cached_dentry(parent, name) {
            // Stale positive dentry ⇒ the kernel claims the directory exists
            // even when the daemon's state says otherwise (paper bug 2's
            // observable symptom).
            return Err(Errno::EEXIST);
        }
        let path_owned = p.to_string();
        let res = self.send(FuseOpKind::Mkdir, |fs| {
            fs.mkdir(&path_owned, mode)?;
            fs.stat(&path_owned)
        });
        let st = res?;
        self.cache_dentry(parent, name, Some(st.ino.0));
        self.cache_attr(st);
        Ok(())
    }

    fn rmdir(&mut self, p: &str) -> VfsResult<()> {
        let (parent, name) = self.resolve_parent(p)?;
        if let Some(None) = self.cached_dentry(parent, name) {
            return Err(Errno::ENOENT);
        }
        let removed_ino = self.cached_dentry(parent, name).flatten();
        let path_owned = p.to_string();
        let res = self.send(FuseOpKind::Rmdir, |fs| fs.rmdir(&path_owned));
        if res.is_ok() {
            self.cache_dentry(parent, name, None);
            if let Some(ino) = removed_ino {
                self.drop_attr(ino);
            }
        }
        res
    }

    fn unlink(&mut self, p: &str) -> VfsResult<()> {
        let (parent, name) = self.resolve_parent(p)?;
        if let Some(None) = self.cached_dentry(parent, name) {
            return Err(Errno::ENOENT);
        }
        let removed_ino = self.cached_dentry(parent, name).flatten();
        let path_owned = p.to_string();
        let res = self.send(FuseOpKind::Unlink, |fs| fs.unlink(&path_owned));
        if res.is_ok() {
            self.cache_dentry(parent, name, None);
            if let Some(ino) = removed_ino {
                self.drop_attr(ino);
            }
        }
        res
    }

    fn stat(&mut self, p: &str) -> VfsResult<FileStat> {
        let ino = self.resolve(p)?;
        if let Some(st) = self.cached_attr(ino) {
            return Ok(st);
        }
        let path_owned = p.to_string();
        let st = self.send(FuseOpKind::Getattr, |fs| fs.stat(&path_owned))?;
        self.cache_attr(st);
        Ok(st)
    }

    fn getdents(&mut self, p: &str) -> VfsResult<Vec<DirEntry>> {
        let dir_ino = self.resolve(p)?;
        let path_owned = p.to_string();
        let entries = self.send(FuseOpKind::Readdir, |fs| fs.getdents(&path_owned))?;
        // readdirplus: listing a directory primes the dentry cache.
        for e in &entries {
            self.cache_dentry(dir_ino, &e.name, Some(e.ino.0));
        }
        Ok(entries)
    }

    fn chmod(&mut self, p: &str, mode: FileMode) -> VfsResult<()> {
        let ino = self.resolve(p)?;
        let path_owned = p.to_string();
        let res = self.send(FuseOpKind::Setattr, |fs| fs.chmod(&path_owned, mode));
        if res.is_ok() {
            self.drop_attr(ino);
        }
        res
    }

    fn chown(&mut self, p: &str, uid: u32, gid: u32) -> VfsResult<()> {
        let ino = self.resolve(p)?;
        let path_owned = p.to_string();
        let res = self.send(FuseOpKind::Setattr, |fs| fs.chown(&path_owned, uid, gid));
        if res.is_ok() {
            self.drop_attr(ino);
        }
        res
    }

    fn utimens(&mut self, p: &str, atime: u64, mtime: u64) -> VfsResult<()> {
        let ino = self.resolve(p)?;
        let path_owned = p.to_string();
        let res = self.send(FuseOpKind::Setattr, |fs| {
            fs.utimens(&path_owned, atime, mtime)
        });
        if res.is_ok() {
            self.drop_attr(ino);
        }
        res
    }

    fn fsync(&mut self, fd: Fd) -> VfsResult<()> {
        self.send(FuseOpKind::Fsync, |fs| fs.fsync(fd))
    }

    fn rename(&mut self, src: &str, dst: &str) -> VfsResult<()> {
        let (sparent, sname) = self.resolve_parent(src)?;
        let (dparent, dname) = self.resolve_parent(dst)?;
        // A rename over an existing destination unlinks that inode: its
        // cached attributes must go too, or a later stat through another
        // link serves the pre-unlink nlink. Snapshot the target before the
        // daemon replaces it.
        let replaced = match self.cached_dentry(dparent, dname) {
            Some(existing) => existing,
            None => self.resolve(dst).ok(),
        };
        let src_owned = src.to_string();
        let dst_owned = dst.to_string();
        let res = self.send(FuseOpKind::Rename, |fs| fs.rename(&src_owned, &dst_owned));
        if res.is_ok() {
            // The kernel drops both dentries; the next lookup refetches.
            self.drop_dentry(sparent, sname);
            self.drop_dentry(dparent, dname);
            if let Some(ino) = replaced {
                self.drop_attr(ino);
            }
        }
        res
    }

    fn link(&mut self, existing: &str, new: &str) -> VfsResult<()> {
        let src_ino = self.resolve(existing)?;
        let (nparent, nname) = self.resolve_parent(new)?;
        let ex_owned = existing.to_string();
        let new_owned = new.to_string();
        let res = self.send(FuseOpKind::Link, |fs| fs.link(&ex_owned, &new_owned));
        if res.is_ok() {
            self.cache_dentry(nparent, nname, Some(src_ino));
            self.drop_attr(src_ino); // nlink changed
        }
        res
    }

    fn symlink(&mut self, target: &str, linkpath: &str) -> VfsResult<()> {
        let (parent, name) = self.resolve_parent(linkpath)?;
        let t_owned = target.to_string();
        let l_owned = linkpath.to_string();
        let res = self.send(FuseOpKind::Symlink, |fs| {
            fs.symlink(&t_owned, &l_owned)?;
            fs.stat(&l_owned)
        });
        let st = res?;
        self.cache_dentry(parent, name, Some(st.ino.0));
        self.cache_attr(st);
        Ok(())
    }

    fn readlink(&mut self, p: &str) -> VfsResult<String> {
        let path_owned = p.to_string();
        self.send(FuseOpKind::Readlink, |fs| fs.readlink(&path_owned))
    }

    fn access(&mut self, p: &str, mode: AccessMode) -> VfsResult<()> {
        let path_owned = p.to_string();
        self.send(FuseOpKind::Access, |fs| fs.access(&path_owned, mode))
    }

    fn setxattr(&mut self, p: &str, name: &str, value: &[u8], flags: XattrFlags) -> VfsResult<()> {
        let (p, n, v) = (p.to_string(), name.to_string(), value.to_vec());
        self.send(FuseOpKind::Xattr, |fs| fs.setxattr(&p, &n, &v, flags))
    }

    fn getxattr(&mut self, p: &str, name: &str) -> VfsResult<Vec<u8>> {
        let (p, n) = (p.to_string(), name.to_string());
        self.send(FuseOpKind::Xattr, |fs| fs.getxattr(&p, &n))
    }

    fn listxattr(&mut self, p: &str) -> VfsResult<Vec<String>> {
        let p = p.to_string();
        self.send(FuseOpKind::Xattr, |fs| fs.listxattr(&p))
    }

    fn removexattr(&mut self, p: &str, name: &str) -> VfsResult<()> {
        let (p, n) = (p.to_string(), name.to_string());
        self.send(FuseOpKind::Xattr, |fs| fs.removexattr(&p, &n))
    }
}

impl<F: FileSystem + FsCheckpoint> FsCheckpoint for FuseMount<F> {
    fn checkpoint(&mut self, key: u64) -> VfsResult<()> {
        self.send(FuseOpKind::Ioctl, |fs| fs.checkpoint(key))
    }

    fn restore(&mut self, key: u64) -> VfsResult<()> {
        // The daemon restores and (if wired and not buggy) fires the
        // invalidation connection, which clears our shared caches.
        self.send(FuseOpKind::Ioctl, |fs| fs.restore(key))
    }

    fn restore_keep(&mut self, key: u64) -> VfsResult<()> {
        self.send(FuseOpKind::Ioctl, |fs| fs.restore_keep(key))
    }

    fn discard(&mut self, key: u64) -> VfsResult<()> {
        self.send(FuseOpKind::Ioctl, |fs| fs.discard(key))
    }

    fn snapshot_count(&self) -> usize {
        self.daemon.fs().snapshot_count()
    }

    fn snapshot_bytes(&self) -> usize {
        self.daemon.fs().snapshot_bytes()
    }

    fn snapshot_resident_bytes(&self) -> usize {
        self.daemon.fs().snapshot_resident_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use verifs::{BugConfig, VeriFs};

    fn mount_verifs(fs: VeriFs) -> FuseMount<VeriFs> {
        let mut m = FuseMount::new(fs);
        let conn = m.connection();
        m.daemon_mut()
            .fs_mut()
            .set_invalidation_sink(Arc::new(conn));
        m.mount().unwrap();
        m
    }

    #[test]
    fn basic_ops_through_fuse() {
        let mut m = mount_verifs(VeriFs::v2());
        let fd = m.create("/f", FileMode::REG_DEFAULT).unwrap();
        m.write(fd, b"abc").unwrap();
        m.close(fd).unwrap();
        assert_eq!(m.stat("/f").unwrap().size, 3);
        m.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        let names: Vec<_> = m
            .getdents("/")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["d", "f"]);
        assert!(m.daemon().traffic().total() > 0);
    }

    #[test]
    fn dentry_cache_answers_eexist_without_daemon() {
        let mut m = mount_verifs(VeriFs::v2());
        m.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        let mkdir_msgs_before = m.daemon().traffic().count(FuseOpKind::Mkdir);
        assert_eq!(m.mkdir("/d", FileMode::DIR_DEFAULT), Err(Errno::EEXIST));
        assert_eq!(
            m.daemon().traffic().count(FuseOpKind::Mkdir),
            mkdir_msgs_before,
            "EEXIST must be answered from the kernel dentry cache"
        );
    }

    #[test]
    fn negative_dentry_short_circuits_enoent() {
        let mut m = mount_verifs(VeriFs::v2());
        assert_eq!(m.stat("/missing"), Err(Errno::ENOENT));
        let lookups_before = m.daemon().traffic().count(FuseOpKind::Lookup);
        assert_eq!(m.unlink("/missing"), Err(Errno::ENOENT));
        assert_eq!(
            m.daemon().traffic().count(FuseOpKind::Lookup),
            lookups_before,
            "negative dentry must answer without a lookup message"
        );
    }

    #[test]
    fn attr_cache_serves_stat_without_daemon() {
        let mut m = mount_verifs(VeriFs::v2());
        let fd = m.create("/f", FileMode::REG_DEFAULT).unwrap();
        m.close(fd).unwrap();
        m.stat("/f").unwrap();
        let getattrs = m.daemon().traffic().count(FuseOpKind::Getattr);
        m.stat("/f").unwrap();
        m.stat("/f").unwrap();
        assert_eq!(m.daemon().traffic().count(FuseOpKind::Getattr), getattrs);
    }

    #[test]
    fn bug2_stale_dentry_after_restore_without_invalidation() {
        // The end-to-end reproduction of paper bug 2. With the historical
        // bug enabled, restore skips kernel-cache invalidation, so a
        // directory created *after* the checkpoint still has a positive
        // dentry after rollback — and mkdir wrongly reports EEXIST.
        let run = |bugs: BugConfig| {
            let mut m = mount_verifs(VeriFs::v1_with_bugs(bugs));
            m.checkpoint(1).unwrap();
            m.mkdir("/testdir", FileMode::DIR_DEFAULT).unwrap();
            m.restore(1).unwrap(); // roll back to before the mkdir
            m.mkdir("/testdir", FileMode::DIR_DEFAULT)
        };
        assert_eq!(run(BugConfig::none()), Ok(()));
        assert_eq!(
            run(BugConfig {
                v1_skip_invalidation: true,
                ..BugConfig::default()
            }),
            Err(Errno::EEXIST),
            "stale positive dentry claims the directory exists"
        );
    }

    #[test]
    fn bug2_stale_attrs_after_restore() {
        let run = |bugs: BugConfig| -> u64 {
            let mut m = mount_verifs(VeriFs::v1_with_bugs(bugs));
            let fd = m.create("/f", FileMode::REG_DEFAULT).unwrap();
            m.close(fd).unwrap();
            m.checkpoint(1).unwrap();
            m.stat("/f").unwrap(); // prime attr cache (size 0)
            m.truncate("/f", 0).unwrap(); // drop attrs so next stat re-primes
            let fd = m
                .open("/f", OpenFlags::write_only(), FileMode::REG_DEFAULT)
                .unwrap();
            m.write(fd, b"grown").unwrap();
            m.close(fd).unwrap();
            m.stat("/f").unwrap(); // prime attr cache with size 5
            m.restore(1).unwrap(); // roll back: file is empty again
            m.stat("/f").unwrap().size
        };
        assert_eq!(run(BugConfig::none()), 0);
        assert_eq!(
            run(BugConfig {
                v1_skip_invalidation: true,
                ..BugConfig::default()
            }),
            5,
            "stale attribute cache reports the discarded size"
        );
    }

    #[test]
    fn unmount_clears_kernel_caches() {
        let mut m = mount_verifs(VeriFs::v2());
        m.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        assert!(m.dentry_cache_len() > 0);
        m.unmount().unwrap();
        assert_eq!(m.dentry_cache_len(), 0);
        assert!(!m.is_mounted());
        m.mount().unwrap();
        assert!(m.stat("/d").is_ok());
    }

    #[test]
    fn message_costs_charge_the_clock() {
        let clock = Clock::new();
        let mut m =
            FuseMount::with_config(VeriFs::v2(), FuseConfig::default(), Some(clock.clone()));
        m.mount().unwrap();
        let before = clock.now_ns();
        let fd = m.create("/f", FileMode::REG_DEFAULT).unwrap();
        m.close(fd).unwrap();
        assert!(clock.now_ns() > before);
    }

    #[test]
    fn entry_ttl_expires_on_virtual_clock() {
        let clock = Clock::new();
        let cfg = FuseConfig {
            entry_ttl_ns: 10_000,
            attr_ttl_ns: 10_000,
            message_cost_ns: 0,
            ..FuseConfig::default()
        };
        let mut m = FuseMount::with_config(VeriFs::v2(), cfg, Some(clock.clone()));
        m.mount().unwrap();
        m.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        // Within TTL: EEXIST comes from the cache (no Mkdir message).
        let mk = m.daemon().traffic().count(FuseOpKind::Mkdir);
        assert_eq!(m.mkdir("/d", FileMode::DIR_DEFAULT), Err(Errno::EEXIST));
        assert_eq!(m.daemon().traffic().count(FuseOpKind::Mkdir), mk);
        // Past TTL: the dentry has expired, so the kernel re-asks the daemon
        // (a fresh Mkdir message that the daemon answers with EEXIST).
        clock.advance_ns(20_000);
        assert_eq!(m.mkdir("/d", FileMode::DIR_DEFAULT), Err(Errno::EEXIST));
        assert_eq!(m.daemon().traffic().count(FuseOpKind::Mkdir), mk + 1);
    }

    #[test]
    fn rename_through_fuse_moves_entries() {
        let mut m = mount_verifs(VeriFs::v2());
        let fd = m.create("/a", FileMode::REG_DEFAULT).unwrap();
        m.write(fd, b"x").unwrap();
        m.close(fd).unwrap();
        m.rename("/a", "/b").unwrap();
        assert_eq!(m.stat("/a"), Err(Errno::ENOENT));
        assert_eq!(m.stat("/b").unwrap().size, 1);
    }

    #[test]
    fn rename_over_existing_invalidates_replaced_attrs() {
        // Regression: rename over an existing destination unlinks the old
        // destination inode, but only the two dentries were dropped — the
        // replaced inode's attr-cache entry survived. Reachable through a
        // hardlink alias, it served the pre-rename link count.
        let mut m = mount_verifs(VeriFs::v2());
        let fd = m.create("/a", FileMode::REG_DEFAULT).unwrap();
        m.close(fd).unwrap();
        let fd = m.create("/b", FileMode::REG_DEFAULT).unwrap();
        m.close(fd).unwrap();
        m.link("/b", "/c").unwrap();
        // Warm the attr cache for /b's inode (shared with /c): nlink 2.
        assert_eq!(m.stat("/b").unwrap().nlink, 2);
        m.rename("/a", "/b").unwrap(); // unlinks the old /b inode
        assert_eq!(
            m.stat("/c").unwrap().nlink,
            1,
            "attr cache must not serve the replaced inode's stale nlink"
        );
        // And /b itself resolves to the renamed inode, not the old one.
        assert_eq!(m.stat("/b").unwrap().nlink, 1);
    }

    #[test]
    fn checkpoint_restore_passthrough() {
        let mut m = mount_verifs(VeriFs::v2());
        let fd = m.create("/f", FileMode::REG_DEFAULT).unwrap();
        m.close(fd).unwrap();
        m.checkpoint(9).unwrap();
        assert_eq!(m.snapshot_count(), 1);
        m.unlink("/f").unwrap();
        m.restore_keep(9).unwrap();
        assert!(m.stat("/f").is_ok());
        m.discard(9).unwrap();
        assert_eq!(m.snapshot_count(), 0);
        assert!(m.daemon().traffic().count(FuseOpKind::Ioctl) >= 3);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use std::sync::Arc;
    use verifs::VeriFs;

    fn mounted() -> FuseMount<VeriFs> {
        let mut m = FuseMount::new(VeriFs::v2());
        let conn = m.connection();
        m.daemon_mut()
            .fs_mut()
            .set_invalidation_sink(Arc::new(conn));
        m.mount().unwrap();
        m
    }

    #[test]
    fn statfs_passes_through() {
        let m = mounted();
        let s = m.statfs().unwrap();
        assert!(s.blocks > 0);
        assert!(s.files > 0);
    }

    #[test]
    fn granular_entry_invalidation() {
        let mut m = mounted();
        m.mkdir("/a", FileMode::DIR_DEFAULT).unwrap();
        m.mkdir("/b", FileMode::DIR_DEFAULT).unwrap();
        assert!(m.dentry_cache_len() >= 2);
        let conn = m.connection();
        conn.invalidate_entry(vfs::Ino::ROOT.0, "a");
        // /b stays cached: its EEXIST still answers from the kernel.
        let mk = m.daemon().traffic().count(FuseOpKind::Mkdir);
        assert_eq!(m.mkdir("/b", FileMode::DIR_DEFAULT), Err(Errno::EEXIST));
        assert_eq!(m.daemon().traffic().count(FuseOpKind::Mkdir), mk);
        // /a's entry is gone: the next mkdir asks the daemon (EEXIST from it).
        assert_eq!(m.mkdir("/a", FileMode::DIR_DEFAULT), Err(Errno::EEXIST));
        assert_eq!(m.daemon().traffic().count(FuseOpKind::Mkdir), mk + 1);
    }

    #[test]
    fn granular_inode_invalidation_drops_attrs() {
        let mut m = mounted();
        let fd = m.create("/f", FileMode::REG_DEFAULT).unwrap();
        m.close(fd).unwrap();
        let ino = m.stat("/f").unwrap().ino.0;
        let fetches = m.daemon().traffic().count(FuseOpKind::Getattr)
            + m.daemon().traffic().count(FuseOpKind::Lookup);
        m.stat("/f").unwrap(); // cache hit: no daemon traffic
        assert_eq!(
            m.daemon().traffic().count(FuseOpKind::Getattr)
                + m.daemon().traffic().count(FuseOpKind::Lookup),
            fetches
        );
        m.connection().invalidate_inode(ino);
        m.stat("/f").unwrap(); // must refetch (lookup and/or getattr)
        assert!(
            m.daemon().traffic().count(FuseOpKind::Getattr)
                + m.daemon().traffic().count(FuseOpKind::Lookup)
                > fetches
        );
    }

    #[test]
    fn symlink_and_xattr_pass_through_with_caching() {
        let mut m = mounted();
        let fd = m.create("/target", FileMode::REG_DEFAULT).unwrap();
        m.close(fd).unwrap();
        m.symlink("/target", "/ln").unwrap();
        assert_eq!(m.readlink("/ln").unwrap(), "/target");
        assert_eq!(m.stat("/ln").unwrap().ftype, vfs::FileType::Symlink);
        m.setxattr("/target", "user.k", b"v", XattrFlags::Any)
            .unwrap();
        assert_eq!(m.getxattr("/target", "user.k").unwrap(), b"v");
        assert_eq!(m.listxattr("/target").unwrap(), vec!["user.k"]);
        m.removexattr("/target", "user.k").unwrap();
        assert_eq!(m.getxattr("/target", "user.k"), Err(Errno::ENODATA));
    }

    #[test]
    fn hardlink_updates_both_names() {
        let mut m = mounted();
        let fd = m.create("/orig", FileMode::REG_DEFAULT).unwrap();
        m.write(fd, b"shared").unwrap();
        m.close(fd).unwrap();
        m.link("/orig", "/alias").unwrap();
        assert_eq!(m.stat("/alias").unwrap().ino, m.stat("/orig").unwrap().ino);
        assert_eq!(m.stat("/alias").unwrap().nlink, 2);
        m.unlink("/orig").unwrap();
        assert_eq!(m.stat("/orig"), Err(Errno::ENOENT));
        assert_eq!(m.stat("/alias").unwrap().nlink, 1);
    }

    #[test]
    fn access_and_utimens_route_to_daemon() {
        let mut m = mounted();
        let fd = m.create("/f", FileMode::REG_DEFAULT).unwrap();
        m.close(fd).unwrap();
        m.chmod("/f", FileMode::new(0o400)).unwrap();
        assert_eq!(m.access("/f", AccessMode::read()), Ok(()));
        assert_eq!(m.access("/f", AccessMode::write()), Err(Errno::EACCES));
        m.utimens("/f", 7, 8).unwrap();
        let st = m.stat("/f").unwrap();
        assert_eq!((st.atime, st.mtime), (7, 8));
    }

    /// The interleaved-workload cache-view semantics: a rename on one
    /// thread must evict the other thread's dentry and attr copies
    /// (broadcast on, the fix); with broadcast off the other view keeps
    /// serving the renamed-away name — the bug the interleaving checker's
    /// linearizability oracle catches.
    #[test]
    fn rename_on_one_thread_invalidates_other_views_when_broadcast_on() {
        for (broadcast, expect_stale) in [(true, false), (false, true)] {
            let cfg = FuseConfig {
                entry_ttl_ns: NO_EXPIRY,
                attr_ttl_ns: NO_EXPIRY,
                message_cost_ns: 0,
                broadcast_local_invalidation: broadcast,
            };
            let mut m = FuseMount::with_config(VeriFs::v2(), cfg, None);
            let conn = m.connection();
            m.daemon_mut()
                .fs_mut()
                .set_invalidation_sink(Arc::new(conn));
            m.mount().unwrap();
            let fd = m.create("/a", FileMode::REG_DEFAULT).unwrap();
            m.close(fd).unwrap();
            // Thread 1 observes /a (fills its own view).
            m.set_active_thread(1);
            assert!(m.stat("/a").is_ok());
            // Thread 0 renames it away.
            m.set_active_thread(0);
            m.rename("/a", "/b").unwrap();
            // Thread 1 stats again.
            m.set_active_thread(1);
            let res = m.stat("/a");
            if expect_stale {
                assert!(res.is_ok(), "bug mode must serve the stale dentry");
            } else {
                assert_eq!(res, Err(Errno::ENOENT), "fixed mode must refetch");
            }
        }
    }

    /// Multi-view mounts fold their cache contents into the opaque digest
    /// so interleaved exploration distinguishes states by cached values.
    #[test]
    fn opaque_digest_tracks_per_thread_views() {
        let mut m = mounted();
        let base = m.opaque_state_digest();
        let fd = m.create("/f", FileMode::REG_DEFAULT).unwrap();
        m.close(fd).unwrap();
        m.set_active_thread(1);
        let single_equivalent = m.opaque_state_digest();
        assert!(m.stat("/f").is_ok());
        let after_fill = m.opaque_state_digest();
        assert_ne!(
            single_equivalent, after_fill,
            "filling a second view must change the digest"
        );
        let _ = base;
    }
}
