//! FUSE message protocol: request kinds and traffic accounting.
//!
//! In real FUSE every operation becomes one or more request/reply message
//! pairs over `/dev/fuse`. The simulation keeps the message boundary —
//! each kernel→daemon crossing is counted and charged virtual time — because
//! that per-message cost is part of why the paper's FUSE configurations
//! behave the way they do.

use std::collections::BTreeMap;

/// The kind of a FUSE request, used for traffic statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum FuseOpKind {
    /// Component lookup (fills the kernel dentry cache).
    Lookup,
    /// `getattr`.
    Getattr,
    /// `create`.
    Create,
    /// `open`.
    Open,
    /// `release` (close).
    Release,
    /// `read`.
    Read,
    /// `write`.
    Write,
    /// `setattr` (truncate/chmod/chown/utimens).
    Setattr,
    /// `mkdir`.
    Mkdir,
    /// `rmdir`.
    Rmdir,
    /// `unlink`.
    Unlink,
    /// `readdir`.
    Readdir,
    /// `rename`.
    Rename,
    /// `link`.
    Link,
    /// `symlink`.
    Symlink,
    /// `readlink`.
    Readlink,
    /// `access`.
    Access,
    /// xattr operations.
    Xattr,
    /// `statfs`.
    Statfs,
    /// `fsync` / `flush`.
    Fsync,
    /// `ioctl` (VeriFS checkpoint/restore travel as ioctls).
    Ioctl,
    /// `lseek`.
    Lseek,
}

impl std::fmt::Display for FuseOpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Per-kind request counters for one FUSE connection.
#[derive(Debug, Clone, Default)]
pub struct FuseTraffic {
    counts: BTreeMap<FuseOpKind, u64>,
}

impl FuseTraffic {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        FuseTraffic::default()
    }

    /// Records one request of `kind`.
    pub fn record(&mut self, kind: FuseOpKind) {
        *self.counts.entry(kind).or_insert(0) += 1;
    }

    /// Requests of `kind` so far.
    pub fn count(&self, kind: FuseOpKind) -> u64 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Total requests across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Iterates `(kind, count)` pairs in kind order.
    pub fn iter(&self) -> impl Iterator<Item = (FuseOpKind, u64)> + '_ {
        self.counts.iter().map(|(k, v)| (*k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_accumulates() {
        let mut t = FuseTraffic::new();
        t.record(FuseOpKind::Lookup);
        t.record(FuseOpKind::Lookup);
        t.record(FuseOpKind::Write);
        assert_eq!(t.count(FuseOpKind::Lookup), 2);
        assert_eq!(t.count(FuseOpKind::Write), 1);
        assert_eq!(t.count(FuseOpKind::Read), 0);
        assert_eq!(t.total(), 3);
        let kinds: Vec<_> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(kinds, vec![FuseOpKind::Lookup, FuseOpKind::Write]);
    }
}
