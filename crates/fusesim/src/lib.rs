//! FUSE protocol simulation for the MCFS reproduction.
//!
//! FUSE file systems run as separate user-space processes; the kernel talks
//! to them through `/dev/fuse` and keeps its own dentry and attribute caches
//! in front (paper §3.1, §4). This crate simulates that split:
//!
//! * [`FuseDaemon`] — the user-space process wrapper (it records the device
//!   handles the process holds, which is what defeats CRIU snapshotting);
//! * [`FuseMount`] — the kernel side: dentry/attr caches with TTLs, message
//!   dispatch with per-crossing virtual-time cost, and readdirplus-style
//!   cache priming;
//! * [`FuseConn`] — the invalidation connection, implementing
//!   [`vfs::InvalidationSink`] so the user-space file system can invalidate
//!   kernel caches (`fuse_lowlevel_notify_inval_entry` / `_inode`).
//!
//! The tests in this crate reproduce the paper's bug 2 end to end: a VeriFS
//! restore that skips invalidation leaves a stale positive dentry, and the
//! kernel wrongly reports `EEXIST` for a directory that does not exist.

mod daemon;
mod kernel;
mod proto;

pub use daemon::{DeviceHandle, FuseDaemon};
pub use kernel::{FuseConfig, FuseConn, FuseMount};
pub use proto::{FuseOpKind, FuseTraffic};
