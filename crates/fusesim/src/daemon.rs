//! The user-space FUSE daemon: a separate "process" wrapping a file system.
//!
//! FUSE file systems run as independent processes that talk to the kernel
//! through the `/dev/fuse` character device (paper §3.1). The daemon wrapper
//! records exactly that: which device handles the process holds. CRIU-style
//! process snapshotting (the `snapshot` crate) refuses processes with open
//! character or block devices, so this handle list is what made CRIU unusable
//! for FUSE file systems in the paper (§5).

use crate::proto::{FuseOpKind, FuseTraffic};

/// A device handle held by a simulated process.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DeviceHandle {
    /// A character device, e.g. `/dev/fuse`.
    Char(String),
    /// A block device, e.g. `/dev/ram0`.
    Block(String),
}

impl DeviceHandle {
    /// The device path.
    pub fn path(&self) -> &str {
        match self {
            DeviceHandle::Char(p) | DeviceHandle::Block(p) => p,
        }
    }
}

/// The user-space daemon process hosting a file system `F`.
///
/// All requests arrive through [`handle`](FuseDaemon::handle), which counts
/// the message and hands the embedded file system to the given closure — the
/// daemon's dispatch loop in real libfuse.
#[derive(Debug)]
pub struct FuseDaemon<F> {
    fs: F,
    handles: Vec<DeviceHandle>,
    traffic: FuseTraffic,
}

impl<F> FuseDaemon<F> {
    /// Starts a daemon for `fs`. Opening the FUSE connection claims
    /// `/dev/fuse`.
    pub fn new(fs: F) -> Self {
        FuseDaemon {
            fs,
            handles: vec![DeviceHandle::Char("/dev/fuse".to_string())],
            traffic: FuseTraffic::new(),
        }
    }

    /// Device handles the daemon process currently holds.
    pub fn device_handles(&self) -> &[DeviceHandle] {
        &self.handles
    }

    /// Records an additional device handle (e.g. a FUSE file system backed by
    /// a block device, like fuse-ext2).
    pub fn add_device_handle(&mut self, handle: DeviceHandle) {
        self.handles.push(handle);
    }

    /// Per-kind request counters.
    pub fn traffic(&self) -> &FuseTraffic {
        &self.traffic
    }

    /// Dispatches one request of `kind` to the embedded file system.
    pub fn handle<R>(&mut self, kind: FuseOpKind, op: impl FnOnce(&mut F) -> R) -> R {
        self.traffic.record(kind);
        op(&mut self.fs)
    }

    /// Direct access to the embedded file system (setup and assertions only —
    /// real traffic goes through [`handle`](Self::handle)).
    pub fn fs_mut(&mut self) -> &mut F {
        &mut self.fs
    }

    /// Shared access to the embedded file system.
    pub fn fs(&self) -> &F {
        &self.fs
    }

    /// Stops the daemon, returning the embedded file system.
    pub fn into_fs(self) -> F {
        self.fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daemon_holds_dev_fuse() {
        let d = FuseDaemon::new(());
        assert_eq!(
            d.device_handles(),
            &[DeviceHandle::Char("/dev/fuse".into())]
        );
        assert_eq!(d.device_handles()[0].path(), "/dev/fuse");
    }

    #[test]
    fn handle_counts_traffic() {
        let mut d = FuseDaemon::new(5u32);
        let out = d.handle(FuseOpKind::Read, |v| *v + 1);
        assert_eq!(out, 6);
        assert_eq!(d.traffic().count(FuseOpKind::Read), 1);
        assert_eq!(d.traffic().total(), 1);
    }

    #[test]
    fn extra_handles_recorded() {
        let mut d = FuseDaemon::new(());
        d.add_device_handle(DeviceHandle::Block("/dev/ram0".into()));
        assert_eq!(d.device_handles().len(), 2);
    }
}
