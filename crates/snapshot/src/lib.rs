//! Process- and VM-level snapshotting — the state-tracking alternatives the
//! paper evaluated before designing the checkpoint/restore API (§5).
//!
//! * [`CriuEngine`] models CRIU process snapshotting. CRIU **refuses to
//!   checkpoint processes holding open character or block devices**, which is
//!   exactly why it could not snapshot FUSE file systems (they hold
//!   `/dev/fuse`) but *could* snapshot the NFS-Ganesha user-space server.
//! * [`VmEngine`] models LightVM-style whole-VM snapshotting: it always
//!   works, but costs ~30 ms per checkpoint and ~20 ms per restore of
//!   virtual time — limiting model checking to the paper's observed
//!   20–30 operations/second.
//!
//! Both engines operate on [`ProcessImage`]-style byte blobs so the MCFS
//! harness can plug either in as a state-tracking strategy and measure the
//! resulting exploration rate.

use std::collections::HashMap;
use std::sync::Arc;

use blockdev::Clock;

/// A handle a simulated process holds on a device node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ProcessHandle {
    /// Regular file (snapshot-safe).
    File(String),
    /// Character device (CRIU refuses these, e.g. `/dev/fuse`).
    CharDevice(String),
    /// Block device (CRIU refuses these too).
    BlockDevice(String),
}

/// A snapshot-able view of a user-space process: its memory image and the
/// handles it holds. The `fusesim` daemon and a Ganesha-like NFS server both
/// reduce to this.
pub trait Snapshotable {
    /// Serializes the process's full memory state.
    fn memory_image(&self) -> Vec<u8>;

    /// Restores a previously captured memory state.
    ///
    /// # Errors
    ///
    /// A message when the image is incompatible.
    fn restore_image(&mut self, image: &[u8]) -> Result<(), String>;

    /// The device/file handles the process currently holds.
    fn handles(&self) -> Vec<ProcessHandle>;
}

/// Why CRIU refused a checkpoint or restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CriuError {
    /// The process has an open character or block device. CRIU's real
    /// refusal — fatal for FUSE daemons.
    UnsupportedDevice(String),
    /// Restore was asked for an unknown snapshot key.
    NoSuchSnapshot(u64),
    /// The process rejected the image.
    RestoreFailed(String),
}

impl std::fmt::Display for CriuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CriuError::UnsupportedDevice(path) => {
                write!(f, "criu: cannot checkpoint process with open device {path}")
            }
            CriuError::NoSuchSnapshot(key) => write!(f, "criu: no snapshot under key {key}"),
            CriuError::RestoreFailed(msg) => write!(f, "criu: restore failed: {msg}"),
        }
    }
}

impl std::error::Error for CriuError {}

/// A captured process image. The bytes are `Arc`-shared: cloning an image
/// (or handing one back from [`VmEngine::restore`]) is a refcount bump, not
/// a copy, matching the copy-on-write checkpoint model used elsewhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessImage {
    bytes: Arc<Vec<u8>>,
}

impl ProcessImage {
    /// Image size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The captured bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// CRIU-style checkpoint/restore of user-space processes.
///
/// # Examples
///
/// ```
/// use snapshot::{CriuEngine, CriuError, ProcessHandle, Snapshotable};
///
/// struct Plain(Vec<u8>);
/// impl Snapshotable for Plain {
///     fn memory_image(&self) -> Vec<u8> { self.0.clone() }
///     fn restore_image(&mut self, image: &[u8]) -> Result<(), String> {
///         self.0 = image.to_vec();
///         Ok(())
///     }
///     fn handles(&self) -> Vec<ProcessHandle> { vec![] }
/// }
///
/// # fn main() -> Result<(), CriuError> {
/// let mut engine = CriuEngine::new(None);
/// let mut proc = Plain(vec![1, 2, 3]);
/// engine.checkpoint(1, &proc)?;
/// proc.0.clear();
/// engine.restore(1, &mut proc)?;
/// assert_eq!(proc.0, vec![1, 2, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CriuEngine {
    images: HashMap<u64, ProcessImage>,
    clock: Option<Clock>,
    /// Per-KiB dump/restore cost (CRIU streams memory to images).
    ns_per_kib: u64,
}

impl CriuEngine {
    /// Creates an engine; with a clock, dump/restore charge virtual time.
    pub fn new(clock: Option<Clock>) -> Self {
        CriuEngine {
            images: HashMap::new(),
            clock,
            ns_per_kib: 2_000,
        }
    }

    fn charge(&self, bytes: usize) {
        if let Some(c) = &self.clock {
            c.advance_ns(self.ns_per_kib * (bytes as u64).div_ceil(1024));
        }
    }

    /// Checkpoints `proc` under `key`.
    ///
    /// # Errors
    ///
    /// [`CriuError::UnsupportedDevice`] if the process holds any character
    /// or block device — the limitation that ruled CRIU out for FUSE file
    /// systems in the paper.
    pub fn checkpoint(&mut self, key: u64, proc: &dyn Snapshotable) -> Result<(), CriuError> {
        for h in proc.handles() {
            match h {
                ProcessHandle::CharDevice(p) | ProcessHandle::BlockDevice(p) => {
                    return Err(CriuError::UnsupportedDevice(p));
                }
                ProcessHandle::File(_) => {}
            }
        }
        let bytes = proc.memory_image();
        self.charge(bytes.len());
        self.images.insert(
            key,
            ProcessImage {
                bytes: Arc::new(bytes),
            },
        );
        Ok(())
    }

    /// Restores the image stored under `key` into `proc` (keeping the image).
    ///
    /// # Errors
    ///
    /// [`CriuError::NoSuchSnapshot`] / [`CriuError::RestoreFailed`].
    pub fn restore(&mut self, key: u64, proc: &mut dyn Snapshotable) -> Result<(), CriuError> {
        let image = self
            .images
            .get(&key)
            .ok_or(CriuError::NoSuchSnapshot(key))?;
        self.charge(image.bytes.len());
        proc.restore_image(&image.bytes)
            .map_err(CriuError::RestoreFailed)
    }

    /// Drops the image under `key`, reporting whether one existed.
    pub fn discard(&mut self, key: u64) -> bool {
        self.images.remove(&key).is_some()
    }

    /// Number of stored images.
    pub fn image_count(&self) -> usize {
        self.images.len()
    }

    /// Total bytes held by stored images.
    pub fn image_bytes(&self) -> usize {
        self.images.values().map(ProcessImage::size_bytes).sum()
    }
}

/// LightVM-style whole-VM snapshotting.
///
/// Always applicable (the VM encloses everything — kernel caches included),
/// but each checkpoint costs ~30 ms and each restore ~20 ms of virtual time,
/// capping the model-checking rate at the paper's observed 20–30 ops/s.
#[derive(Debug)]
pub struct VmEngine {
    images: HashMap<u64, Arc<Vec<u8>>>,
    clock: Clock,
    /// Checkpoint cost (LightVM: 30 ms for a trivial unikernel).
    pub checkpoint_ms: u64,
    /// Restore cost (LightVM: 20 ms).
    pub restore_ms: u64,
}

impl VmEngine {
    /// Creates an engine charging the paper's LightVM costs to `clock`.
    pub fn new(clock: Clock) -> Self {
        VmEngine {
            images: HashMap::new(),
            clock,
            checkpoint_ms: 30,
            restore_ms: 20,
        }
    }

    /// Checkpoints an opaque VM state blob under `key`.
    pub fn checkpoint(&mut self, key: u64, vm_state: Vec<u8>) {
        self.clock.advance_ms(self.checkpoint_ms);
        self.images.insert(key, Arc::new(vm_state));
    }

    /// Restores the blob stored under `key` (keeping it). The returned
    /// handle shares storage with the stored image — the engine-side copy
    /// the real LightVM pays is charged to the clock, not re-materialized.
    pub fn restore(&mut self, key: u64) -> Option<Arc<Vec<u8>>> {
        self.clock.advance_ms(self.restore_ms);
        self.images.get(&key).cloned()
    }

    /// Drops the blob under `key`, reporting whether one existed.
    pub fn discard(&mut self, key: u64) -> bool {
        self.images.remove(&key).is_some()
    }

    /// Number of stored images.
    pub fn image_count(&self) -> usize {
        self.images.len()
    }

    /// Total bytes held by stored images.
    pub fn image_bytes(&self) -> usize {
        self.images.values().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeProc {
        memory: Vec<u8>,
        handles: Vec<ProcessHandle>,
    }

    impl Snapshotable for FakeProc {
        fn memory_image(&self) -> Vec<u8> {
            self.memory.clone()
        }
        fn restore_image(&mut self, image: &[u8]) -> Result<(), String> {
            self.memory = image.to_vec();
            Ok(())
        }
        fn handles(&self) -> Vec<ProcessHandle> {
            self.handles.clone()
        }
    }

    #[test]
    fn criu_refuses_fuse_like_processes() {
        // A FUSE daemon holds /dev/fuse: CRIU must refuse (paper §5).
        let proc = FakeProc {
            memory: vec![0; 128],
            handles: vec![ProcessHandle::CharDevice("/dev/fuse".into())],
        };
        let mut engine = CriuEngine::new(None);
        let err = engine.checkpoint(1, &proc).unwrap_err();
        assert_eq!(err, CriuError::UnsupportedDevice("/dev/fuse".into()));
        assert!(err.to_string().contains("/dev/fuse"));
    }

    #[test]
    fn criu_refuses_block_devices_too() {
        let proc = FakeProc {
            memory: vec![],
            handles: vec![ProcessHandle::BlockDevice("/dev/ram0".into())],
        };
        let mut engine = CriuEngine::new(None);
        assert!(matches!(
            engine.checkpoint(1, &proc),
            Err(CriuError::UnsupportedDevice(_))
        ));
    }

    #[test]
    fn criu_snapshots_ganesha_like_process() {
        // NFS-Ganesha holds only regular files: CRIU works (paper §5).
        let mut proc = FakeProc {
            memory: b"nfs server state".to_vec(),
            handles: vec![ProcessHandle::File("/var/log/ganesha.log".into())],
        };
        let mut engine = CriuEngine::new(None);
        engine.checkpoint(7, &proc).unwrap();
        assert_eq!(engine.image_count(), 1);
        assert_eq!(engine.image_bytes(), 16);
        proc.memory.clear();
        engine.restore(7, &mut proc).unwrap();
        assert_eq!(proc.memory, b"nfs server state");
        assert!(engine.discard(7));
        assert!(!engine.discard(7));
        assert_eq!(
            engine.restore(7, &mut proc),
            Err(CriuError::NoSuchSnapshot(7))
        );
    }

    #[test]
    fn criu_charges_dump_time() {
        let clock = Clock::new();
        let proc = FakeProc {
            memory: vec![0; 10 * 1024],
            handles: vec![],
        };
        let mut engine = CriuEngine::new(Some(clock.clone()));
        engine.checkpoint(1, &proc).unwrap();
        assert_eq!(clock.now_ns(), 10 * 2_000);
    }

    #[test]
    fn vm_engine_costs_bound_rate_to_tens_of_ops() {
        let clock = Clock::new();
        let mut vm = VmEngine::new(clock.clone());
        // One checkpoint + restore per operation, as backtracking requires.
        for i in 0..100u64 {
            vm.checkpoint(i, vec![0; 64]);
            vm.restore(i);
        }
        let secs = clock.now_secs();
        let rate = 100.0 / secs;
        assert!(
            rate > 15.0 && rate < 35.0,
            "paper reports 20-30 ops/s; modelled {rate:.1}"
        );
    }

    #[test]
    fn vm_engine_roundtrip() {
        let mut vm = VmEngine::new(Clock::new());
        vm.checkpoint(1, b"vm state".to_vec());
        assert_eq!(vm.restore(1).unwrap().as_slice(), b"vm state");
        assert_eq!(vm.restore(2), None);
        assert_eq!(vm.image_count(), 1);
        assert_eq!(vm.image_bytes(), 8);
        // Restored handles share storage with the stored image.
        let a = vm.restore(1).unwrap();
        let b = vm.restore(1).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(vm.discard(1));
    }
}
