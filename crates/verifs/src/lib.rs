//! VeriFS — the RAM-based FUSE file system from the MCFS paper (§5), in two
//! versions, with the paper's proposed checkpoint/restore API.
//!
//! * **VeriFS1** ([`VeriFs::v1`]) is the initial prototype: a fixed-length
//!   inode array with one contiguous memory buffer per file, a limited
//!   operation set (no `access`, `rename`, symbolic or hard links, or
//!   extended attributes), and no bound on stored data.
//! * **VeriFS2** ([`VeriFs::v2`]) adds the missing features plus a data
//!   budget (`ENOSPC`).
//!
//! Both expose [`vfs::FsCheckpoint`]: `checkpoint(key)` copies the full
//! in-memory state into a snapshot pool; `restore(key)` brings it back and
//! notifies the kernel to invalidate its caches (via
//! [`vfs::InvalidationSink`]), exactly the `ioctl_CHECKPOINT` /
//! `ioctl_RESTORE` design the paper proposes.
//!
//! # Reintroduced bugs
//!
//! [`BugConfig`] re-enables the four bugs MCFS historically found while
//! VeriFS was being developed (paper §6), in the real code paths, so the
//! reproduction can measure ops-to-detection:
//!
//! 1. `v1_truncate_no_zero` — expanding `truncate` exposes stale bytes.
//! 2. `v1_skip_invalidation` — `restore` forgets to invalidate kernel caches.
//! 3. `v2_hole_no_zero` — a `write` past EOF leaves the hole unzeroed.
//! 4. `v2_size_only_on_capacity_growth` — appends update the size field only
//!    when the buffer had to grow.
//!
//! # Examples
//!
//! ```
//! use verifs::VeriFs;
//! use vfs::{FileSystem, FsCheckpoint, FileMode};
//!
//! # fn main() -> vfs::VfsResult<()> {
//! let mut fs = VeriFs::v2();
//! fs.mount()?;
//! let fd = fs.create("/f", FileMode::REG_DEFAULT)?;
//! fs.write(fd, b"hello")?;
//! fs.close(fd)?;
//!
//! fs.checkpoint(1)?;          // ioctl_CHECKPOINT
//! fs.unlink("/f")?;
//! fs.restore(1)?;             // ioctl_RESTORE: state (and /f) is back
//! assert_eq!(fs.stat("/f")?.size, 5);
//! # Ok(())
//! # }
//! ```

mod bugs;
mod ramfs;

pub use bugs::BugConfig;
pub use ramfs::{VeriFs, VeriFsConfig, DEFAULT_DATA_BUDGET, DEFAULT_MAX_INODES};
