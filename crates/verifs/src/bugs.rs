//! The four historical VeriFS bugs (paper §6), reintroducible for the
//! bug-detection experiments.

/// Selects which of the paper's historical bugs are active.
///
/// Each flag re-enables the *original faulty code path*; with everything off
/// (the default) VeriFS behaves correctly.
///
/// # Examples
///
/// ```
/// use verifs::{BugConfig, VeriFs};
///
/// // A VeriFS1 with its original truncate bug, as when MCFS first ran.
/// let fs = VeriFs::v1_with_bugs(BugConfig {
///     v1_truncate_no_zero: true,
///     ..BugConfig::default()
/// });
/// # let _ = fs;
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BugConfig {
    /// Paper bug 1 (found after ~9 K operations, VeriFS1 vs Ext4): `truncate`
    /// failed to clear newly allocated space when expanding a file, exposing
    /// stale buffer contents.
    pub v1_truncate_no_zero: bool,
    /// Paper bug 2 (found after ~12 K operations, VeriFS1 vs Ext4): after a
    /// state rollback the kernel's inode and dentry caches were not
    /// invalidated, so the kernel saw entries from the discarded future. The
    /// fix was calling `fuse_lowlevel_notify_inval_entry` /
    /// `fuse_lowlevel_notify_inval_inode`; this flag suppresses those calls.
    pub v1_skip_invalidation: bool,
    /// Paper bug 3 (found after ~900 K operations, VeriFS2 vs VeriFS1):
    /// `write` failed to zero the file buffer when the write created a hole
    /// past EOF.
    pub v2_hole_no_zero: bool,
    /// Paper bug 4 (found after ~1.2 M operations, VeriFS2 vs VeriFS1):
    /// `write` updated the file size only when the file grew beyond its
    /// buffer capacity, not whenever it was appended to.
    pub v2_size_only_on_capacity_growth: bool,
}

impl BugConfig {
    /// No bugs — correct behaviour.
    pub fn none() -> Self {
        BugConfig::default()
    }

    /// Only paper bug 1: the VeriFS1 truncate-zeroing bug.
    pub fn v1_truncate() -> Self {
        BugConfig {
            v1_truncate_no_zero: true,
            ..BugConfig::default()
        }
    }

    /// Only paper bug 2: VeriFS1 skipping kernel-cache invalidation on
    /// rollback.
    pub fn v1_invalidation() -> Self {
        BugConfig {
            v1_skip_invalidation: true,
            ..BugConfig::default()
        }
    }

    /// Only paper bug 3: the VeriFS2 hole-zeroing write bug. The canonical
    /// seeded bug for deterministic harness factories — its minimal
    /// counterexample is the 4-op create/write/truncate/write pattern.
    pub fn v2_hole() -> Self {
        BugConfig {
            v2_hole_no_zero: true,
            ..BugConfig::default()
        }
    }

    /// Only paper bug 4: the VeriFS2 size-update-on-capacity-growth bug.
    pub fn v2_size() -> Self {
        BugConfig {
            v2_size_only_on_capacity_growth: true,
            ..BugConfig::default()
        }
    }

    /// Whether any bug is enabled.
    pub fn any(self) -> bool {
        self.v1_truncate_no_zero
            || self.v1_skip_invalidation
            || self.v2_hole_no_zero
            || self.v2_size_only_on_capacity_growth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_no_bugs() {
        assert!(!BugConfig::default().any());
        assert_eq!(BugConfig::none(), BugConfig::default());
    }

    #[test]
    fn single_bug_constructors_enable_exactly_one_flag() {
        let singles = [
            BugConfig::v1_truncate(),
            BugConfig::v1_invalidation(),
            BugConfig::v2_hole(),
            BugConfig::v2_size(),
        ];
        for (i, cfg) in singles.iter().enumerate() {
            assert!(cfg.any(), "constructor {i}");
            let flags = [
                cfg.v1_truncate_no_zero,
                cfg.v1_skip_invalidation,
                cfg.v2_hole_no_zero,
                cfg.v2_size_only_on_capacity_growth,
            ];
            assert_eq!(flags.iter().filter(|&&f| f).count(), 1, "constructor {i}");
            assert!(flags[i], "constructor {i} sets its own flag");
        }
    }

    #[test]
    fn any_detects_each_flag() {
        for i in 0..4 {
            let cfg = BugConfig {
                v1_truncate_no_zero: i == 0,
                v1_skip_invalidation: i == 1,
                v2_hole_no_zero: i == 2,
                v2_size_only_on_capacity_growth: i == 3,
            };
            assert!(cfg.any(), "flag {i}");
        }
    }
}
