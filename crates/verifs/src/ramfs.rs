//! The VeriFS in-memory file system engine.
//!
//! VeriFS1 used "a fixed-length inode array with a contiguous memory buffer
//! attached to each inode as the file data" (paper §5); this engine keeps that
//! structure. VeriFS2 is the same engine with the extended feature set turned
//! on, exactly as VeriFS2 grew out of VeriFS1.
//!
//! A deliberate property of the buffer management: physical buffers are never
//! shrunk, only grown (zero-filling the *newly allocated* region). Stale bytes
//! therefore persist between a file's logical size and its physical capacity —
//! which is precisely the garbage that paper bugs 1 and 3 exposed when the
//! zeroing steps were missing.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use vfs::{
    path, AccessMode, DirEntry, Errno, Fd, FdTable, FileMode, FileStat, FileSystem, FileType,
    FsCapabilities, FsCheckpoint, Ino, InvalidationSink, OpenFlags, StatFs, VfsResult, XattrFlags,
};

use crate::bugs::BugConfig;

/// Default inode-array length.
pub const DEFAULT_MAX_INODES: usize = 128;

/// Default VeriFS2 data budget in bytes (VeriFS1 is unbounded, as in the
/// paper).
pub const DEFAULT_DATA_BUDGET: u64 = 1 << 20;

/// Buffer-growth granularity: capacities are rounded up to this chunk size.
/// Bug 4 only manifests because growth is chunked — appends that fit in the
/// current capacity skip the (buggy) size update.
const CHUNK: usize = 64;

/// Maximum hard-link count.
const MAX_NLINK: u32 = 65_000;

/// Statfs block size reported by VeriFS.
const STATFS_BSIZE: u32 = 4096;

/// Construction-time configuration.
#[derive(Debug, Clone)]
pub struct VeriFsConfig {
    /// 1 or 2; selects the feature set and the reported name.
    pub version: u8,
    /// Length of the fixed inode array.
    pub max_inodes: usize,
    /// Total bytes of file data allowed (`None` = unbounded, VeriFS1).
    pub data_budget: Option<u64>,
    /// Reintroduced historical bugs.
    pub bugs: BugConfig,
    /// Maximum simultaneously open descriptors.
    pub max_fds: usize,
    /// Expose stale bytes beyond EOF through
    /// [`FileSystem::opaque_state_digest`]. Buffers are only ever grown in
    /// [`CHUNK`]-sized steps and never shrunk, so a truncate-down leaves the
    /// old bytes in place; the abstraction function cannot see them, but a
    /// buggy hole write can surface them later. With this on (the default)
    /// the digest folds that residue into the exploration fingerprint so
    /// state-matched search keeps the two states apart. `false` reproduces
    /// the historical aliasing behavior (lint `MC002`'s regression target).
    pub opaque_residue_digest: bool,
}

impl VeriFsConfig {
    /// The VeriFS1 configuration (paper §5): limited ops, unbounded data.
    pub fn v1() -> Self {
        VeriFsConfig {
            version: 1,
            max_inodes: DEFAULT_MAX_INODES,
            data_budget: None,
            bugs: BugConfig::none(),
            max_fds: vfs::DEFAULT_MAX_FDS,
            opaque_residue_digest: true,
        }
    }

    /// The VeriFS2 configuration: full feature set, bounded data.
    pub fn v2() -> Self {
        VeriFsConfig {
            version: 2,
            max_inodes: DEFAULT_MAX_INODES,
            data_budget: Some(DEFAULT_DATA_BUDGET),
            bugs: BugConfig::none(),
            max_fds: vfs::DEFAULT_MAX_FDS,
            opaque_residue_digest: true,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum NodeKind {
    Regular {
        /// Physical buffer; `buf.len()` is the capacity, never shrunk.
        /// `Arc`-backed: checkpoints share the buffer with the live state
        /// until either side writes (`Arc::make_mut` copies on demand).
        buf: Arc<Vec<u8>>,
        /// Logical file size (`<= buf.len()` unless bug 4 lied about it —
        /// the invariant the paper's bug 4 violated is `size` tracking
        /// appends, not capacity).
        size: u64,
    },
    Directory {
        /// `Arc`-backed for the same copy-on-write sharing as file buffers.
        entries: Arc<BTreeMap<String, u64>>,
    },
    Symlink {
        target: String,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Inode {
    kind: NodeKind,
    mode: FileMode,
    nlink: u32,
    uid: u32,
    gid: u32,
    atime: u64,
    mtime: u64,
    ctime: u64,
    xattrs: BTreeMap<String, Vec<u8>>,
}

impl Inode {
    fn is_dir(&self) -> bool {
        matches!(self.kind, NodeKind::Directory { .. })
    }

    fn ftype(&self) -> FileType {
        match self.kind {
            NodeKind::Regular { .. } => FileType::Regular,
            NodeKind::Directory { .. } => FileType::Directory,
            NodeKind::Symlink { .. } => FileType::Symlink,
        }
    }

    fn heap_bytes(&self) -> usize {
        let kind_bytes = match &self.kind {
            NodeKind::Regular { buf, .. } => buf.len(),
            NodeKind::Directory { entries } => entries.keys().map(|k| k.len() + 16).sum::<usize>(),
            NodeKind::Symlink { target } => target.len(),
        };
        let xattr_bytes: usize = self.xattrs.iter().map(|(k, v)| k.len() + v.len()).sum();
        kind_bytes + xattr_bytes + std::mem::size_of::<Inode>()
    }
}

/// The complete in-memory state — what `ioctl_CHECKPOINT` captures into the
/// snapshot pool. The inode array (and, transitively, every file buffer and
/// directory map) is `Arc`-backed, so cloning the state for a checkpoint is
/// O(1) reference bumps: snapshots and the live state share structure until
/// one of them mutates (`Arc::make_mut`).
#[derive(Debug, Clone)]
struct FsState {
    inodes: Arc<Vec<Option<Inode>>>,
    /// Logical bytes charged against the data budget.
    data_used: u64,
    /// Monotonic logical timestamp, bumped on every state-changing call.
    /// atime updates make this the "noisy attribute" MCFS's abstraction
    /// function must ignore (paper §3.3).
    time: u64,
    open_files: FdTable<OpenFile>,
}

impl FsState {
    fn new(max_inodes: usize, max_fds: usize) -> Self {
        let mut inodes = vec![None; max_inodes];
        // Inode 0 is reserved (never allocated); inode 1 is the root.
        inodes[Ino::ROOT.0 as usize] = Some(Inode {
            kind: NodeKind::Directory {
                entries: Arc::new(BTreeMap::new()),
            },
            mode: FileMode::DIR_DEFAULT,
            nlink: 2,
            uid: 0,
            gid: 0,
            atime: 0,
            mtime: 0,
            ctime: 0,
            xattrs: BTreeMap::new(),
        });
        FsState {
            inodes: Arc::new(inodes),
            data_used: 0,
            time: 1,
            open_files: FdTable::new(max_fds),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.inodes
            .iter()
            .flatten()
            .map(Inode::heap_bytes)
            .sum::<usize>()
            + self.inodes.len() * std::mem::size_of::<Option<Inode>>()
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct OpenFile {
    ino: u64,
    offset: u64,
    read: bool,
    write: bool,
    append: bool,
}

/// The VeriFS file system (versions 1 and 2).
///
/// See the [crate-level documentation](crate) for an overview and examples.
#[derive(Clone)]
pub struct VeriFs {
    config: VeriFsConfig,
    state: FsState,
    mounted: bool,
    pool: HashMap<u64, FsState>,
    /// Running total of snapshot-pool heap bytes (kept incrementally so
    /// `snapshot_bytes` is O(1) even with thousands of snapshots).
    pool_bytes: usize,
    sink: Option<Arc<dyn InvalidationSink>>,
    name: String,
}

impl std::fmt::Debug for VeriFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VeriFs")
            .field("name", &self.name)
            .field("mounted", &self.mounted)
            .field("data_used", &self.state.data_used)
            .field("snapshots", &self.pool.len())
            .finish()
    }
}

impl VeriFs {
    /// Creates a VeriFS1 instance.
    pub fn v1() -> Self {
        VeriFs::with_config(VeriFsConfig::v1())
    }

    /// Creates a VeriFS1 instance with historical bugs enabled.
    pub fn v1_with_bugs(bugs: BugConfig) -> Self {
        let mut cfg = VeriFsConfig::v1();
        cfg.bugs = bugs;
        VeriFs::with_config(cfg)
    }

    /// Creates a VeriFS2 instance.
    pub fn v2() -> Self {
        VeriFs::with_config(VeriFsConfig::v2())
    }

    /// Creates a VeriFS2 instance with historical bugs enabled.
    pub fn v2_with_bugs(bugs: BugConfig) -> Self {
        let mut cfg = VeriFsConfig::v2();
        cfg.bugs = bugs;
        VeriFs::with_config(cfg)
    }

    /// Creates an instance from an explicit configuration.
    pub fn with_config(config: VeriFsConfig) -> Self {
        let state = FsState::new(config.max_inodes.max(2), config.max_fds);
        let name = format!("verifs{}", config.version);
        VeriFs {
            state,
            mounted: false,
            pool: HashMap::new(),
            pool_bytes: 0,
            sink: None,
            name,
            config,
        }
    }

    /// Connects the kernel-cache invalidation callbacks
    /// (`fuse_lowlevel_notify_inval_*`). Without a sink, restores silently
    /// skip invalidation — which is fine when no kernel cache sits in front.
    pub fn set_invalidation_sink(&mut self, sink: Arc<dyn InvalidationSink>) {
        self.sink = Some(sink);
    }

    /// The active configuration.
    pub fn config(&self) -> &VeriFsConfig {
        &self.config
    }

    /// Approximate heap bytes held by live state (excluding snapshots).
    pub fn state_bytes(&self) -> usize {
        self.state.heap_bytes()
    }

    fn v2_features(&self) -> bool {
        self.config.version >= 2
    }

    fn check_mounted(&self) -> VfsResult<()> {
        if self.mounted {
            Ok(())
        } else {
            Err(Errno::ENODEV)
        }
    }

    fn tick(&mut self) -> u64 {
        self.state.time += 1;
        self.state.time
    }

    fn inode(&self, ino: u64) -> VfsResult<&Inode> {
        self.state
            .inodes
            .get(ino as usize)
            .and_then(Option::as_ref)
            .ok_or(Errno::EIO)
    }

    fn inode_mut(&mut self, ino: u64) -> VfsResult<&mut Inode> {
        // Every mutation funnels through here: unshare the inode array from
        // any snapshots before handing out a mutable reference.
        Arc::make_mut(&mut self.state.inodes)
            .get_mut(ino as usize)
            .and_then(Option::as_mut)
            .ok_or(Errno::EIO)
    }

    fn alloc_inode(&mut self, inode: Inode) -> VfsResult<u64> {
        for (i, slot) in Arc::make_mut(&mut self.state.inodes)
            .iter_mut()
            .enumerate()
            .skip(2)
        {
            if slot.is_none() {
                *slot = Some(inode);
                return Ok(i as u64);
            }
        }
        Err(Errno::ENOSPC)
    }

    /// Resolves a validated path to an inode number. Intermediate components
    /// must be directories; symlinks are not followed.
    fn resolve(&self, p: &str) -> VfsResult<u64> {
        path::validate(p)?;
        let mut cur = Ino::ROOT.0;
        for comp in path::components(p) {
            let node = self.inode(cur)?;
            let entries = match &node.kind {
                NodeKind::Directory { entries } => entries,
                NodeKind::Symlink { .. } => return Err(Errno::ELOOP),
                NodeKind::Regular { .. } => return Err(Errno::ENOTDIR),
            };
            cur = *entries.get(comp).ok_or(Errno::ENOENT)?;
        }
        Ok(cur)
    }

    /// Resolves the parent directory of `p`, returning `(parent_ino, name)`.
    fn resolve_parent<'p>(&self, p: &'p str) -> VfsResult<(u64, &'p str)> {
        path::validate(p)?;
        let (parent, name) = path::split_parent(p)?;
        let parent_ino = self.resolve(&parent)?;
        if !self.inode(parent_ino)?.is_dir() {
            return Err(Errno::ENOTDIR);
        }
        Ok((parent_ino, name))
    }

    fn lookup_child(&self, parent: u64, name: &str) -> VfsResult<Option<u64>> {
        match &self.inode(parent)?.kind {
            NodeKind::Directory { entries } => Ok(entries.get(name).copied()),
            _ => Err(Errno::ENOTDIR),
        }
    }

    fn insert_entry(&mut self, parent: u64, name: &str, child: u64) -> VfsResult<()> {
        let now = self.tick();
        match &mut self.inode_mut(parent)?.kind {
            NodeKind::Directory { entries } => {
                Arc::make_mut(entries).insert(name.to_string(), child);
            }
            _ => return Err(Errno::ENOTDIR),
        }
        let parent_inode = self.inode_mut(parent)?;
        parent_inode.mtime = now;
        parent_inode.ctime = now;
        Ok(())
    }

    fn remove_entry(&mut self, parent: u64, name: &str) -> VfsResult<u64> {
        let now = self.tick();
        let child = match &mut self.inode_mut(parent)?.kind {
            NodeKind::Directory { entries } => {
                Arc::make_mut(entries).remove(name).ok_or(Errno::ENOENT)?
            }
            _ => return Err(Errno::ENOTDIR),
        };
        let parent_inode = self.inode_mut(parent)?;
        parent_inode.mtime = now;
        parent_inode.ctime = now;
        Ok(child)
    }

    fn fd_refs(&self, ino: u64) -> usize {
        self.state
            .open_files
            .iter()
            .filter(|(_, of)| of.ino == ino)
            .count()
    }

    /// Frees `ino` if it has no remaining links and no open descriptors.
    fn maybe_free(&mut self, ino: u64) -> VfsResult<()> {
        let node = self.inode(ino)?;
        if node.nlink > 0 || self.fd_refs(ino) > 0 {
            return Ok(());
        }
        if let NodeKind::Regular { size, .. } = node.kind {
            self.state.data_used = self.state.data_used.saturating_sub(size);
        }
        Arc::make_mut(&mut self.state.inodes)[ino as usize] = None;
        Ok(())
    }

    /// Charges `new_size - old_size` against the data budget.
    fn charge(&mut self, old_size: u64, new_size: u64) -> VfsResult<()> {
        if new_size > old_size {
            let delta = new_size - old_size;
            if let Some(budget) = self.config.data_budget {
                if self.state.data_used + delta > budget {
                    return Err(Errno::ENOSPC);
                }
            }
            self.state.data_used += delta;
        } else {
            self.state.data_used = self.state.data_used.saturating_sub(old_size - new_size);
        }
        Ok(())
    }

    fn new_inode(&self, kind: NodeKind, mode: FileMode, now: u64) -> Inode {
        Inode {
            kind,
            mode,
            nlink: 1,
            uid: 0,
            gid: 0,
            atime: now,
            mtime: now,
            ctime: now,
            xattrs: BTreeMap::new(),
        }
    }

    fn do_truncate(&mut self, ino: u64, new_size: u64) -> VfsResult<()> {
        let bug_no_zero = self.config.bugs.v1_truncate_no_zero;
        let now = self.tick();
        let old_size = match &self.inode(ino)?.kind {
            NodeKind::Regular { size, .. } => *size,
            NodeKind::Directory { .. } => return Err(Errno::EISDIR),
            NodeKind::Symlink { .. } => return Err(Errno::EINVAL),
        };
        self.charge(old_size, new_size)?;
        let node = self.inode_mut(ino)?;
        if let NodeKind::Regular { buf, size } = &mut node.kind {
            let buf = Arc::make_mut(buf);
            if new_size as usize > buf.len() {
                let cap = round_up(new_size as usize);
                buf.resize(cap, 0);
            }
            if new_size > *size && !bug_no_zero {
                // Clear the newly exposed region. Omitting this is paper
                // bug 1: stale bytes from a previous, longer incarnation of
                // the file become visible.
                for b in &mut buf[*size as usize..new_size as usize] {
                    *b = 0;
                }
            }
            *size = new_size;
        }
        node.mtime = now;
        node.ctime = now;
        Ok(())
    }

    fn check_xattr_name(name: &str) -> VfsResult<()> {
        if name.is_empty() || name.len() > 255 || name.contains('\0') {
            return Err(Errno::EINVAL);
        }
        Ok(())
    }
}

fn round_up(n: usize) -> usize {
    n.div_ceil(CHUNK) * CHUNK
}

impl FileSystem for VeriFs {
    fn fs_name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> FsCapabilities {
        if self.v2_features() {
            FsCapabilities::full()
        } else {
            FsCapabilities {
                checkpoint: true,
                ..FsCapabilities::default()
            }
        }
    }

    fn mount(&mut self) -> VfsResult<()> {
        if self.mounted {
            return Err(Errno::EBUSY);
        }
        self.mounted = true;
        Ok(())
    }

    fn unmount(&mut self) -> VfsResult<()> {
        self.check_mounted()?;
        // The user-space daemon stays alive across unmounts (state is kept),
        // but kernel-visible descriptors are gone.
        self.state.open_files.clear();
        self.mounted = false;
        Ok(())
    }

    fn is_mounted(&self) -> bool {
        self.mounted
    }

    fn sync(&mut self) -> VfsResult<()> {
        self.check_mounted()
    }

    fn statfs(&self) -> VfsResult<StatFs> {
        self.check_mounted()?;
        let files = self.config.max_inodes as u64;
        let files_free = self
            .state
            .inodes
            .iter()
            .skip(2)
            .filter(|s| s.is_none())
            .count() as u64;
        let (blocks, blocks_free) = match self.config.data_budget {
            Some(budget) => {
                let total = budget / STATFS_BSIZE as u64;
                let used = self.state.data_used.div_ceil(STATFS_BSIZE as u64);
                (total, total.saturating_sub(used))
            }
            // VeriFS1 does not limit stored data; report a large capacity.
            None => (u32::MAX as u64, u32::MAX as u64),
        };
        Ok(StatFs {
            block_size: STATFS_BSIZE,
            blocks,
            blocks_free,
            blocks_avail: blocks_free,
            files,
            files_free,
            name_max: path::NAME_MAX as u32,
        })
    }

    fn create(&mut self, p: &str, mode: FileMode) -> VfsResult<Fd> {
        self.check_mounted()?;
        let (parent, name) = self.resolve_parent(p)?;
        if self.lookup_child(parent, name)?.is_some() {
            return Err(Errno::EEXIST);
        }
        let now = self.tick();
        let inode = self.new_inode(
            NodeKind::Regular {
                buf: Arc::new(Vec::new()),
                size: 0,
            },
            mode,
            now,
        );
        let ino = self.alloc_inode(inode)?;
        self.insert_entry(parent, name, ino)?;
        self.state.open_files.insert(OpenFile {
            ino,
            offset: 0,
            read: true,
            write: true,
            append: false,
        })
    }

    fn open(&mut self, p: &str, flags: OpenFlags, mode: FileMode) -> VfsResult<Fd> {
        self.check_mounted()?;
        path::validate(p)?;
        let ino = match self.resolve(p) {
            Ok(ino) => {
                if flags.create && flags.excl {
                    return Err(Errno::EEXIST);
                }
                ino
            }
            Err(Errno::ENOENT) if flags.create => {
                let (parent, name) = self.resolve_parent(p)?;
                let now = self.tick();
                let inode = self.new_inode(
                    NodeKind::Regular {
                        buf: Arc::new(Vec::new()),
                        size: 0,
                    },
                    mode,
                    now,
                );
                let ino = self.alloc_inode(inode)?;
                self.insert_entry(parent, name, ino)?;
                ino
            }
            Err(e) => return Err(e),
        };
        match self.inode(ino)?.ftype() {
            FileType::Symlink => return Err(Errno::ELOOP),
            FileType::Directory if flags.write => return Err(Errno::EISDIR),
            _ => {}
        }
        if flags.trunc && flags.write {
            self.do_truncate(ino, 0)?;
        }
        self.state.open_files.insert(OpenFile {
            ino,
            offset: 0,
            read: flags.read || !flags.write,
            write: flags.write,
            append: flags.append,
        })
    }

    fn close(&mut self, fd: Fd) -> VfsResult<()> {
        self.check_mounted()?;
        let of = self.state.open_files.remove(fd)?;
        // Last close of an unlinked file frees it.
        if self.inode(of.ino).map(|n| n.nlink == 0).unwrap_or(false) {
            self.maybe_free(of.ino)?;
        }
        Ok(())
    }

    fn read(&mut self, fd: Fd, out: &mut [u8]) -> VfsResult<usize> {
        self.check_mounted()?;
        let now = self.tick();
        let of = self.state.open_files.get(fd)?.clone();
        if !of.read {
            return Err(Errno::EBADF);
        }
        let node = self.inode_mut(of.ino)?;
        let n = match &node.kind {
            NodeKind::Regular { buf, size } => {
                let start = of.offset.min(*size) as usize;
                // `lseek` accepts any u64 offset: saturate the end position
                // so a read far past EOF is an empty read (POSIX), never a
                // wrapped range.
                let end = of.offset.saturating_add(out.len() as u64).min(*size) as usize;
                let n = end - start;
                out[..n].copy_from_slice(&buf[start..end]);
                n
            }
            NodeKind::Directory { .. } => return Err(Errno::EISDIR),
            NodeKind::Symlink { .. } => return Err(Errno::EINVAL),
        };
        node.atime = now;
        self.state.open_files.get_mut(fd)?.offset += n as u64;
        Ok(n)
    }

    fn write(&mut self, fd: Fd, data: &[u8]) -> VfsResult<usize> {
        self.check_mounted()?;
        let bug_hole = self.config.bugs.v2_hole_no_zero && self.v2_features();
        let bug_size = self.config.bugs.v2_size_only_on_capacity_growth && self.v2_features();
        let now = self.tick();
        let of = self.state.open_files.get(fd)?.clone();
        if !of.write {
            return Err(Errno::EBADF);
        }
        let (old_size, old_cap) = match &self.inode(of.ino)?.kind {
            NodeKind::Regular { buf, size } => (*size, buf.len()),
            NodeKind::Directory { .. } => return Err(Errno::EISDIR),
            NodeKind::Symlink { .. } => return Err(Errno::EINVAL),
        };
        let offset = if of.append { old_size } else { of.offset };
        let end = offset.checked_add(data.len() as u64).ok_or(Errno::EFBIG)?;
        let new_size = end.max(old_size);
        self.charge(old_size, new_size)?;
        let node = self.inode_mut(of.ino)?;
        if let NodeKind::Regular { buf, size } = &mut node.kind {
            let buf = Arc::make_mut(buf);
            let needed = end as usize;
            let grew = needed > old_cap;
            if grew {
                buf.resize(round_up(needed), 0);
            }
            if offset > *size && !bug_hole {
                // Zero the hole between old EOF and the write start. Omitting
                // this is paper bug 3.
                for b in &mut buf[*size as usize..offset as usize] {
                    *b = 0;
                }
            }
            buf[offset as usize..end as usize].copy_from_slice(data);
            if bug_size {
                // Paper bug 4: the size field tracked capacity growth, not
                // appends; in-capacity appends left it stale.
                if grew {
                    *size = new_size;
                }
            } else {
                *size = new_size;
            }
        }
        node.mtime = now;
        node.ctime = now;
        let of_mut = self.state.open_files.get_mut(fd)?;
        of_mut.offset = end;
        Ok(data.len())
    }

    fn lseek(&mut self, fd: Fd, offset: u64) -> VfsResult<u64> {
        self.check_mounted()?;
        let of = self.state.open_files.get_mut(fd)?;
        of.offset = offset;
        Ok(offset)
    }

    fn truncate(&mut self, p: &str, size: u64) -> VfsResult<()> {
        self.check_mounted()?;
        let ino = self.resolve(p)?;
        self.do_truncate(ino, size)
    }

    fn mkdir(&mut self, p: &str, mode: FileMode) -> VfsResult<()> {
        self.check_mounted()?;
        let (parent, name) = self.resolve_parent(p)?;
        if self.lookup_child(parent, name)?.is_some() {
            return Err(Errno::EEXIST);
        }
        let now = self.tick();
        let mut inode = self.new_inode(
            NodeKind::Directory {
                entries: Arc::new(BTreeMap::new()),
            },
            mode,
            now,
        );
        inode.nlink = 2;
        let ino = self.alloc_inode(inode)?;
        self.insert_entry(parent, name, ino)?;
        self.inode_mut(parent)?.nlink += 1;
        Ok(())
    }

    fn rmdir(&mut self, p: &str) -> VfsResult<()> {
        self.check_mounted()?;
        if path::is_root(p) {
            return Err(Errno::EBUSY);
        }
        let (parent, name) = self.resolve_parent(p)?;
        let ino = self.lookup_child(parent, name)?.ok_or(Errno::ENOENT)?;
        match &self.inode(ino)?.kind {
            NodeKind::Directory { entries } => {
                if !entries.is_empty() {
                    return Err(Errno::ENOTEMPTY);
                }
            }
            _ => return Err(Errno::ENOTDIR),
        }
        self.remove_entry(parent, name)?;
        self.inode_mut(ino)?.nlink = 0;
        self.inode_mut(parent)?.nlink -= 1;
        self.maybe_free(ino)?;
        Ok(())
    }

    fn unlink(&mut self, p: &str) -> VfsResult<()> {
        self.check_mounted()?;
        let (parent, name) = self.resolve_parent(p)?;
        let ino = self.lookup_child(parent, name)?.ok_or(Errno::ENOENT)?;
        if self.inode(ino)?.is_dir() {
            return Err(Errno::EISDIR);
        }
        self.remove_entry(parent, name)?;
        let now = self.tick();
        let node = self.inode_mut(ino)?;
        node.nlink -= 1;
        node.ctime = now;
        self.maybe_free(ino)?;
        Ok(())
    }

    fn stat(&mut self, p: &str) -> VfsResult<FileStat> {
        self.check_mounted()?;
        let ino = self.resolve(p)?;
        let node = self.inode(ino)?;
        let size = match &node.kind {
            NodeKind::Regular { size, .. } => *size,
            // VeriFS reports entry-based directory sizes (unlike ext's
            // block-multiple sizes) — one of the benign differences MCFS's
            // abstraction function must ignore (paper §3.4).
            NodeKind::Directory { entries } => entries.keys().map(|k| k.len() as u64 + 8).sum(),
            NodeKind::Symlink { target } => target.len() as u64,
        };
        Ok(FileStat {
            ino: Ino(ino),
            ftype: node.ftype(),
            mode: node.mode,
            nlink: node.nlink,
            uid: node.uid,
            gid: node.gid,
            size,
            blocks: size.div_ceil(512),
            atime: node.atime,
            mtime: node.mtime,
            ctime: node.ctime,
        })
    }

    fn getdents(&mut self, p: &str) -> VfsResult<Vec<DirEntry>> {
        self.check_mounted()?;
        let ino = self.resolve(p)?;
        let now = self.tick();
        let node = self.inode(ino)?;
        let entries = match &node.kind {
            // O(1): bump the Arc rather than deep-copying the map.
            NodeKind::Directory { entries } => Arc::clone(entries),
            _ => return Err(Errno::ENOTDIR),
        };
        let mut out = Vec::with_capacity(entries.len());
        for (name, child) in entries.iter() {
            let ftype = self.inode(*child)?.ftype();
            out.push(DirEntry {
                name: name.clone(),
                ino: Ino(*child),
                ftype,
            });
        }
        self.inode_mut(ino)?.atime = now;
        Ok(out)
    }

    fn chmod(&mut self, p: &str, mode: FileMode) -> VfsResult<()> {
        self.check_mounted()?;
        let ino = self.resolve(p)?;
        let now = self.tick();
        let node = self.inode_mut(ino)?;
        node.mode = mode;
        node.ctime = now;
        Ok(())
    }

    fn chown(&mut self, p: &str, uid: u32, gid: u32) -> VfsResult<()> {
        self.check_mounted()?;
        let ino = self.resolve(p)?;
        let now = self.tick();
        let node = self.inode_mut(ino)?;
        node.uid = uid;
        node.gid = gid;
        node.ctime = now;
        Ok(())
    }

    fn utimens(&mut self, p: &str, atime: u64, mtime: u64) -> VfsResult<()> {
        self.check_mounted()?;
        let ino = self.resolve(p)?;
        let now = self.tick();
        let node = self.inode_mut(ino)?;
        node.atime = atime;
        node.mtime = mtime;
        node.ctime = now;
        Ok(())
    }

    fn rename(&mut self, src: &str, dst: &str) -> VfsResult<()> {
        if !self.v2_features() {
            return Err(Errno::ENOSYS);
        }
        self.check_mounted()?;
        path::validate(src)?;
        path::validate(dst)?;
        if src == dst {
            // POSIX: rename to self is a no-op.
            self.resolve(src)?;
            return Ok(());
        }
        if path::is_same_or_descendant(src, dst) {
            return Err(Errno::EINVAL);
        }
        let (sparent, sname) = self.resolve_parent(src)?;
        let src_ino = self.lookup_child(sparent, sname)?.ok_or(Errno::ENOENT)?;
        let (dparent, dname) = self.resolve_parent(dst)?;
        let src_is_dir = self.inode(src_ino)?.is_dir();
        if let Some(dst_ino) = self.lookup_child(dparent, dname)? {
            if dst_ino == src_ino {
                return Ok(()); // hard links to the same file
            }
            let dst_is_dir = self.inode(dst_ino)?.is_dir();
            match (src_is_dir, dst_is_dir) {
                (true, false) => return Err(Errno::ENOTDIR),
                (false, true) => return Err(Errno::EISDIR),
                (true, true) => {
                    if let NodeKind::Directory { entries } = &self.inode(dst_ino)?.kind {
                        if !entries.is_empty() {
                            return Err(Errno::ENOTEMPTY);
                        }
                    }
                    self.remove_entry(dparent, dname)?;
                    self.inode_mut(dst_ino)?.nlink = 0;
                    self.inode_mut(dparent)?.nlink -= 1;
                    self.maybe_free(dst_ino)?;
                }
                (false, false) => {
                    self.remove_entry(dparent, dname)?;
                    let node = self.inode_mut(dst_ino)?;
                    node.nlink -= 1;
                    self.maybe_free(dst_ino)?;
                }
            }
        }
        self.remove_entry(sparent, sname)?;
        self.insert_entry(dparent, dname, src_ino)?;
        if src_is_dir && sparent != dparent {
            self.inode_mut(sparent)?.nlink -= 1;
            self.inode_mut(dparent)?.nlink += 1;
        }
        let now = self.tick();
        self.inode_mut(src_ino)?.ctime = now;
        Ok(())
    }

    fn link(&mut self, existing: &str, new: &str) -> VfsResult<()> {
        if !self.v2_features() {
            return Err(Errno::ENOSYS);
        }
        self.check_mounted()?;
        let src_ino = self.resolve(existing)?;
        if self.inode(src_ino)?.is_dir() {
            return Err(Errno::EPERM);
        }
        if self.inode(src_ino)?.nlink >= MAX_NLINK {
            return Err(Errno::EMLINK);
        }
        let (parent, name) = self.resolve_parent(new)?;
        if self.lookup_child(parent, name)?.is_some() {
            return Err(Errno::EEXIST);
        }
        self.insert_entry(parent, name, src_ino)?;
        let now = self.tick();
        let node = self.inode_mut(src_ino)?;
        node.nlink += 1;
        node.ctime = now;
        Ok(())
    }

    fn symlink(&mut self, target: &str, linkpath: &str) -> VfsResult<()> {
        if !self.v2_features() {
            return Err(Errno::ENOSYS);
        }
        self.check_mounted()?;
        if target.is_empty() || target.len() > path::PATH_MAX {
            return Err(Errno::EINVAL);
        }
        let (parent, name) = self.resolve_parent(linkpath)?;
        if self.lookup_child(parent, name)?.is_some() {
            return Err(Errno::EEXIST);
        }
        let now = self.tick();
        let inode = self.new_inode(
            NodeKind::Symlink {
                target: target.to_string(),
            },
            FileMode::new(0o777),
            now,
        );
        let ino = self.alloc_inode(inode)?;
        self.insert_entry(parent, name, ino)
    }

    fn readlink(&mut self, p: &str) -> VfsResult<String> {
        if !self.v2_features() {
            return Err(Errno::ENOSYS);
        }
        self.check_mounted()?;
        let ino = self.resolve(p)?;
        match &self.inode(ino)?.kind {
            NodeKind::Symlink { target } => Ok(target.clone()),
            _ => Err(Errno::EINVAL),
        }
    }

    fn access(&mut self, p: &str, mode: AccessMode) -> VfsResult<()> {
        if !self.v2_features() {
            return Err(Errno::ENOSYS);
        }
        self.check_mounted()?;
        let ino = self.resolve(p)?;
        let bits = self.inode(ino)?.mode;
        if (mode.read && !bits.owner_read())
            || (mode.write && !bits.owner_write())
            || (mode.exec && !bits.owner_exec())
        {
            return Err(Errno::EACCES);
        }
        Ok(())
    }

    fn setxattr(&mut self, p: &str, name: &str, value: &[u8], flags: XattrFlags) -> VfsResult<()> {
        if !self.v2_features() {
            return Err(Errno::ENOSYS);
        }
        self.check_mounted()?;
        Self::check_xattr_name(name)?;
        let ino = self.resolve(p)?;
        let now = self.tick();
        let node = self.inode_mut(ino)?;
        let exists = node.xattrs.contains_key(name);
        match flags {
            XattrFlags::Create if exists => return Err(Errno::EEXIST),
            XattrFlags::Replace if !exists => return Err(Errno::ENODATA),
            _ => {}
        }
        node.xattrs.insert(name.to_string(), value.to_vec());
        node.ctime = now;
        Ok(())
    }

    fn getxattr(&mut self, p: &str, name: &str) -> VfsResult<Vec<u8>> {
        if !self.v2_features() {
            return Err(Errno::ENOSYS);
        }
        self.check_mounted()?;
        Self::check_xattr_name(name)?;
        let ino = self.resolve(p)?;
        self.inode(ino)?
            .xattrs
            .get(name)
            .cloned()
            .ok_or(Errno::ENODATA)
    }

    fn listxattr(&mut self, p: &str) -> VfsResult<Vec<String>> {
        if !self.v2_features() {
            return Err(Errno::ENOSYS);
        }
        self.check_mounted()?;
        let ino = self.resolve(p)?;
        Ok(self.inode(ino)?.xattrs.keys().cloned().collect())
    }

    fn removexattr(&mut self, p: &str, name: &str) -> VfsResult<()> {
        if !self.v2_features() {
            return Err(Errno::ENOSYS);
        }
        self.check_mounted()?;
        Self::check_xattr_name(name)?;
        let ino = self.resolve(p)?;
        let now = self.tick();
        let node = self.inode_mut(ino)?;
        if node.xattrs.remove(name).is_none() {
            return Err(Errno::ENODATA);
        }
        node.ctime = now;
        Ok(())
    }

    fn opaque_state_digest(&self) -> Option<u128> {
        if !self.config.opaque_residue_digest {
            return None;
        }
        // Buffers are never shrunk, so bytes between a file's logical size
        // and its physical capacity are stale residue the POSIX interface
        // (and hence the abstraction function) cannot read — until a buggy
        // hole write exposes them. Fold every *nonzero* residue into an
        // order-independent digest: an all-zero tail behaves exactly like no
        // tail (growth zero-fills), so it must fingerprint identically.
        let mut acc: u128 = 0;
        let mut any = false;
        let mut canon: Option<Vec<Option<String>>> = None;
        // mcfs-lint: allow(MC007, keyed by canonical path; the slot fallback only covers orphans with no POSIX-reachable residue)
        for (ino, slot) in self.state.inodes.iter().enumerate() {
            let Some(inode) = slot else { continue };
            if let NodeKind::Regular { buf, size } = &inode.kind {
                let logical = (*size as usize).min(buf.len());
                let residue = &buf[logical..];
                if residue.iter().all(|&b| b == 0) {
                    continue;
                }
                // XOR-fold per-inode digests keyed by the inode's canonical
                // path so two files with identical residues don't cancel
                // out. The key must NOT be the inode number: slot assignment
                // depends on creation order, and two op interleavings that
                // reach the same observable state would then fingerprint
                // differently, making state-matched exploration counts
                // depend on visit order. Orphans (no path) have no residue
                // the POSIX interface could ever surface again, but key
                // them by slot as a conservative fallback.
                let paths = canon.get_or_insert_with(|| self.canonical_paths());
                let mut bytes = Vec::with_capacity(24 + residue.len());
                match &paths[ino] {
                    Some(path) => bytes.extend_from_slice(path.as_bytes()),
                    None => bytes.extend_from_slice(&(ino as u64).to_le_bytes()),
                }
                bytes.push(0);
                bytes.extend_from_slice(&size.to_le_bytes());
                bytes.extend_from_slice(residue);
                acc ^= mdigest::md5(&bytes).as_u128();
                any = true;
            }
        }
        any.then_some(acc)
    }
}

impl VeriFs {
    /// Lexicographically-smallest path reaching each inode, indexed by
    /// inode number. Directories have exactly one parent, so the walk is a
    /// tree traversal; hardlinked files keep the smallest of their names.
    /// Orphans (unlinked-but-open inodes) get `None`.
    fn canonical_paths(&self) -> Vec<Option<String>> {
        let mut canon: Vec<Option<String>> = vec![None; self.state.inodes.len()];
        let root = Ino::ROOT.0 as usize;
        if root < canon.len() {
            canon[root] = Some(String::from("/"));
        }
        let mut stack: Vec<(u64, String)> = vec![(Ino::ROOT.0, String::new())];
        while let Some((dir, prefix)) = stack.pop() {
            let Some(Some(inode)) = self.state.inodes.get(dir as usize) else {
                continue;
            };
            let NodeKind::Directory { entries } = &inode.kind else {
                continue;
            };
            for (name, &child) in entries.iter() {
                let path = format!("{prefix}/{name}");
                let is_dir = matches!(
                    self.state.inodes.get(child as usize),
                    Some(Some(Inode {
                        kind: NodeKind::Directory { .. },
                        ..
                    }))
                );
                match &mut canon[child as usize] {
                    slot @ None => {
                        *slot = Some(path.clone());
                        if is_dir {
                            stack.push((child, path));
                        }
                    }
                    Some(existing) if path < *existing => *existing = path,
                    _ => {}
                }
            }
        }
        canon
    }
}

impl FsCheckpoint for VeriFs {
    fn checkpoint(&mut self, key: u64) -> VfsResult<()> {
        self.check_mounted()?;
        // ioctl_CHECKPOINT: lock, capture inode and file data into the
        // snapshot pool under `key`, unlock. The &mut receiver is the lock.
        // Cloning the state is O(1) reference bumps (copy-on-write); the
        // heap_bytes walk keeps the *logical* accounting the memory model
        // charges, without copying or allocating anything.
        let snap = self.state.clone();
        self.pool_bytes += snap.heap_bytes();
        if let Some(old) = self.pool.insert(key, snap) {
            self.pool_bytes -= old.heap_bytes();
        }
        Ok(())
    }

    fn restore(&mut self, key: u64) -> VfsResult<()> {
        self.restore_impl(key, false)
    }

    fn restore_keep(&mut self, key: u64) -> VfsResult<()> {
        self.restore_impl(key, true)
    }

    fn discard(&mut self, key: u64) -> VfsResult<()> {
        let old = self.pool.remove(&key).ok_or(Errno::ENOENT)?;
        self.pool_bytes -= old.heap_bytes();
        Ok(())
    }

    fn snapshot_count(&self) -> usize {
        self.pool.len()
    }

    fn snapshot_bytes(&self) -> usize {
        self.pool_bytes
    }

    fn snapshot_resident_bytes(&self) -> usize {
        // Host bytes uniquely held by the pool: walk each snapshot, counting
        // an allocation only if it is neither reachable from the live state
        // nor already counted for an earlier snapshot (pointer identity).
        let mut seen = HashSet::new();
        mark_state_allocations(&self.state, &mut seen);
        self.pool
            .values()
            .map(|s| unique_heap_bytes(s, &mut seen))
            .sum()
    }
}

/// Records the live state's shared allocations so snapshots don't get
/// charged for structure they share with it.
fn mark_state_allocations(state: &FsState, seen: &mut HashSet<*const ()>) {
    if !seen.insert(Arc::as_ptr(&state.inodes).cast()) {
        return; // same inode array ⇒ same interior allocations
    }
    for inode in state.inodes.iter().flatten() {
        match &inode.kind {
            NodeKind::Regular { buf, .. } => {
                seen.insert(Arc::as_ptr(buf).cast());
            }
            NodeKind::Directory { entries } => {
                seen.insert(Arc::as_ptr(entries).cast());
            }
            NodeKind::Symlink { .. } => {}
        }
    }
}

/// Heap bytes of `state` not yet counted in `seen` (same size formulas as
/// [`FsState::heap_bytes`], so resident and logical figures are comparable).
fn unique_heap_bytes(state: &FsState, seen: &mut HashSet<*const ()>) -> usize {
    if !seen.insert(Arc::as_ptr(&state.inodes).cast()) {
        return 0;
    }
    let mut total = state.inodes.len() * std::mem::size_of::<Option<Inode>>();
    for inode in state.inodes.iter().flatten() {
        // The inode struct and its (non-Arc) xattrs live inside this copy of
        // the array; the Arc-backed payloads are counted once per allocation.
        total += std::mem::size_of::<Inode>();
        total += inode
            .xattrs
            .iter()
            .map(|(k, v)| k.len() + v.len())
            .sum::<usize>();
        match &inode.kind {
            NodeKind::Regular { buf, .. } => {
                if seen.insert(Arc::as_ptr(buf).cast()) {
                    total += buf.len();
                }
            }
            NodeKind::Directory { entries } => {
                if seen.insert(Arc::as_ptr(entries).cast()) {
                    total += entries.keys().map(|k| k.len() + 16).sum::<usize>();
                }
            }
            NodeKind::Symlink { target } => total += target.len(),
        }
    }
    total
}

impl VeriFs {
    fn restore_impl(&mut self, key: u64, keep: bool) -> VfsResult<()> {
        self.check_mounted()?;
        // One helper for both restore flavors: the keep path clones (an O(1)
        // reference bump), the discard path moves the snapshot out and
        // refunds its logical bytes (the paper's ioctl_RESTORE semantics).
        let state = if keep {
            self.pool.get(&key).ok_or(Errno::ENOENT)?.clone()
        } else {
            let state = self.pool.remove(&key).ok_or(Errno::ENOENT)?;
            self.pool_bytes -= state.heap_bytes();
            state
        };
        self.apply_restore(state);
        Ok(())
    }

    fn apply_restore(&mut self, state: FsState) {
        self.state = state;
        // Notify the kernel to invalidate its caches — the fix for paper
        // bug 2. With the historical bug enabled, the notification is
        // skipped and any cache in front of us keeps serving the discarded
        // future.
        if !self.config.bugs.v1_skip_invalidation {
            if let Some(sink) = &self.sink {
                sink.invalidate_all();
            }
        }
    }

    /// Forces every copy-on-write allocation in the *live* state to be
    /// uniquely owned, paying the full deep copy a non-COW checkpoint would
    /// have paid. Benchmarks and equivalence tests call this right after
    /// [`FsCheckpoint::checkpoint`] to reconstruct the deep-clone baseline.
    pub fn materialize_cow(&mut self) {
        let inodes = Arc::make_mut(&mut self.state.inodes);
        for inode in inodes.iter_mut().flatten() {
            match &mut inode.kind {
                NodeKind::Regular { buf, .. } => {
                    Arc::make_mut(buf);
                }
                NodeKind::Directory { entries } => {
                    Arc::make_mut(entries);
                }
                NodeKind::Symlink { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mounted_v2() -> VeriFs {
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        fs
    }

    fn mounted_v1() -> VeriFs {
        let mut fs = VeriFs::v1();
        fs.mount().unwrap();
        fs
    }

    fn write_file(fs: &mut VeriFs, p: &str, data: &[u8]) {
        let fd = fs.create(p, FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, data).unwrap();
        fs.close(fd).unwrap();
    }

    fn read_file(fs: &mut VeriFs, p: &str) -> Vec<u8> {
        let fd = fs
            .open(p, OpenFlags::read_only(), FileMode::REG_DEFAULT)
            .unwrap();
        let size = fs.stat(p).unwrap().size as usize;
        let mut buf = vec![0; size + 16];
        let n = fs.read(fd, &mut buf).unwrap();
        fs.close(fd).unwrap();
        buf.truncate(n);
        buf
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut fs = mounted_v2();
        write_file(&mut fs, "/a", b"hello world");
        assert_eq!(read_file(&mut fs, "/a"), b"hello world");
        let st = fs.stat("/a").unwrap();
        assert_eq!(st.size, 11);
        assert_eq!(st.ftype, FileType::Regular);
        assert_eq!(st.nlink, 1);
    }

    #[test]
    fn unmounted_operations_fail() {
        let mut fs = VeriFs::v2();
        assert_eq!(fs.stat("/"), Err(Errno::ENODEV));
        assert_eq!(fs.mkdir("/d", FileMode::DIR_DEFAULT), Err(Errno::ENODEV));
        fs.mount().unwrap();
        assert_eq!(fs.mount(), Err(Errno::EBUSY));
        fs.unmount().unwrap();
        assert_eq!(fs.unmount(), Err(Errno::ENODEV));
    }

    #[test]
    fn state_survives_unmount_but_fds_do_not() {
        let mut fs = mounted_v2();
        let fd = fs.create("/a", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, b"x").unwrap();
        fs.unmount().unwrap();
        fs.mount().unwrap();
        assert_eq!(fs.stat("/a").unwrap().size, 1);
        assert_eq!(fs.read(fd, &mut [0; 4]), Err(Errno::EBADF));
    }

    #[test]
    fn create_errors() {
        let mut fs = mounted_v2();
        write_file(&mut fs, "/a", b"");
        assert_eq!(
            fs.create("/a", FileMode::REG_DEFAULT).unwrap_err(),
            Errno::EEXIST
        );
        assert_eq!(
            fs.create("/no/f", FileMode::REG_DEFAULT).unwrap_err(),
            Errno::ENOENT
        );
        assert_eq!(
            fs.create("/a/f", FileMode::REG_DEFAULT).unwrap_err(),
            Errno::ENOTDIR
        );
        assert_eq!(
            fs.create("bad", FileMode::REG_DEFAULT).unwrap_err(),
            Errno::EINVAL
        );
    }

    #[test]
    fn open_flag_semantics() {
        let mut fs = mounted_v2();
        assert_eq!(
            fs.open("/missing", OpenFlags::read_only(), FileMode::REG_DEFAULT),
            Err(Errno::ENOENT)
        );
        let fd = fs
            .open(
                "/new",
                OpenFlags::read_write().with_create(),
                FileMode::REG_DEFAULT,
            )
            .unwrap();
        fs.write(fd, b"abc").unwrap();
        fs.close(fd).unwrap();
        assert_eq!(
            fs.open(
                "/new",
                OpenFlags::read_write().with_create().with_excl(),
                FileMode::REG_DEFAULT
            ),
            Err(Errno::EEXIST)
        );
        // O_TRUNC clears content.
        let fd = fs
            .open(
                "/new",
                OpenFlags::write_only().with_trunc(),
                FileMode::REG_DEFAULT,
            )
            .unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.stat("/new").unwrap().size, 0);
        // Writing through a read-only descriptor fails.
        let fd = fs
            .open("/new", OpenFlags::read_only(), FileMode::REG_DEFAULT)
            .unwrap();
        assert_eq!(fs.write(fd, b"x"), Err(Errno::EBADF));
        fs.close(fd).unwrap();
    }

    #[test]
    fn append_mode_writes_at_eof() {
        let mut fs = mounted_v2();
        write_file(&mut fs, "/log", b"one");
        let fd = fs
            .open(
                "/log",
                OpenFlags::write_only().with_append(),
                FileMode::REG_DEFAULT,
            )
            .unwrap();
        fs.write(fd, b"two").unwrap();
        fs.close(fd).unwrap();
        assert_eq!(read_file(&mut fs, "/log"), b"onetwo");
    }

    #[test]
    fn lseek_and_sparse_read() {
        let mut fs = mounted_v2();
        let fd = fs.create("/s", FileMode::REG_DEFAULT).unwrap();
        fs.lseek(fd, 10).unwrap();
        fs.write(fd, b"end").unwrap();
        fs.close(fd).unwrap();
        let content = read_file(&mut fs, "/s");
        assert_eq!(content.len(), 13);
        assert_eq!(&content[..10], &[0u8; 10], "hole must read as zeros");
        assert_eq!(&content[10..], b"end");
    }

    #[test]
    fn hole_bug_exposes_stale_bytes() {
        // Fill a file with garbage, shrink it, then write past EOF: the hole
        // region must be zeroed — unless bug 3 is enabled.
        let run = |bugs: BugConfig| -> Vec<u8> {
            let mut fs = VeriFs::v2_with_bugs(bugs);
            fs.mount().unwrap();
            write_file(&mut fs, "/f", &[0xAA; 40]);
            fs.truncate("/f", 4).unwrap();
            let fd = fs
                .open("/f", OpenFlags::write_only(), FileMode::REG_DEFAULT)
                .unwrap();
            fs.lseek(fd, 20).unwrap();
            fs.write(fd, b"zz").unwrap();
            fs.close(fd).unwrap();
            read_file(&mut fs, "/f")
        };
        let good = run(BugConfig::none());
        assert_eq!(&good[4..20], &[0u8; 16]);
        let bad = run(BugConfig {
            v2_hole_no_zero: true,
            ..BugConfig::default()
        });
        assert_eq!(&bad[4..20], &[0xAA; 16], "bug 3 leaks stale bytes");
    }

    #[test]
    fn truncate_bug_exposes_stale_bytes() {
        let run = |bugs: BugConfig| -> Vec<u8> {
            let mut fs = VeriFs::v1_with_bugs(bugs);
            fs.mount().unwrap();
            write_file(&mut fs, "/f", &[0x55; 32]);
            fs.truncate("/f", 2).unwrap();
            fs.truncate("/f", 32).unwrap();
            read_file(&mut fs, "/f")
        };
        let good = run(BugConfig::none());
        assert_eq!(&good[2..], &[0u8; 30]);
        let bad = run(BugConfig {
            v1_truncate_no_zero: true,
            ..BugConfig::default()
        });
        assert_eq!(&bad[2..], &[0x55; 30], "bug 1 leaks stale bytes");
    }

    #[test]
    fn size_update_bug_loses_appends() {
        let run = |bugs: BugConfig| -> u64 {
            let mut fs = VeriFs::v2_with_bugs(bugs);
            fs.mount().unwrap();
            // First write grows capacity to one chunk; the second append fits
            // inside that capacity.
            write_file(&mut fs, "/f", &[1; 10]);
            let fd = fs
                .open(
                    "/f",
                    OpenFlags::write_only().with_append(),
                    FileMode::REG_DEFAULT,
                )
                .unwrap();
            fs.write(fd, &[2; 10]).unwrap();
            fs.close(fd).unwrap();
            fs.stat("/f").unwrap().size
        };
        assert_eq!(run(BugConfig::none()), 20);
        assert_eq!(
            run(BugConfig {
                v2_size_only_on_capacity_growth: true,
                ..BugConfig::default()
            }),
            10,
            "bug 4: file appears shorter"
        );
    }

    #[test]
    fn mkdir_rmdir_semantics() {
        let mut fs = mounted_v2();
        fs.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        assert_eq!(fs.mkdir("/d", FileMode::DIR_DEFAULT), Err(Errno::EEXIST));
        fs.mkdir("/d/e", FileMode::DIR_DEFAULT).unwrap();
        assert_eq!(fs.rmdir("/d"), Err(Errno::ENOTEMPTY));
        write_file(&mut fs, "/d/e/f", b"x");
        assert_eq!(fs.rmdir("/d/e/f"), Err(Errno::ENOTDIR));
        fs.unlink("/d/e/f").unwrap();
        fs.rmdir("/d/e").unwrap();
        fs.rmdir("/d").unwrap();
        assert_eq!(fs.stat("/d"), Err(Errno::ENOENT));
        assert_eq!(fs.rmdir("/"), Err(Errno::EBUSY));
    }

    #[test]
    fn directory_nlink_accounting() {
        let mut fs = mounted_v2();
        assert_eq!(fs.stat("/").unwrap().nlink, 2);
        fs.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        assert_eq!(fs.stat("/").unwrap().nlink, 3);
        assert_eq!(fs.stat("/d").unwrap().nlink, 2);
        fs.rmdir("/d").unwrap();
        assert_eq!(fs.stat("/").unwrap().nlink, 2);
    }

    #[test]
    fn unlink_with_open_fd_defers_free() {
        let mut fs = mounted_v2();
        let fd = fs.create("/f", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, b"data").unwrap();
        fs.unlink("/f").unwrap();
        assert_eq!(fs.stat("/f"), Err(Errno::ENOENT));
        // Data still readable through the open descriptor.
        fs.lseek(fd, 0).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(fs.read(fd, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"data");
        fs.close(fd).unwrap();
        // Inode slot is reusable afterwards.
        let before = fs.statfs().unwrap().files_free;
        assert!(before > 0);
    }

    #[test]
    fn inode_exhaustion_returns_enospc() {
        let mut cfg = VeriFsConfig::v1();
        cfg.max_inodes = 4; // root + 2 allocatable (slot 0 reserved)
        let mut fs = VeriFs::with_config(cfg);
        fs.mount().unwrap();
        let fd = fs.create("/a", FileMode::REG_DEFAULT).unwrap();
        fs.close(fd).unwrap();
        let fd = fs.create("/b", FileMode::REG_DEFAULT).unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.create("/c", FileMode::REG_DEFAULT), Err(Errno::ENOSPC));
        fs.unlink("/a").unwrap();
        let fd = fs.create("/c", FileMode::REG_DEFAULT).unwrap();
        fs.close(fd).unwrap();
    }

    #[test]
    fn data_budget_enforced_in_v2() {
        let mut cfg = VeriFsConfig::v2();
        cfg.data_budget = Some(100);
        let mut fs = VeriFs::with_config(cfg);
        fs.mount().unwrap();
        let fd = fs.create("/f", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, &[0; 90]).unwrap();
        assert_eq!(fs.write(fd, &[0; 20]), Err(Errno::ENOSPC));
        // Overwrites within the size don't charge.
        fs.lseek(fd, 0).unwrap();
        fs.write(fd, &[1; 90]).unwrap();
        fs.close(fd).unwrap();
        // Truncate releases budget.
        fs.truncate("/f", 0).unwrap();
        write_file(&mut fs, "/g", &[0; 100]);
    }

    #[test]
    fn v1_is_unbounded() {
        let mut fs = mounted_v1();
        let fd = fs.create("/big", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, &vec![7u8; 3 * DEFAULT_DATA_BUDGET as usize / 2])
            .unwrap();
        fs.close(fd).unwrap();
    }

    #[test]
    fn v1_lacks_v2_operations() {
        let mut fs = mounted_v1();
        write_file(&mut fs, "/a", b"x");
        assert_eq!(fs.rename("/a", "/b"), Err(Errno::ENOSYS));
        assert_eq!(fs.link("/a", "/b"), Err(Errno::ENOSYS));
        assert_eq!(fs.symlink("/a", "/b"), Err(Errno::ENOSYS));
        assert_eq!(fs.readlink("/a"), Err(Errno::ENOSYS));
        assert_eq!(fs.access("/a", AccessMode::read()), Err(Errno::ENOSYS));
        assert_eq!(fs.getxattr("/a", "user.x"), Err(Errno::ENOSYS));
        assert!(!fs.capabilities().rename);
        assert!(fs.capabilities().checkpoint);
    }

    #[test]
    fn rename_file_and_replacement() {
        let mut fs = mounted_v2();
        write_file(&mut fs, "/a", b"A");
        write_file(&mut fs, "/b", b"B");
        fs.rename("/a", "/c").unwrap();
        assert_eq!(fs.stat("/a"), Err(Errno::ENOENT));
        assert_eq!(read_file(&mut fs, "/c"), b"A");
        // Replacing an existing file.
        fs.rename("/c", "/b").unwrap();
        assert_eq!(read_file(&mut fs, "/b"), b"A");
        assert_eq!(fs.stat("/c"), Err(Errno::ENOENT));
    }

    #[test]
    fn rename_directory_rules() {
        let mut fs = mounted_v2();
        fs.mkdir("/d1", FileMode::DIR_DEFAULT).unwrap();
        fs.mkdir("/d2", FileMode::DIR_DEFAULT).unwrap();
        fs.mkdir("/d2/sub", FileMode::DIR_DEFAULT).unwrap();
        write_file(&mut fs, "/f", b"x");
        // dir -> non-empty dir
        assert_eq!(fs.rename("/d1", "/d2"), Err(Errno::ENOTEMPTY));
        // dir -> file
        assert_eq!(fs.rename("/d1", "/f"), Err(Errno::ENOTDIR));
        // file -> dir
        assert_eq!(fs.rename("/f", "/d1"), Err(Errno::EISDIR));
        // dir into own subtree
        assert_eq!(fs.rename("/d2", "/d2/sub/x"), Err(Errno::EINVAL));
        // dir -> empty dir works
        fs.rmdir("/d2/sub").unwrap();
        fs.rename("/d1", "/d2").unwrap();
        assert_eq!(fs.stat("/d1"), Err(Errno::ENOENT));
        assert!(fs.stat("/d2").unwrap().ftype == FileType::Directory);
        // rename to self is a no-op
        fs.rename("/d2", "/d2").unwrap();
    }

    #[test]
    fn rename_moves_subtree() {
        let mut fs = mounted_v2();
        fs.mkdir("/src", FileMode::DIR_DEFAULT).unwrap();
        write_file(&mut fs, "/src/f", b"deep");
        fs.mkdir("/dst", FileMode::DIR_DEFAULT).unwrap();
        fs.rename("/src", "/dst/moved").unwrap();
        assert_eq!(read_file(&mut fs, "/dst/moved/f"), b"deep");
        assert_eq!(fs.stat("/").unwrap().nlink, 3, "root lost subdir link");
        assert_eq!(fs.stat("/dst").unwrap().nlink, 3, "dst gained subdir link");
    }

    #[test]
    fn hard_links_share_content() {
        let mut fs = mounted_v2();
        write_file(&mut fs, "/a", b"shared");
        fs.link("/a", "/b").unwrap();
        assert_eq!(fs.stat("/a").unwrap().nlink, 2);
        assert_eq!(fs.stat("/a").unwrap().ino, fs.stat("/b").unwrap().ino);
        fs.unlink("/a").unwrap();
        assert_eq!(read_file(&mut fs, "/b"), b"shared");
        assert_eq!(fs.stat("/b").unwrap().nlink, 1);
        fs.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        assert_eq!(fs.link("/d", "/d2"), Err(Errno::EPERM));
        assert_eq!(fs.link("/b", "/b"), Err(Errno::EEXIST));
    }

    #[test]
    fn symlinks_are_not_followed() {
        let mut fs = mounted_v2();
        write_file(&mut fs, "/target", b"t");
        fs.symlink("/target", "/ln").unwrap();
        assert_eq!(fs.readlink("/ln").unwrap(), "/target");
        assert_eq!(fs.stat("/ln").unwrap().ftype, FileType::Symlink);
        assert_eq!(
            fs.open("/ln", OpenFlags::read_only(), FileMode::REG_DEFAULT),
            Err(Errno::ELOOP)
        );
        assert_eq!(fs.readlink("/target"), Err(Errno::EINVAL));
        fs.unlink("/ln").unwrap();
        assert_eq!(fs.stat("/ln"), Err(Errno::ENOENT));
    }

    #[test]
    fn xattr_roundtrip_and_flags() {
        let mut fs = mounted_v2();
        write_file(&mut fs, "/f", b"");
        fs.setxattr("/f", "user.one", b"1", XattrFlags::Any)
            .unwrap();
        assert_eq!(
            fs.setxattr("/f", "user.one", b"x", XattrFlags::Create),
            Err(Errno::EEXIST)
        );
        assert_eq!(
            fs.setxattr("/f", "user.two", b"x", XattrFlags::Replace),
            Err(Errno::ENODATA)
        );
        fs.setxattr("/f", "user.two", b"2", XattrFlags::Any)
            .unwrap();
        assert_eq!(fs.getxattr("/f", "user.one").unwrap(), b"1");
        assert_eq!(fs.listxattr("/f").unwrap(), vec!["user.one", "user.two"]);
        fs.removexattr("/f", "user.one").unwrap();
        assert_eq!(fs.removexattr("/f", "user.one"), Err(Errno::ENODATA));
        assert_eq!(fs.getxattr("/f", "user.one"), Err(Errno::ENODATA));
        assert_eq!(
            fs.setxattr("/f", "", b"", XattrFlags::Any),
            Err(Errno::EINVAL)
        );
    }

    #[test]
    fn access_checks_owner_bits() {
        let mut fs = mounted_v2();
        write_file(&mut fs, "/f", b"");
        fs.chmod("/f", FileMode::new(0o400)).unwrap();
        assert_eq!(fs.access("/f", AccessMode::read()), Ok(()));
        assert_eq!(fs.access("/f", AccessMode::write()), Err(Errno::EACCES));
        assert_eq!(fs.access("/f", AccessMode::exec()), Err(Errno::EACCES));
        assert_eq!(fs.access("/f", AccessMode::exists()), Ok(()));
        assert_eq!(fs.access("/nope", AccessMode::exists()), Err(Errno::ENOENT));
    }

    #[test]
    fn getdents_lists_entries() {
        let mut fs = mounted_v2();
        fs.mkdir("/d", FileMode::DIR_DEFAULT).unwrap();
        write_file(&mut fs, "/d/b", b"");
        write_file(&mut fs, "/d/a", b"");
        fs.symlink("/x", "/d/l").unwrap();
        let names: Vec<_> = fs
            .getdents("/d")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["a", "b", "l"]);
        assert_eq!(fs.getdents("/d/a"), Err(Errno::ENOTDIR));
    }

    #[test]
    fn chmod_chown_utimens() {
        let mut fs = mounted_v2();
        write_file(&mut fs, "/f", b"");
        fs.chmod("/f", FileMode::new(0o111)).unwrap();
        assert_eq!(fs.stat("/f").unwrap().mode, FileMode::new(0o111));
        fs.chown("/f", 42, 43).unwrap();
        let st = fs.stat("/f").unwrap();
        assert_eq!((st.uid, st.gid), (42, 43));
        fs.utimens("/f", 111, 222).unwrap();
        let st = fs.stat("/f").unwrap();
        assert_eq!((st.atime, st.mtime), (111, 222));
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let mut fs = mounted_v2();
        write_file(&mut fs, "/a", b"before");
        fs.checkpoint(7).unwrap();
        assert_eq!(fs.snapshot_count(), 1);
        assert!(fs.snapshot_bytes() > 0);
        fs.unlink("/a").unwrap();
        write_file(&mut fs, "/b", b"after");
        fs.restore(7).unwrap();
        assert_eq!(read_file(&mut fs, "/a"), b"before");
        assert_eq!(fs.stat("/b"), Err(Errno::ENOENT));
        // restore discards the snapshot (paper semantics).
        assert_eq!(fs.snapshot_count(), 0);
        assert_eq!(fs.restore(7), Err(Errno::ENOENT));
    }

    #[test]
    fn restore_keep_allows_multiple_restores() {
        let mut fs = mounted_v2();
        write_file(&mut fs, "/a", b"v0");
        fs.checkpoint(1).unwrap();
        for _ in 0..3 {
            fs.truncate("/a", 0).unwrap();
            fs.restore_keep(1).unwrap();
            assert_eq!(fs.stat("/a").unwrap().size, 2);
        }
        fs.discard(1).unwrap();
        assert_eq!(fs.discard(1), Err(Errno::ENOENT));
    }

    #[test]
    fn restore_fires_invalidation_unless_bug() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        #[derive(Default)]
        struct Counter(AtomicUsize);
        impl InvalidationSink for Counter {
            fn invalidate_entry(&self, _: u64, _: &str) {}
            fn invalidate_inode(&self, _: u64) {}
            fn invalidate_all(&self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let run = |bugs: BugConfig| {
            let sink = Arc::new(Counter::default());
            let mut fs = VeriFs::v1_with_bugs(bugs);
            fs.set_invalidation_sink(sink.clone());
            fs.mount().unwrap();
            fs.checkpoint(1).unwrap();
            fs.restore(1).unwrap();
            sink.0.load(Ordering::SeqCst)
        };
        assert_eq!(run(BugConfig::none()), 1);
        assert_eq!(
            run(BugConfig {
                v1_skip_invalidation: true,
                ..BugConfig::default()
            }),
            0,
            "bug 2 skips kernel-cache invalidation"
        );
    }

    #[test]
    fn statfs_reflects_budget() {
        let mut cfg = VeriFsConfig::v2();
        cfg.data_budget = Some(8192);
        let mut fs = VeriFs::with_config(cfg);
        fs.mount().unwrap();
        let before = fs.statfs().unwrap();
        assert_eq!(before.blocks, 2);
        write_file(&mut fs, "/f", &[0; 4096]);
        let after = fs.statfs().unwrap();
        assert_eq!(after.blocks_free, 1);
        assert!(fs.statfs().unwrap().files_free < before.files + 1);
    }

    #[test]
    fn reads_never_see_beyond_eof() {
        let mut fs = mounted_v2();
        write_file(&mut fs, "/f", b"0123456789");
        let fd = fs
            .open("/f", OpenFlags::read_only(), FileMode::REG_DEFAULT)
            .unwrap();
        fs.lseek(fd, 8).unwrap();
        let mut buf = [0xFFu8; 8];
        assert_eq!(fs.read(fd, &mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"89");
        // At EOF, read returns 0.
        assert_eq!(fs.read(fd, &mut buf).unwrap(), 0);
        fs.close(fd).unwrap();
    }

    #[test]
    fn times_progress_monotonically() {
        let mut fs = mounted_v2();
        write_file(&mut fs, "/f", b"x");
        let t1 = fs.stat("/f").unwrap().mtime;
        let fd = fs
            .open("/f", OpenFlags::write_only(), FileMode::REG_DEFAULT)
            .unwrap();
        fs.write(fd, b"y").unwrap();
        fs.close(fd).unwrap();
        let t2 = fs.stat("/f").unwrap().mtime;
        assert!(t2 > t1);
    }

    #[test]
    fn read_updates_atime_only() {
        let mut fs = mounted_v2();
        write_file(&mut fs, "/f", b"x");
        let before = fs.stat("/f").unwrap();
        let fd = fs
            .open("/f", OpenFlags::read_only(), FileMode::REG_DEFAULT)
            .unwrap();
        fs.read(fd, &mut [0u8; 1]).unwrap();
        fs.close(fd).unwrap();
        let after = fs.stat("/f").unwrap();
        assert!(after.atime > before.atime);
        assert_eq!(after.mtime, before.mtime);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn snapshot_pool_is_isolated_from_live_mutations() {
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        let fd = fs.create("/f", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, b"v1").unwrap();
        fs.close(fd).unwrap();
        fs.checkpoint(1).unwrap();
        // Mutating the live state must not bleed into the stored snapshot.
        let fd = fs
            .open("/f", OpenFlags::write_only(), FileMode::REG_DEFAULT)
            .unwrap();
        fs.write(fd, b"XX").unwrap();
        fs.close(fd).unwrap();
        fs.restore_keep(1).unwrap();
        let fd = fs
            .open("/f", OpenFlags::read_only(), FileMode::REG_DEFAULT)
            .unwrap();
        let mut buf = [0u8; 4];
        let n = fs.read(fd, &mut buf).unwrap();
        fs.close(fd).unwrap();
        assert_eq!(&buf[..n], b"v1");
    }

    #[test]
    fn multiple_checkpoints_under_same_key_replace() {
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        fs.checkpoint(1).unwrap();
        let fd = fs.create("/later", FileMode::REG_DEFAULT).unwrap();
        fs.close(fd).unwrap();
        fs.checkpoint(1).unwrap(); // replaces the earlier snapshot
        assert_eq!(fs.snapshot_count(), 1);
        fs.unlink("/later").unwrap();
        fs.restore(1).unwrap();
        assert!(fs.stat("/later").is_ok(), "the replacement snapshot wins");
    }

    #[test]
    fn deep_paths_resolve_and_report_depth_errors() {
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        let mut path = String::new();
        for i in 0..8 {
            path.push_str(&format!("/n{i}"));
            fs.mkdir(&path, FileMode::DIR_DEFAULT).unwrap();
        }
        let file = format!("{path}/leaf");
        let fd = fs.create(&file, FileMode::REG_DEFAULT).unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.stat(&file).unwrap().ftype, FileType::Regular);
        // Removing an ancestor makes the whole subtree unreachable.
        // (rmdir refuses while non-empty.)
        assert_eq!(fs.rmdir("/n0"), Err(Errno::ENOTEMPTY));
    }

    #[test]
    fn rename_onto_hardlink_of_self_is_noop() {
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        let fd = fs.create("/a", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, b"x").unwrap();
        fs.close(fd).unwrap();
        fs.link("/a", "/b").unwrap();
        // POSIX: rename between two links of the same file does nothing.
        fs.rename("/a", "/b").unwrap();
        assert!(fs.stat("/a").is_ok());
        assert!(fs.stat("/b").is_ok());
        assert_eq!(fs.stat("/a").unwrap().nlink, 2);
    }

    #[test]
    fn symlink_name_collision_is_eexist() {
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        fs.symlink("/t", "/ln").unwrap();
        assert_eq!(fs.symlink("/other", "/ln"), Err(Errno::EEXIST));
        let fd = fs.create("/file", FileMode::REG_DEFAULT).unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.symlink("/t", "/file"), Err(Errno::EEXIST));
    }

    #[test]
    fn state_bytes_grows_with_content() {
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        let before = fs.state_bytes();
        let fd = fs.create("/big", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, &[0u8; 10_000]).unwrap();
        fs.close(fd).unwrap();
        assert!(fs.state_bytes() > before + 9_000);
    }

    #[test]
    fn checkpoint_shares_structure_until_mutation() {
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        let fd = fs.create("/big", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, &[7u8; 10_000]).unwrap();
        fs.close(fd).unwrap();
        fs.checkpoint(1).unwrap();
        // Logical accounting charges the full state; host-resident bytes are
        // near zero because everything is still shared with the live state.
        assert!(fs.snapshot_bytes() > 10_000);
        assert!(
            fs.snapshot_resident_bytes() < fs.snapshot_bytes() / 10,
            "fresh snapshot should share (resident {} vs logical {})",
            fs.snapshot_resident_bytes(),
            fs.snapshot_bytes()
        );
        // Rewriting the file unshares its buffer: the snapshot now uniquely
        // owns the old contents.
        let fd = fs
            .open("/big", OpenFlags::write_only(), FileMode::REG_DEFAULT)
            .unwrap();
        fs.write(fd, &[9u8; 10_000]).unwrap();
        fs.close(fd).unwrap();
        assert!(fs.snapshot_resident_bytes() > 10_000);
        // The snapshot still restores the original contents.
        fs.restore(1).unwrap();
        let fd = fs
            .open("/big", OpenFlags::read_only(), FileMode::REG_DEFAULT)
            .unwrap();
        let mut buf = [0u8; 4];
        fs.read(fd, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 4]);
    }

    #[test]
    fn materialize_cow_reconstructs_deep_clone_cost() {
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        let fd = fs.create("/f", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, &[1u8; 5_000]).unwrap();
        fs.close(fd).unwrap();
        fs.checkpoint(1).unwrap();
        fs.materialize_cow();
        // After materializing, the snapshot shares nothing with the live
        // state: resident equals logical accounting.
        assert_eq!(fs.snapshot_resident_bytes(), fs.snapshot_bytes());
        // And the state is still observably intact.
        assert_eq!(fs.stat("/f").unwrap().size, 5_000);
        fs.restore_keep(1).unwrap();
        assert_eq!(fs.stat("/f").unwrap().size, 5_000);
    }

    #[test]
    fn snapshots_under_distinct_keys_share_with_each_other() {
        let mut fs = VeriFs::v2();
        fs.mount().unwrap();
        let fd = fs.create("/f", FileMode::REG_DEFAULT).unwrap();
        fs.write(fd, &[3u8; 8_000]).unwrap();
        fs.close(fd).unwrap();
        fs.checkpoint(1).unwrap();
        fs.checkpoint(2).unwrap();
        // Overwrite live so both snapshots detach from the live state; they
        // still share the old buffer with each other, so the pool's unique
        // footprint is ~one copy, not two.
        let fd = fs
            .open("/f", OpenFlags::write_only(), FileMode::REG_DEFAULT)
            .unwrap();
        fs.write(fd, &[4u8; 8_000]).unwrap();
        fs.close(fd).unwrap();
        let resident = fs.snapshot_resident_bytes();
        assert!(resident > 8_000, "old buffer is pool-owned: {resident}");
        assert!(
            resident < fs.snapshot_bytes() * 3 / 4,
            "two snapshots must share one copy (resident {resident}, logical {})",
            fs.snapshot_bytes()
        );
    }
}
